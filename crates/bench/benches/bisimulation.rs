//! Partition-refinement bisimulation scaling (Section 4.2): plain vs
//! graded, across model variants and graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_bench::workloads;
use portnum_logic::bisim::{refine, refine_with, BisimStyle, RefineEngine};
use portnum_logic::Kripke;
use std::time::Duration;

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisimulation/refine");
    let mut sweep = workloads::gnp_sweep(&[32, 128, 512], 0.08, 23);
    sweep.extend(workloads::regular_sweep(3, &[128, 512], 41));
    for w in sweep {
        let k_mm = Kripke::k_mm(&w.graph);
        let k_pp = Kripke::k_pp(&w.graph, &w.ports);
        group.bench_with_input(BenchmarkId::new("plain_kmm", &w.name), &k_mm, |b, k| {
            b.iter(|| refine(k, BisimStyle::Plain))
        });
        group.bench_with_input(BenchmarkId::new("graded_kmm", &w.name), &k_mm, |b, k| {
            b.iter(|| refine(k, BisimStyle::Graded))
        });
        group.bench_with_input(BenchmarkId::new("plain_kpp", &w.name), &k_pp, |b, k| {
            b.iter(|| refine(k, BisimStyle::Plain))
        });
    }
    group.finish();
}

fn bench_worklist_vs_rounds(c: &mut Criterion) {
    // The engine comparison on the shapes it was built for: Θ(n) rounds
    // with an O(1)-block frontier per round. The worklist engine should
    // beat the full-round reference by an asymptotic margin here, and
    // stay within noise of it on the small dense sweeps above.
    let mut group = c.benchmark_group("bisimulation/engines");
    let mut sweep = workloads::path_sweep(&[256, 1024]);
    sweep.push(workloads::deep_tree(1024));
    for w in sweep {
        let k_mm = Kripke::k_mm(&w.graph);
        let k_pp = Kripke::k_pp(&w.graph, &w.ports);
        for (engine_name, engine) in
            [("rounds", RefineEngine::Rounds), ("worklist", RefineEngine::Worklist)]
        {
            group.bench_with_input(
                BenchmarkId::new(format!("plain_kmm_{engine_name}"), &w.name),
                &k_mm,
                |b, k| b.iter(|| refine_with(k, BisimStyle::Plain, engine)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("plain_kpp_{engine_name}"), &w.name),
                &k_pp,
                |b, k| b.iter(|| refine_with(k, BisimStyle::Plain, engine)),
            );
        }
    }
    group.finish();
}

fn bench_symmetric_certificates(c: &mut Criterion) {
    // The Lemma 15 certificate: all-nodes-bisimilar on regular graphs.
    let mut group = c.benchmark_group("bisimulation/lemma15_certificate");
    for k in [3usize, 5] {
        let g = portnum_graph::generators::no_one_factor(k);
        let p = portnum_graph::PortNumbering::symmetric_regular(&g).unwrap();
        let model = Kripke::k_pp(&g, &p);
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            b.iter(|| {
                let classes = refine(m, BisimStyle::Plain);
                assert_eq!(classes.class_count(classes.depth()), 1);
            })
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_refine, bench_worklist_vs_rounds, bench_symmetric_certificates
}
criterion_main!(benches);
