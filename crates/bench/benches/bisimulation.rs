//! Partition-refinement bisimulation scaling (Section 4.2): plain vs
//! graded, across model variants and graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_bench::workloads;
use portnum_logic::bisim::{refine, BisimStyle};
use portnum_logic::Kripke;
use std::time::Duration;

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("bisimulation/refine");
    let mut sweep = workloads::gnp_sweep(&[32, 128, 512], 0.08, 23);
    sweep.extend(workloads::regular_sweep(3, &[128, 512], 41));
    for w in sweep {
        let k_mm = Kripke::k_mm(&w.graph);
        let k_pp = Kripke::k_pp(&w.graph, &w.ports);
        group.bench_with_input(BenchmarkId::new("plain_kmm", &w.name), &k_mm, |b, k| {
            b.iter(|| refine(k, BisimStyle::Plain))
        });
        group.bench_with_input(BenchmarkId::new("graded_kmm", &w.name), &k_mm, |b, k| {
            b.iter(|| refine(k, BisimStyle::Graded))
        });
        group.bench_with_input(BenchmarkId::new("plain_kpp", &w.name), &k_pp, |b, k| {
            b.iter(|| refine(k, BisimStyle::Plain))
        });
    }
    group.finish();
}

fn bench_symmetric_certificates(c: &mut Criterion) {
    // The Lemma 15 certificate: all-nodes-bisimilar on regular graphs.
    let mut group = c.benchmark_group("bisimulation/lemma15_certificate");
    for k in [3usize, 5] {
        let g = portnum_graph::generators::no_one_factor(k);
        let p = portnum_graph::PortNumbering::symmetric_regular(&g).unwrap();
        let model = Kripke::k_pp(&g, &p);
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            b.iter(|| {
                let classes = refine(m, BisimStyle::Plain);
                assert_eq!(classes.class_count(classes.depth()), 1);
            })
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_refine, bench_symmetric_certificates
}
criterion_main!(benches);
