//! Theorem 2 compilers: formula→algorithm (compile + run) and
//! algorithm→formula (configuration-space enumeration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_graph::{generators, PortNumbering};
use portnum_logic::compile::{compile_mb, compile_sb, mb_algorithm_to_formulas, ToFormulaOptions};
use portnum_logic::{Formula, ModalIndex};
use portnum_machine::adapters::{MbAsVector, SbAsVector};
use portnum_machine::{MbAlgorithm, Multiset, Payload, Simulator, Status};
use std::time::Duration;

fn nested(depth: usize) -> Formula {
    let mut f = Formula::prop(1);
    for _ in 0..depth {
        f = Formula::diamond(ModalIndex::Any, &f);
    }
    f
}

fn bench_formula_to_algorithm(c: &mut Criterion) {
    let sim = Simulator::new();
    let g = generators::grid(4, 4);
    let p = PortNumbering::consistent(&g);
    let mut group = c.benchmark_group("compile/formula_to_algorithm");
    for depth in [1usize, 4, 8] {
        let f = nested(depth);
        group.bench_with_input(BenchmarkId::new("sb_compile_run", depth), &f, |b, f| {
            b.iter(|| {
                let algo = compile_sb(f).unwrap();
                sim.run(&SbAsVector(algo), &g, &p).unwrap()
            })
        });
        let graded = Formula::diamond_geq(ModalIndex::Any, 2, &nested(depth - 1));
        group.bench_with_input(BenchmarkId::new("mb_compile_run", depth), &graded, |b, f| {
            b.iter(|| {
                let algo = compile_mb(f).unwrap();
                sim.run(&MbAsVector(algo), &g, &p).unwrap()
            })
        });
    }
    group.finish();
}

#[derive(Debug, Clone, Copy)]
struct TwoOdd;

impl MbAlgorithm for TwoOdd {
    type State = usize;
    type Msg = bool;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<usize, bool> {
        Status::Running(degree)
    }
    fn broadcast(&self, state: &usize) -> bool {
        state % 2 == 1
    }
    fn step(&self, _: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, bool> {
        Status::Stopped(received.count(&Payload::Data(true)) >= 2)
    }
}

fn bench_algorithm_to_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/algorithm_to_formula");
    for delta in [2usize, 3, 4] {
        let opts = ToFormulaOptions { max_degree: delta, horizon: 4, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(delta), &opts, |b, opts| {
            b.iter(|| mb_algorithm_to_formulas(&TwoOdd, opts).unwrap())
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_formula_to_algorithm, bench_algorithm_to_formula
}
criterion_main!(benches);
