//! Lemma 15 machinery: double covers, 1-factorizations, and symmetric port
//! numberings of regular graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_graph::{cover, generators, matching, PortNumbering};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_one_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization/one_factorization");
    let mut rng = StdRng::seed_from_u64(53);
    for (d, n) in [(3usize, 32usize), (4, 32), (5, 64)] {
        let g = generators::random_regular(n, d, &mut rng);
        let b = cover::bipartite_double_cover(&g);
        group.bench_with_input(BenchmarkId::new(format!("d{d}"), n), &b, |bench, b| {
            bench.iter(|| {
                let factors = matching::one_factorization(b).unwrap();
                assert_eq!(factors.len(), d);
            })
        });
    }
    group.finish();
}

fn bench_symmetric_numbering(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization/symmetric_numbering");
    let mut rng = StdRng::seed_from_u64(59);
    for n in [32usize, 96] {
        let g = generators::random_regular(n, 3, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |bench, g| {
            bench.iter(|| PortNumbering::symmetric_regular(g).unwrap())
        });
    }
    for k in [3usize, 5] {
        let g = generators::no_one_factor(k);
        group.bench_with_input(BenchmarkId::new("no_one_factor", k), &g, |bench, g| {
            bench.iter(|| PortNumbering::symmetric_regular(g).unwrap())
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_one_factorization, bench_symmetric_numbering
}
criterion_main!(benches);
