//! Covering graphs: lift construction, covering-map verification, and the
//! cost of executing on a `k`-fold lift versus its base (the lifting
//! lemma makes the outputs equal; the wall-clock cost scales with the
//! number of sheets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum::algorithms::vv::ViewGather;
use portnum_bench::workloads;
use portnum_graph::lifts::{lift, Voltages};
use portnum_machine::Simulator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_lift_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifts/construct");
    let mut rng = StdRng::seed_from_u64(5);
    for w in workloads::regular_sweep(3, &[16, 64], 19) {
        for sheets in [2usize, 8] {
            let voltages = Voltages::random(&w.graph, sheets, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("{}sheets", sheets), &w.name),
                &(&w, &voltages),
                |b, (w, voltages)| b.iter(|| lift(&w.graph, &w.ports, voltages).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_cover_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifts/verify");
    let mut rng = StdRng::seed_from_u64(6);
    for w in workloads::regular_sweep(3, &[16, 64], 29) {
        let voltages = Voltages::random(&w.graph, 4, &mut rng);
        let lifted = lift(&w.graph, &w.ports, &voltages).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &(), |b, ()| {
            b.iter(|| {
                assert!(lifted.covering_map().verify(
                    &w.graph,
                    &w.ports,
                    lifted.graph(),
                    lifted.ports()
                ))
            })
        });
    }
    group.finish();
}

fn bench_execution_base_vs_lift(c: &mut Criterion) {
    // The lifting lemma's cost profile: same algorithm, same outputs per
    // fibre, k-fold node count. Criterion shows the linear scaling.
    let mut group = c.benchmark_group("lifts/execute_viewgather");
    let mut rng = StdRng::seed_from_u64(7);
    let w = &workloads::regular_sweep(3, &[32], 31)[0];
    let sim = Simulator::new();
    let algo = ViewGather { radius: 3 };
    group.bench_function("base", |b| {
        b.iter(|| sim.run(&algo, &w.graph, &w.ports).unwrap())
    });
    for sheets in [2usize, 4, 8] {
        let voltages = Voltages::random(&w.graph, sheets, &mut rng);
        let lifted = lift(&w.graph, &w.ports, &voltages).unwrap();
        group.bench_with_input(
            BenchmarkId::new("lift", sheets),
            &lifted,
            |b, lifted| b.iter(|| sim.run(&algo, lifted.graph(), lifted.ports()).unwrap()),
        );
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_lift_construction, bench_cover_verification, bench_execution_base_vs_lift
}
criterion_main!(benches);
