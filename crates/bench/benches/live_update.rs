//! Live updates under traffic: apply a batch of deltas to a running
//! model and re-answer a formula suite.
//!
//! Each iteration replays the full lifecycle — serve the suite on the
//! pristine model, take the delta batch, serve the suite again — so
//! the strategies stay comparable under the shim's plain `iter` timer
//! (both pay the identical warm-up prefix, and the second serve is
//! where they diverge):
//!
//! * **repair** — `Kripke::apply_delta` patches the CSR/CSC/dense
//!   stores in place and `ModelChecker::detach`/`resume` repairs the
//!   cached truth vectors over the dirty frontier;
//! * **rebuild** — the post-delta model is reconstructed from its rows
//!   (`Kripke::from_parts`) and a fresh checker recomputes everything;
//! * **apply_only** — the model patch alone, isolating the storage
//!   layer's cost from the checker's.
//!
//! The isolated numbers (untimed setup, repair-vs-rebuild only) are
//! the `live_update_*` rows of `reproduce`'s `BENCH_eval.json`, which
//! pins repair ≥ 5× faster than rebuild on `path1024`. This bench
//! streams the flips as individual deltas (each built cache is spliced
//! once per delta); `reproduce` merges them into one arrival batch
//! (`workloads::edge_flip_batch`) so the splices are paid once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_bench::workloads;
use portnum_logic::plan::ModelChecker;
use portnum_logic::{Formula, Kripke, ModalIndex, ModelDelta};
use std::collections::BTreeMap;
use std::time::Duration;

/// The post-delta model's rows, the rebuild leg's input.
fn rows_of(k: &Kripke) -> BTreeMap<ModalIndex, Vec<Vec<usize>>> {
    (0..k.relation_count())
        .map(|r| {
            let rows = (0..k.len())
                .map(|v| k.successors_dense(r, v).iter().map(|&w| w as usize).collect())
                .collect();
            (k.relation_index(r), rows)
        })
        .collect()
}

fn bench_live_update(c: &mut Criterion) {
    let suite: Vec<Formula> = (1..=4).map(workloads::nested_diamonds).collect();
    let shapes: Vec<(workloads::Workload, Vec<ModelDelta>)> = {
        let mut shapes = Vec::new();
        for w in workloads::path_sweep(&[1024, 4096]) {
            let base = Kripke::k_mm(&w.graph);
            let deltas = workloads::edge_flip_deltas(&base, 10, 77);
            shapes.push((w, deltas));
        }
        for w in workloads::gnp_sweep(&[512], 0.05, 5) {
            let base = Kripke::k_mm(&w.graph);
            let mut deltas = workloads::edge_flip_deltas(&base, 8, 77);
            deltas.extend(workloads::crash_deltas(&base, 2, 13));
            shapes.push((w, deltas));
        }
        shapes
    };

    let serve = |checker: &mut ModelChecker<'_>| -> usize {
        suite.iter().map(|f| checker.check(f).expect("suite case").count_ones()).sum()
    };

    let mut group = c.benchmark_group("live_update");
    for (w, deltas) in &shapes {
        let base = Kripke::k_mm(&w.graph);
        let mut final_model = base.clone();
        for d in deltas {
            final_model.apply_delta(d).expect("workload deltas apply");
        }
        let rows = rows_of(&final_model);
        let degrees = final_model.degrees().to_vec();

        group.bench_with_input(BenchmarkId::new("repair", &w.name), &base, |b, base| {
            b.iter(|| {
                let mut model = base.clone();
                let mut checker = ModelChecker::new(&model);
                let warm = serve(&mut checker);
                let cache = checker.detach();
                let mut touched: Vec<u32> = Vec::new();
                for d in deltas {
                    touched.extend(model.apply_delta(d).expect("workload deltas apply"));
                }
                let mut checker = ModelChecker::resume(&model, cache, &touched);
                warm + serve(&mut checker)
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild", &w.name), &base, |b, base| {
            b.iter(|| {
                let model = base.clone();
                let mut checker = ModelChecker::new(&model);
                let warm = serve(&mut checker);
                drop(checker);
                let rebuilt = Kripke::from_parts(base.variant(), degrees.clone(), rows.clone())
                    .expect("extracted rows rebuild");
                let mut checker = ModelChecker::new(&rebuilt);
                warm + serve(&mut checker)
            })
        });
        group.bench_with_input(BenchmarkId::new("apply_only", &w.name), &base, |b, base| {
            b.iter(|| {
                let mut model = base.clone();
                for d in deltas {
                    model.apply_delta(d).expect("workload deltas apply");
                }
                model.version()
            })
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_live_update
}
criterion_main!(benches);
