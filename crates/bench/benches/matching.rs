//! Matching engines: Hopcroft–Karp on double covers and Edmonds' blossom
//! on general graphs (the substrate of Lemmas 15–16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_graph::{cover, generators, matching};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/hopcroft_karp_double_cover");
    let mut rng = StdRng::seed_from_u64(31);
    for n in [32usize, 128] {
        let g = generators::random_regular(n, 4, &mut rng);
        let b = cover::bipartite_double_cover(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &b, |bench, b| {
            bench.iter(|| {
                let m = matching::hopcroft_karp(b);
                assert_eq!(m.size, n);
            })
        });
    }
    group.finish();
}

fn bench_blossom(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/blossom");
    let mut rng = StdRng::seed_from_u64(37);
    for n in [32usize, 96] {
        let g = generators::random_regular(n, 3, &mut rng);
        group.bench_with_input(BenchmarkId::new("regular3", n), &g, |bench, g| {
            bench.iter(|| matching::maximum_matching(g))
        });
    }
    for k in [3usize, 5] {
        let g = generators::no_one_factor(k);
        group.bench_with_input(BenchmarkId::new("no_one_factor", k), &g, |bench, g| {
            bench.iter(|| assert!(!matching::has_one_factor(g)))
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_hopcroft_karp, bench_blossom
}
criterion_main!(benches);
