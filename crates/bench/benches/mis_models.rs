//! Maximal independent set in the stronger models (Section 3.1):
//! deterministic greedy-by-id (`LOCAL`) versus randomised Luby, across
//! cycle sizes — a problem unsolvable in all seven weak classes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum::stronger::local::{run_with_ids, GreedyMisById};
use portnum::stronger::randomized::{run_randomized, LubyMis};
use portnum_graph::{generators, PortNumbering};
use std::time::Duration;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_models/cycle");
    for n in [32usize, 128, 512] {
        let g = generators::cycle(n);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        // Adversarial id order (monotone along the cycle) — the greedy
        // worst case, where decisions propagate sequentially.
        let ids: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("greedy_ids_worstcase", n), &(), |b, ()| {
            b.iter(|| run_with_ids(&GreedyMisById, &g, &p, &ids, 4 * n).unwrap())
        });
        // Scrambled ids — the typical case.
        let scrambled: Vec<u64> =
            (0..n as u64).map(|v| v.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        group.bench_with_input(BenchmarkId::new("greedy_ids_scrambled", n), &(), |b, ()| {
            b.iter(|| run_with_ids(&GreedyMisById, &g, &p, &scrambled, 4 * n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("luby_randomised", n), &(), |b, ()| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_randomized(&LubyMis, &g, &p, seed, 100_000).unwrap()
            })
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_mis
}
criterion_main!(benches);
