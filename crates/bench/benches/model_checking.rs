//! Model checking scaling: formula depth sweep and shared-subformula
//! memoisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_bench::workloads;
use portnum_logic::{evaluate, Formula, Kripke, ModalIndex};
use std::time::Duration;

fn nested(depth: usize) -> Formula {
    let mut f = Formula::prop(2);
    for i in 0..depth {
        let grade = 1 + (i % 2);
        f = Formula::diamond_geq(ModalIndex::Any, grade, &f).or(&Formula::prop(1));
    }
    f
}

fn bench_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_checking/depth");
    for w in workloads::gnp_sweep(&[128], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        for depth in [2usize, 8, 32] {
            let f = nested(depth);
            group.bench_with_input(BenchmarkId::from_parameter(depth), &f, |b, f| {
                b.iter(|| evaluate(&k, f).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_shared_subformulas(c: &mut Criterion) {
    // f_{n+1} = f_n ∧ f_n: exponential tree, linear DAG.
    let mut f = Formula::diamond(ModalIndex::Any, &Formula::prop(2));
    for _ in 0..64 {
        f = f.and(&f);
    }
    let w = &workloads::cycle_sweep(&[64])[0];
    let k = Kripke::k_mm(&w.graph);
    c.bench_function("model_checking/shared_dag_64_levels", |b| {
        b.iter(|| evaluate(&k, &f).unwrap())
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_depth_sweep, bench_shared_subformulas
}
criterion_main!(benches);
