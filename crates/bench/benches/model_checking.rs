//! Model checking scaling: formula depth sweep, shared-subformula
//! memoisation, compiled-plan suites, and diamond strategies.
//!
//! Three engines are compared: the plan engine behind
//! [`evaluate_packed`] (hash-consed IR, slot recycling, forward/reverse
//! diamonds), the recursive pointer-memoised bitset engine
//! ([`evaluate_packed_recursive`], the differential-testing reference),
//! and `evaluate_legacy` below — the pre-bitset evaluator (memoised
//! `Rc<Vec<bool>>`, one byte per world) kept verbatim so the historical
//! delta stays measurable after the legacy path is gone from the
//! library.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_bench::workloads;
use portnum_logic::plan::DiamondMode;
use portnum_logic::{
    evaluate_packed, evaluate_packed_recursive, Formula, FormulaKind, Kripke, Plan,
};
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// The pre-bitset evaluator, kept verbatim as the bench baseline.
fn evaluate_legacy(model: &Kripke, formula: &Formula) -> Vec<bool> {
    fn rec(
        model: &Kripke,
        formula: &Formula,
        memo: &mut HashMap<*const FormulaKind, Rc<Vec<bool>>>,
    ) -> Rc<Vec<bool>> {
        let key = formula.kind() as *const FormulaKind;
        if let Some(cached) = memo.get(&key) {
            return Rc::clone(cached);
        }
        let n = model.len();
        let result: Vec<bool> = match formula.kind() {
            FormulaKind::Top => vec![true; n],
            FormulaKind::Bottom => vec![false; n],
            FormulaKind::Prop(d) => (0..n).map(|v| model.degree(v) == *d).collect(),
            FormulaKind::Not(a) => rec(model, a, memo).iter().map(|&b| !b).collect(),
            FormulaKind::And(a, b) => {
                let left = rec(model, a, memo);
                let right = rec(model, b, memo);
                left.iter().zip(right.iter()).map(|(&x, &y)| x && y).collect()
            }
            FormulaKind::Or(a, b) => {
                let left = rec(model, a, memo);
                let right = rec(model, b, memo);
                left.iter().zip(right.iter()).map(|(&x, &y)| x || y).collect()
            }
            FormulaKind::Diamond { index, grade, inner } => {
                let sat = rec(model, inner, memo);
                match model.relation_id(*index) {
                    None => vec![*grade == 0; n],
                    Some(r) => (0..n)
                        .map(|v| {
                            let count = model
                                .successors_dense(r, v)
                                .iter()
                                .filter(|&&w| sat[w as usize])
                                .count();
                            count >= *grade
                        })
                        .collect(),
                }
            }
            FormulaKind::Var(_) | FormulaKind::Mu { .. } | FormulaKind::Nu { .. } => {
                unreachable!("the legacy baseline predates fixpoints; its workloads have none")
            }
        };
        let result = Rc::new(result);
        memo.insert(key, Rc::clone(&result));
        result
    }
    let mut memo = HashMap::new();
    let result = rec(model, formula, &mut memo);
    drop(memo);
    Rc::try_unwrap(result).unwrap_or_else(|rc| (*rc).clone())
}

fn bench_depth_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_checking/depth");
    for w in workloads::gnp_sweep(&[128], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        for depth in [2usize, 8, 32] {
            let f = workloads::nested_diamonds(depth);
            group.bench_with_input(BenchmarkId::new("packed", depth), &f, |b, f| {
                b.iter(|| evaluate_packed(&k, f).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("legacy", depth), &f, |b, f| {
                b.iter(|| evaluate_legacy(&k, f))
            });
        }
    }
    group.finish();
}

fn bench_shared_subformulas(c: &mut Criterion) {
    // Exponential tree, linear DAG: the connective layers dominate, so
    // this is the word-parallel best case.
    let f = workloads::shared_dag(64);
    let w = &workloads::cycle_sweep(&[64])[0];
    let k = Kripke::k_mm(&w.graph);
    let mut group = c.benchmark_group("model_checking/shared_dag_64_levels");
    group.bench_function("packed", |b| b.iter(|| evaluate_packed(&k, &f).unwrap()));
    group.bench_function("legacy", |b| b.iter(|| evaluate_legacy(&k, &f)));
    group.finish();
}

fn bench_formula_suite(c: &mut Criterion) {
    // Sixteen diamond towers of increasing depth, built independently:
    // tower `d` structurally contains tower `d − 1`, but nothing shares
    // `Arc`s — the compiler-suite shape where pointer memoisation is
    // blind and structural hash-consing collapses the whole suite to
    // O(deepest tower) instructions.
    let suite: Vec<Formula> = (1..=16).map(workloads::nested_diamonds).collect();
    for w in workloads::gnp_sweep(&[128], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        let mut group = c.benchmark_group("model_checking/formula_suite16");
        group.bench_function("plan_compile_and_execute", |b| {
            b.iter(|| Plan::compile_suite(&k, suite.iter()).unwrap().execute(&k))
        });
        let plan = Plan::compile_suite(&k, suite.iter()).unwrap();
        group.bench_function("plan_execute_precompiled", |b| b.iter(|| plan.execute(&k)));
        group.bench_function("recursive", |b| {
            b.iter(|| {
                suite
                    .iter()
                    .map(|f| evaluate_packed_recursive(&k, f).unwrap().count_ones())
                    .sum::<usize>()
            })
        });
        group.finish();
    }
}

fn bench_parallel_execution(c: &mut Criterion) {
    // Sequential vs pool-forced plan execution: on multi-core hosts
    // the forced rows shrink with the core count; on single-core CI
    // they bound the pool's coordination overhead instead.
    let f = workloads::nested_diamonds(32);
    for w in workloads::gnp_sweep(&[512], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        let plan = Plan::compile(&k, &f).unwrap();
        let mut group = c.benchmark_group("model_checking/parallel_execution");
        group.bench_function("sequential", |b| {
            b.iter(|| plan.execute_with(&k, DiamondMode::Auto))
        });
        group.bench_function("pool_forced", |b| {
            b.iter(|| plan.execute_forced_parallel(&k, DiamondMode::Auto))
        });
        group.finish();
    }
}

fn bench_diamond_strategies(c: &mut Criterion) {
    // Deep alternating-grade towers: the grade-1 levels are eligible
    // for predecessor-row unions, the grade-2 levels for the CSC
    // counting gather — `auto` picks per instruction among forward,
    // dense rows, and the CSC gather.
    let f = workloads::nested_diamonds(16);
    for w in workloads::gnp_sweep(&[512], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        let plan = Plan::compile(&k, &f).unwrap();
        let mut group = c.benchmark_group("model_checking/diamond_strategy");
        for (name, mode) in [
            ("auto", DiamondMode::Auto),
            ("forward", DiamondMode::Forward),
            ("reverse", DiamondMode::Reverse),
            ("csc", DiamondMode::Csc),
        ] {
            group.bench_with_input(BenchmarkId::new(name, w.graph.len()), &mode, |b, &mode| {
                b.iter(|| plan.execute_with(&k, mode))
            });
        }
        group.finish();
    }

    // Above the dense cap only forward and CSC are on the table: the
    // n²-bit predecessor matrix would cost ~0.5 GiB here, so before
    // the CSC store this workload's reverse-eligible diamonds were
    // silently forced onto the forward sweep.
    let w = workloads::sparse_huge();
    let k = Kripke::k_mm(&w.graph);
    let f = workloads::endpoint_diamond();
    let plan = Plan::compile(&k, &f).unwrap();
    let mut group = c.benchmark_group("model_checking/diamond_strategy_sparse_huge");
    for (name, mode) in
        [("auto", DiamondMode::Auto), ("forward", DiamondMode::Forward), ("csc", DiamondMode::Csc)]
    {
        group.bench_with_input(BenchmarkId::new(name, w.graph.len()), &mode, |b, &mode| {
            b.iter(|| plan.execute_with(&k, mode))
        });
    }
    group.finish();
}

fn bench_fixpoint_reachability(c: &mut Criterion) {
    // Reachability `µX. q1 ∨ ⟨*,*⟩X` on goal-studded paths (a goal
    // world every 50 positions, ≈ 27 Kleene iterations): the compiled
    // plan iterates over the dirty frontier after one dense pass, the
    // recursive reference re-evaluates the whole model per iteration.
    // The million-world acceptance gate lives in `reproduce`; these
    // sizes track the same gap continuously.
    let f = workloads::reachability_formula();
    for n in [1usize << 14, 1 << 17] {
        let k = workloads::huge_reachability(n, 50);
        let plan = Plan::compile(&k, &f).unwrap();
        let mut group = c.benchmark_group("model_checking/fixpoint_reachability");
        group.bench_with_input(BenchmarkId::new("plan", n), &n, |b, _| {
            b.iter(|| plan.execute_with(&k, DiamondMode::Auto))
        });
        group.bench_with_input(BenchmarkId::new("kleene", n), &n, |b, _| {
            b.iter(|| evaluate_packed_recursive(&k, &f).unwrap())
        });
        group.finish();
    }
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_depth_sweep, bench_shared_subformulas, bench_formula_suite,
        bench_diamond_strategies, bench_parallel_execution, bench_fixpoint_reachability
}
criterion_main!(benches);
