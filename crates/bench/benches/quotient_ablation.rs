//! Ablation: model checking on the bisimulation quotient versus the full
//! model, and the growth of Hennessy–Milner characteristic formulas with
//! depth.
//!
//! On highly symmetric inputs (a cycle under Lemma 15's numbering
//! collapses to one world) the quotient turns model checking into
//! constant work; on asymmetric inputs it buys nothing — the benchmark
//! shows both regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_graph::bitset::Bitset;
use portnum_graph::{generators, PortNumbering};
use portnum_logic::bisim::BisimStyle;
use portnum_logic::{characteristic, evaluate_packed, minimum_base, Formula, Kripke, ModalIndex};
use std::time::Duration;

/// A deep ungraded formula: alternating diamonds over the two in/out pairs.
fn deep_formula(depth: usize) -> Formula {
    let mut f = Formula::prop(2);
    for t in 0..depth {
        let index = ModalIndex::InOut(t % 2, t % 2);
        f = Formula::diamond(index, &f).or(&Formula::prop(2));
    }
    f
}

fn bench_quotient_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("quotient/eval_deep_formula");
    let f = deep_formula(24);
    for (name, g, p) in [
        (
            "symmetric_cycle256",
            generators::cycle(256),
            PortNumbering::symmetric_regular(&generators::cycle(256)).unwrap(),
        ),
        (
            "path256",
            generators::path(256),
            PortNumbering::consistent(&generators::path(256)),
        ),
    ] {
        let k = Kripke::k_pp(&g, &p);
        group.bench_with_input(BenchmarkId::new("full", name), &k, |b, k| {
            b.iter(|| evaluate_packed(k, &f).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("quotient_then_eval", name), &k, |b, k| {
            b.iter(|| {
                let (q, map) = minimum_base(k);
                let truth = evaluate_packed(&q, &f).unwrap();
                Bitset::from_fn(map.len(), |v| truth.get(map[v]))
            })
        });
        // The quotient itself, amortisable across many formulas.
        let (q, map) = minimum_base(&k);
        group.bench_with_input(
            BenchmarkId::new("eval_on_prebuilt_quotient", name),
            &(q, map),
            |b, (q, map)| {
                b.iter(|| {
                    let truth = evaluate_packed(q, &f).unwrap();
                    Bitset::from_fn(map.len(), |v| truth.get(map[v]))
                })
            },
        );
    }
    group.finish();
}

fn bench_characteristic_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("quotient/characteristic_formulas");
    let g = generators::theorem13_witness().0;
    let k = Kripke::k_mm(&g);
    for depth in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("plain", depth), &depth, |b, &d| {
            b.iter(|| characteristic(&k, BisimStyle::Plain, d))
        });
        group.bench_with_input(BenchmarkId::new("graded", depth), &depth, |b, &d| {
            b.iter(|| characteristic(&k, BisimStyle::Graded, d))
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_quotient_vs_full, bench_characteristic_growth
}
criterion_main!(benches);
