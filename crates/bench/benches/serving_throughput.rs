//! Serving throughput: the same 16-formula workload answered through
//! the serve crate's socket protocol, batched (one `Check` frame
//! carrying the whole suite, coalesced server-side into shared-cache
//! suite evaluation) versus unbatched (16 frames of one formula each),
//! at 1 and 4 concurrent clients.
//!
//! The model is loaded once and every iteration runs against the warm
//! serving cache — this measures steady-state request throughput,
//! where batching's win is amortising round trips, framing, admission
//! pricing, and shard dispatch across the suite. The cold-path
//! acceptance gate (batched ≥ 3× unbatched QPS) lives in `reproduce`'s
//! `serve_qps_*` rows; this bench tracks the same shape continuously.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum_bench::workloads;
use portnum_logic::Formula;
use portnum_serve::{Client, ModelSpec, ServeConfig, Server, Truths};
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::Duration;

const MODEL: u64 = 0;

/// One server for the whole bench run, bound to an ephemeral port and
/// intentionally leaked: its shard and accept threads serve until the
/// process exits.
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = Server::start(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        })
        .expect("binding an ephemeral port");
        let addr = server.addr();
        std::mem::forget(server);
        let mut client = Client::connect(addr).expect("connecting");
        client.load(MODEL, &ModelSpec::gnp(512, 0.05, 5)).expect("loading gnp512");
        addr
    })
}

/// All 16 formulas through one coalesced frame.
fn serve_batched(client: &mut Client, suite: &[Formula]) -> Truths {
    client.check(MODEL, suite).expect("batched check")
}

/// The same 16 formulas as 16 single-formula requests.
fn serve_unbatched(client: &mut Client, suite: &[Formula]) -> usize {
    suite
        .iter()
        .map(|f| {
            client
                .check(MODEL, std::slice::from_ref(f))
                .expect("unbatched check")
                .vectors
                .len()
        })
        .sum()
}

fn bench_serving_throughput(c: &mut Criterion) {
    let addr = server_addr();
    let suite: Vec<Formula> = (1..=16).map(workloads::nested_diamonds).collect();

    let mut group = c.benchmark_group("serving_throughput");
    for clients in [1usize, 4] {
        let mut pool: Vec<Client> =
            (0..clients).map(|_| Client::connect(addr).expect("connecting")).collect();
        // Warm every connection (and the serving cache) outside the
        // timed region.
        for client in &mut pool {
            serve_batched(client, &suite);
        }
        group.bench_with_input(
            BenchmarkId::new("batched16", format!("gnp512/{clients}c")),
            &clients,
            |b, _| {
                b.iter(|| match pool.as_mut_slice() {
                    [one] => serve_batched(one, &suite).vectors.len(),
                    many => std::thread::scope(|s| {
                        let handles: Vec<_> = many
                            .iter_mut()
                            .map(|client| s.spawn(|| serve_batched(client, &suite).vectors.len()))
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
                    }),
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unbatched16", format!("gnp512/{clients}c")),
            &clients,
            |b, _| {
                b.iter(|| match pool.as_mut_slice() {
                    [one] => serve_unbatched(one, &suite),
                    many => std::thread::scope(|s| {
                        let handles: Vec<_> = many
                            .iter_mut()
                            .map(|client| s.spawn(|| serve_unbatched(client, &suite)))
                            .collect();
                        handles.into_iter().map(|h| h.join().expect("client thread")).sum()
                    }),
                })
            },
        );
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_serving_throughput
}
criterion_main!(benches);
