//! Theorems 4, 8, 9: runtime cost of the simulation wrappers relative to
//! direct execution (round overheads are printed by `reproduce`; this
//! measures wall-clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum::algorithms::vv::ViewGather;
use portnum::sim::{MbFromVb, MultisetFromVector, SetFromMultiset};
use portnum_graph::{generators, PortNumbering};
use portnum_machine::adapters::{
    BroadcastAsVector, MbAsBroadcast, MbAsVector, MultisetAsVector, SetAsVector,
};
use portnum_machine::{MbAlgorithm, Multiset, MultisetAlgorithm, Payload, Simulator, Status};
use std::time::Duration;

#[derive(Debug, Clone, Copy)]
struct DegreeProfile;

impl MultisetAlgorithm for DegreeProfile {
    type State = usize;
    type Msg = usize;
    type Output = Vec<usize>;

    fn init(&self, degree: usize) -> Status<usize, Vec<usize>> {
        Status::Running(degree)
    }
    fn message(&self, state: &usize, _port: usize) -> usize {
        *state
    }
    fn step(&self, _: &usize, received: &Multiset<Payload<usize>>) -> Status<usize, Vec<usize>> {
        Status::Stopped(received.iter().filter_map(Payload::data).copied().collect())
    }
}

#[derive(Debug, Clone, Copy)]
struct ParityMb;

impl MbAlgorithm for ParityMb {
    type State = usize;
    type Msg = bool;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<usize, bool> {
        Status::Running(degree)
    }
    fn broadcast(&self, state: &usize) -> bool {
        state % 2 == 1
    }
    fn step(&self, _: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, bool> {
        Status::Stopped(received.count(&Payload::Data(true)) % 2 == 1)
    }
}

fn bench_thm4(c: &mut Criterion) {
    let sim = Simulator::new();
    let mut group = c.benchmark_group("sim_overhead/thm4_set_from_multiset");
    for delta in [2usize, 3] {
        let g = if delta == 2 { generators::cycle(32) } else { generators::no_one_factor(3) };
        let p = PortNumbering::consistent(&g);
        group.bench_with_input(BenchmarkId::new("direct", delta), &delta, |b, _| {
            b.iter(|| sim.run(&MultisetAsVector(DegreeProfile), &g, &p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("wrapped", delta), &delta, |b, &d| {
            b.iter(|| {
                sim.run(&SetAsVector(SetFromMultiset::new(DegreeProfile, d)), &g, &p).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_thm8(c: &mut Criterion) {
    let sim = Simulator::new();
    let g = generators::cycle(24);
    let p = PortNumbering::consistent(&g);
    let mut group = c.benchmark_group("sim_overhead/thm8_multiset_from_vector");
    for radius in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("direct", radius), &radius, |b, &r| {
            b.iter(|| sim.run(&ViewGather { radius: r }, &g, &p).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("wrapped", radius), &radius, |b, &r| {
            b.iter(|| {
                sim.run(
                    &MultisetAsVector(MultisetFromVector::new(ViewGather { radius: r })),
                    &g,
                    &p,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_thm9(c: &mut Criterion) {
    let sim = Simulator::new();
    let g = generators::grid(5, 5);
    let p = PortNumbering::consistent(&g);
    let mut group = c.benchmark_group("sim_overhead/thm9_mb_from_vb");
    group.bench_function("direct", |b| {
        b.iter(|| sim.run(&BroadcastAsVector(MbAsBroadcast(ParityMb)), &g, &p).unwrap())
    });
    group.bench_function("wrapped", |b| {
        b.iter(|| sim.run(&MbAsVector(MbFromVb::new(MbAsBroadcast(ParityMb))), &g, &p).unwrap())
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_thm4, bench_thm8, bench_thm9
}
criterion_main!(benches);
