//! Simulator throughput: one-round and multi-round algorithms across the
//! standard suite and a cycle sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum::algorithms::mb::OddOddMb;
use portnum::algorithms::sb::LocalMaxDegreeSb;
use portnum::algorithms::vv::ViewGather;
use portnum_bench::workloads;
use portnum_machine::adapters::{MbAsVector, SbAsVector};
use portnum_machine::Simulator;
use std::time::Duration;

fn bench_one_round(c: &mut Criterion) {
    let sim = Simulator::new();
    let mut group = c.benchmark_group("simulator/one_round");
    for w in workloads::cycle_sweep(&[64, 256, 1024]) {
        group.bench_with_input(BenchmarkId::new("local_max_sb", &w.name), &w, |b, w| {
            b.iter(|| sim.run(&SbAsVector(LocalMaxDegreeSb), &w.graph, &w.ports).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("odd_odd_mb", &w.name), &w, |b, w| {
            b.iter(|| sim.run(&MbAsVector(OddOddMb), &w.graph, &w.ports).unwrap())
        });
    }
    group.finish();
}

fn bench_view_gather(c: &mut Criterion) {
    let sim = Simulator::new();
    let mut group = c.benchmark_group("simulator/view_gather");
    for w in workloads::regular_sweep(3, &[32, 64], 11) {
        for radius in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("radius{radius}"), &w.name),
                &w,
                |b, w| b.iter(|| sim.run(&ViewGather { radius }, &w.graph, &w.ports).unwrap()),
            );
        }
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_one_round, bench_view_gather
}
criterion_main!(benches);
