//! Section 3.3 / [3]: the MB edge-packing vertex cover across graph
//! families, including verification cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use portnum::algorithms::mb::EdgePackingVertexCover;
use portnum::verify;
use portnum_bench::workloads;
use portnum_machine::adapters::MbAsVector;
use portnum_machine::Simulator;
use std::time::Duration;

fn bench_edge_packing(c: &mut Criterion) {
    let sim = Simulator::new();
    let mut group = c.benchmark_group("vertex_cover/edge_packing");
    let mut suite = workloads::cycle_sweep(&[64, 256]);
    suite.extend(workloads::regular_sweep(3, &[32, 64], 41));
    suite.extend(workloads::gnp_sweep(&[24], 0.15, 43));
    for w in suite {
        if w.graph.edge_count() == 0 {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &w, |b, w| {
            b.iter(|| {
                let run = sim.run(&MbAsVector(EdgePackingVertexCover), &w.graph, &w.ports).unwrap();
                assert!(verify::is_vertex_cover(&w.graph, run.outputs()));
            })
        });
    }
    group.finish();
}

fn bench_exact_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_cover/exact_branch_and_bound");
    for w in workloads::gnp_sweep(&[16, 20], 0.2, 47) {
        group.bench_with_input(BenchmarkId::from_parameter(&w.name), &w, |b, w| {
            b.iter(|| verify::min_vertex_cover_size(&w.graph))
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_edge_packing, bench_exact_cover
}
criterion_main!(benches);
