//! Regenerates every figure and table of the paper from the implemented
//! system and prints a report. `EXPERIMENTS.md` records the expected
//! output shape; run with `cargo run -p portnum-bench --bin reproduce`.

use portnum::algorithms::mb::{EdgePackingVertexCover, OddOddMb};
use portnum::algorithms::sb::LocalMaxDegreeSb;
use portnum::algorithms::vv::ViewGather;
use portnum::problems::{LocalMaxDegree, NonIsolation, Problem, VertexCoverApprox};
use portnum::sim::{MultisetFromVector, SetFromMultiset};
use portnum::{separations, verify, ProblemClass};
use portnum_bench::report::{section, Table};
use portnum_bench::workloads;
use portnum_graph::{cover, generators, matching, properties, Graph, Port, PortNumbering};
use portnum_logic::bisim::{self, BisimStyle, RefineEngine};
use portnum_logic::compile::{
    compile_broadcast, compile_mb, compile_multiset, compile_sb, compile_set, compile_vector,
    mb_algorithm_to_formulas, ToFormulaOptions,
};
use portnum_logic::{
    evaluate, evaluate_packed, evaluate_packed_recursive, parse, Formula, Kripke, ModalIndex, Plan,
};
use portnum_machine::adapters::{
    BroadcastAsVector, MbAsVector, MultisetAsVector, ObliviousAsSb, SbAsVector, SetAsVector,
};
use portnum_machine::{Multiset, MultisetAlgorithm, Payload, Simulator, Status};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("portnum reproduce — Hella et al., PODC 2012");
    fig1_2();
    fig3_4();
    fig5();
    fig6();
    fig7();
    fig8();
    fig9();
    table3();
    table4_5();
    thm4();
    thm8_9();
    separations_report();
    remark2();
    vertex_cover();
    covers();
    section31();
    bench_snapshot();
    bench_eval_snapshot();
    serve_qps_snapshot();
    println!("\nAll sections completed.");
}

/// Median wall-clock microseconds of 7 runs of `routine` (the caller
/// warms up by computing its reference result first); `verify` checks
/// each run's output *outside* the timed region so the assert cost
/// never skews the sample. Shared by every `BENCH_*.json` snapshot so
/// their medians stay methodologically comparable.
fn median_us<T>(mut routine: impl FnMut() -> T, mut verify: impl FnMut(T)) -> f64 {
    use std::time::Instant;
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            let out = routine();
            let us = start.elapsed().as_secs_f64() * 1e6;
            verify(out);
            us
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Times the partition-refinement hot path on the standard sweeps and
/// writes `BENCH_bisim.json` (one JSON object per line) next to the
/// working directory, so successive PRs accumulate a perf trajectory.
///
/// Every case is measured on **both** refinement engines: `refine` rows
/// are the full-round reference (the engine all previous snapshots
/// measured, so the trajectory stays comparable) and `refine_worklist`
/// rows are the incremental worklist engine that now drives the default
/// path. The long-diameter workloads (`path1024`, `deep_tree1024`) are
/// where the two diverge by design.
fn bench_snapshot() {
    use std::fmt::Write as _;
    section("Perf snapshot: bisimulation refinement (written to BENCH_bisim.json)");

    let mut sweep = workloads::gnp_sweep(&[32, 128, 512], 0.08, 23);
    sweep.extend(workloads::regular_sweep(3, &[128, 512], 41));
    sweep.extend(workloads::path_sweep(&[1024]));
    sweep.push(workloads::deep_tree(1024));

    let mut json = String::new();
    let mut t = Table::new(["workload", "model", "style", "engine", "median µs", "touched", "classes"]);
    for w in &sweep {
        let k_mm = Kripke::k_mm(&w.graph);
        let k_pp = Kripke::k_pp(&w.graph, &w.ports);
        let cases: [(&str, &Kripke, BisimStyle); 3] = [
            ("kmm", &k_mm, BisimStyle::Plain),
            ("kmm", &k_mm, BisimStyle::Graded),
            ("kpp", &k_pp, BisimStyle::Plain),
        ];
        for (model_name, k, style) in cases {
            // Warm up once (and fix the expected partition), then take
            // the median of a handful of runs per engine.
            let classes = bisim::refine(k, style);
            let blocks = classes.class_count(classes.depth());
            let style_name = match style {
                BisimStyle::Plain => "plain",
                BisimStyle::Graded => "graded",
            };
            // The touched-world counter makes the asymptotic difference
            // visible next to the timings: the round engine encodes
            // exactly nodes × rounds signatures.
            let (_, stats) = bisim::refine_fixpoint_stats(k, style);
            for (bench_name, engine_name, engine) in [
                ("refine", "rounds", RefineEngine::Rounds),
                ("refine_worklist", "worklist", RefineEngine::Worklist),
            ] {
                let median = median_us(
                    || bisim::refine_with(k, style, engine),
                    |c| assert_eq!(c.final_level(), classes.final_level()),
                );
                let touched = match engine {
                    RefineEngine::Rounds => w.graph.len() * stats.rounds,
                    RefineEngine::Worklist => stats.encoded,
                };
                t.row([
                    w.name.clone(),
                    model_name.to_string(),
                    style_name.to_string(),
                    engine_name.to_string(),
                    format!("{median:.1}"),
                    touched.to_string(),
                    blocks.to_string(),
                ]);
                let _ = writeln!(
                    json,
                    "{{\"bench\":\"{}\",\"workload\":\"{}\",\"model\":\"{}\",\"style\":\"{}\",\
                     \"nodes\":{},\"median_us\":{:.1},\"touched\":{},\"classes\":{}}}",
                    bench_name,
                    w.name,
                    model_name,
                    style_name,
                    w.graph.len(),
                    median,
                    touched,
                    blocks
                );
            }
        }
    }
    print!("{}", t.render());
    match std::fs::write("BENCH_bisim.json", &json) {
        Ok(()) => println!("wrote BENCH_bisim.json ({} entries)", json.lines().count()),
        Err(e) => println!("could not write BENCH_bisim.json: {e}"),
    }
}

/// Times the packed model checker on the standard eval workloads and
/// writes `BENCH_eval.json` next to `BENCH_bisim.json`, so the perf
/// trajectory covers model checking as well as refinement.
fn bench_eval_snapshot() {
    use std::fmt::Write as _;
    section("Perf snapshot: packed model checking (written to BENCH_eval.json)");

    let shared = workloads::shared_dag(64);
    let mut cases: Vec<(String, Kripke, &str, Formula)> = Vec::new();
    for w in workloads::gnp_sweep(&[128, 512], 0.05, 5) {
        cases.push((
            w.name.clone(),
            Kripke::k_mm(&w.graph),
            "nested32",
            workloads::nested_diamonds(32),
        ));
    }
    for w in workloads::cycle_sweep(&[64, 256]) {
        cases.push((w.name.clone(), Kripke::k_mm(&w.graph), "shared_dag64", shared.clone()));
    }

    let mut json = String::new();
    let mut t = Table::new(["workload", "case", "median µs", "worlds true"]);
    for (name, k, case, f) in &cases {
        let reference = evaluate_packed(k, f).expect("well-formed case");
        let median = median_us(
            || evaluate_packed(k, f).expect("well-formed case"),
            |truth| assert_eq!(truth, reference),
        );
        let ones = reference.count_ones();
        t.row([name.clone(), case.to_string(), format!("{median:.1}"), ones.to_string()]);
        let _ = writeln!(
            json,
            "{{\"bench\":\"eval\",\"workload\":\"{}\",\"case\":\"{}\",\"worlds\":{},\
             \"median_us\":{:.1},\"ones\":{}}}",
            name,
            case,
            k.len(),
            median,
            ones
        );
    }

    // Shared-structure formula suite: sixteen independently built
    // diamond towers (structurally nested, no shared `Arc`s), checked
    // as one compiled plan vs. one recursive evaluation per formula.
    let suite: Vec<Formula> = (1..=16).map(workloads::nested_diamonds).collect();
    for w in workloads::gnp_sweep(&[128, 512], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        let reference: Vec<usize> = suite
            .iter()
            .map(|f| evaluate_packed(&k, f).expect("suite case").count_ones())
            .collect();
        let total_ones: usize = reference.iter().sum();
        let suite_cases = [
            (
                "formula_suite_plan",
                median_us(
                    || Plan::compile_suite(&k, suite.iter()).expect("suite compiles").execute(&k),
                    |truths| {
                        let ones: Vec<usize> =
                            truths.iter().map(portnum_graph::bitset::Bitset::count_ones).collect();
                        assert_eq!(ones, reference);
                    },
                ),
            ),
            (
                "formula_suite_recursive",
                median_us(
                    || {
                        suite
                            .iter()
                            .map(|f| {
                                evaluate_packed_recursive(&k, f).expect("suite case").count_ones()
                            })
                            .collect::<Vec<usize>>()
                    },
                    |ones| assert_eq!(ones, reference),
                ),
            ),
        ];
        for (case, median) in suite_cases {
            t.row([
                w.name.clone(),
                case.to_string(),
                format!("{median:.1}"),
                total_ones.to_string(),
            ]);
            let _ = writeln!(
                json,
                "{{\"bench\":\"eval\",\"workload\":\"{}\",\"case\":\"{}\",\"worlds\":{},\
                 \"median_us\":{:.1},\"ones\":{}}}",
                w.name,
                case,
                k.len(),
                median,
                total_ones
            );
        }
    }
    // Parallel vs sequential plan execution on one precompiled plan:
    // `plan_exec_seq` is the gate-driven default (sequential below the
    // work threshold), `plan_exec_pool` forces both chunking axes
    // through the persistent worker pool. On single-core hosts the
    // pool row bounds the coordination overhead; with >1 core it
    // should undercut the sequential row.
    use portnum_logic::plan::DiamondMode;
    let deep = workloads::nested_diamonds(32);
    for w in workloads::gnp_sweep(&[128, 512], 0.05, 5) {
        let k = Kripke::k_mm(&w.graph);
        let plan = Plan::compile(&k, &deep).expect("well-formed case");
        let (reference, _) = plan.execute_with(&k, DiamondMode::Auto);
        let ones: usize = reference.iter().map(|b| b.count_ones()).sum();
        let exec_cases = [
            (
                "plan_exec_seq",
                median_us(
                    || plan.execute_with(&k, DiamondMode::Auto).0,
                    |truths| assert_eq!(truths, reference),
                ),
            ),
            (
                "plan_exec_pool",
                median_us(
                    || plan.execute_forced_parallel(&k, DiamondMode::Auto).0,
                    |truths| assert_eq!(truths, reference),
                ),
            ),
        ];
        for (case, median) in exec_cases {
            t.row([w.name.clone(), case.to_string(), format!("{median:.1}"), ones.to_string()]);
            let _ = writeln!(
                json,
                "{{\"bench\":\"eval\",\"workload\":\"{}\",\"case\":\"{}\",\"worlds\":{},\
                 \"median_us\":{:.1},\"ones\":{}}}",
                w.name,
                case,
                k.len(),
                median,
                ones
            );
        }
    }
    // A sparse model above the dense reverse cap (n²-bit predecessor
    // rows are out of reach): the reverse diamond path is only
    // reachable through the CSC store, where it previously fell back
    // to the forward sweep. The Auto row asserts (via ExecStats) that
    // the CSC gather actually fired.
    let huge = workloads::sparse_huge();
    let k = Kripke::k_mm(&huge.graph);
    assert!(
        k.predecessor_matrix_words() > portnum_logic::plan::REVERSE_WORD_CAP,
        "sparse_huge must sit above the dense cap"
    );
    let f = workloads::endpoint_diamond();
    let plan = Plan::compile(&k, &f).expect("well-formed case");
    let (reference, stats) = plan.execute_with(&k, portnum_logic::plan::DiamondMode::Auto);
    if portnum_logic::plan::reverse_override() == portnum_logic::plan::ReverseOverride::Auto {
        assert_eq!(stats.csc_diamonds, 1, "above-cap sparse diamond must go CSC: {stats:?}");
    }
    let ones: usize = reference.iter().map(|b| b.count_ones()).sum();
    let huge_cases = [
        (
            "sparse_huge_auto_csc",
            median_us(
                || plan.execute_with(&k, portnum_logic::plan::DiamondMode::Auto).0,
                |truths| assert_eq!(truths, reference),
            ),
        ),
        (
            "sparse_huge_forward",
            median_us(
                || plan.execute_with(&k, portnum_logic::plan::DiamondMode::Forward).0,
                |truths| assert_eq!(truths, reference),
            ),
        ),
    ];
    for (case, median) in huge_cases {
        t.row([huge.name.clone(), case.to_string(), format!("{median:.1}"), ones.to_string()]);
        let _ = writeln!(
            json,
            "{{\"bench\":\"eval\",\"workload\":\"{}\",\"case\":\"{}\",\"worlds\":{},\
             \"median_us\":{:.1},\"ones\":{}}}",
            huge.name,
            case,
            k.len(),
            median,
            ones
        );
    }
    // The million-world frontier: a streamed sparse G(n, p) model on
    // 2²⁰ worlds (average degree 6), built through `KripkeBuilder`'s
    // two-pass CSR streaming — no Graph, no intermediate edge Vec.
    // `eval_1m_seq` is the forced-sequential reference, `eval_1m_pool`
    // the forced-parallel run over the blocked/sharded chunk paths; at
    // this size the pool is *required* to win, and the snapshot
    // asserts it. `refine_1m_worklist` times worklist bisimulation
    // refinement on the same model (gnp stabilises in O(log n) rounds,
    // so the run is dominated by the round-1 fresh encode).
    {
        let n = 1usize << 20;
        let k = workloads::huge_gnp(n, 6.0 / n as f64, 2012);
        let deep = workloads::nested_diamonds(8);
        let plan = Plan::compile(&k, &deep).expect("well-formed case");
        let (reference, _) = plan.execute_forced_sequential(&k, DiamondMode::Auto);
        let ones: usize = reference.iter().map(|b| b.count_ones()).sum();
        let seq_median = median_us(
            || plan.execute_forced_sequential(&k, DiamondMode::Auto).0,
            |truths| assert_eq!(truths, reference),
        );
        let pool_median = median_us(
            || plan.execute_forced_parallel(&k, DiamondMode::Auto).0,
            |truths| assert_eq!(truths, reference),
        );
        let classes = bisim::refine(&k, BisimStyle::Plain);
        let refine_median = median_us(
            || bisim::refine_with(&k, BisimStyle::Plain, RefineEngine::Worklist),
            |c| assert_eq!(c.final_level(), classes.final_level()),
        );
        let million_cases = [
            ("eval_1m_seq", seq_median, ones),
            ("eval_1m_pool", pool_median, ones),
            ("refine_1m_worklist", refine_median, classes.class_count(classes.depth())),
        ];
        for (case, median, count) in million_cases {
            t.row(["gnp1m".to_string(), case.to_string(), format!("{median:.1}"), count.to_string()]);
            let _ = writeln!(
                json,
                "{{\"bench\":\"eval\",\"workload\":\"gnp1m\",\"case\":\"{}\",\"worlds\":{},\
                 \"median_us\":{:.1},\"ones\":{}}}",
                case,
                n,
                median,
                count
            );
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        if cores > 1 {
            assert!(
                pool_median < seq_median,
                "at 2^20 worlds the pool must beat sequential: \
                 pool {pool_median:.1}µs vs seq {seq_median:.1}µs on {cores} cores"
            );
        } else {
            // One core: the pool cannot win, but the chunked paths must
            // stay within coordination overhead of the sequential sweep
            // (no hash-map cliffs, no re-done work).
            assert!(
                pool_median < seq_median * 1.5,
                "single-core pool overhead out of bounds: \
                 pool {pool_median:.1}µs vs seq {seq_median:.1}µs"
            );
        }
    }
    // The million-world fixpoint: reachability `µX. q1 ∨ ⟨*,*⟩X` on a
    // 2²⁰-world path with a goal world every 100 positions (≈ 52 Kleene
    // iterations; the spacing sets the frontier-vs-dense gap — each
    // iteration flips ~2 worlds per goal segment, so wider segments
    // mean more iterations at the same total flip count while every
    // dense re-sweep still pays the full 2²⁰ worlds). `reachability_1m` is the compiled plan — frontier
    // iteration under the default knob, dense re-sweeps under
    // `PORTNUM_FIXPOINT=dense` — and `reachability_1m_kleene` is the
    // whole-model re-evaluation reference. Both engines run the same
    // Kleene iteration sequence, so the total-time ratio *is* the
    // per-iteration ratio; the acceptance gate requires the frontier
    // engine to beat whole-model re-evaluation ≥ 3× (compared on
    // minima, reported as medians, like the live-update rows).
    {
        use portnum_logic::plan::{fixpoint_override, FixpointOverride};
        let n = 1usize << 20;
        let k = workloads::huge_reachability(n, 100);
        let f = workloads::reachability_formula();
        let plan = Plan::compile(&k, &f).expect("reachability compiles");
        let (reference, fstats) = plan.execute_with(&k, DiamondMode::Auto);
        let iters = fstats.fixpoint_iters;
        let ones: usize = reference.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, n, "every path world reaches a goal");
        let sample = |run: &mut dyn FnMut()| -> (f64, f64) {
            let mut us: Vec<f64> = (0..7)
                .map(|_| {
                    let start = std::time::Instant::now();
                    run();
                    start.elapsed().as_secs_f64() * 1e6
                })
                .collect();
            us.sort_by(f64::total_cmp);
            (us[us.len() / 2], us[0])
        };
        let (plan_median, plan_min) = sample(&mut || {
            let (truths, _) = plan.execute_with(&k, DiamondMode::Auto);
            assert_eq!(truths, reference);
        });
        let (kleene_median, kleene_min) = sample(&mut || {
            let truth = evaluate_packed_recursive(&k, &f).expect("reachability evaluates");
            assert_eq!(&truth, &reference[0]);
        });
        let engine = match fixpoint_override() {
            FixpointOverride::Frontier => "frontier",
            FixpointOverride::Dense => "dense",
        };
        for (case, median) in
            [("reachability_1m", plan_median), ("reachability_1m_kleene", kleene_median)]
        {
            t.row(["path1m".to_string(), case.to_string(), format!("{median:.1}"), iters.to_string()]);
            let _ = writeln!(
                json,
                "{{\"bench\":\"eval\",\"workload\":\"path1m\",\"case\":\"{}\",\"worlds\":{},\
                 \"median_us\":{:.1},\"ones\":{},\"iters\":{},\"engine\":\"{}\"}}",
                case,
                n,
                median,
                ones,
                iters,
                engine
            );
        }
        if fixpoint_override() == FixpointOverride::Frontier {
            assert!(
                plan_min * 3.0 <= kleene_min,
                "frontier fixpoint iteration must beat whole-model re-evaluation ≥ 3× \
                 on the million-world path: plan {plan_min:.1}µs vs kleene {kleene_min:.1}µs \
                 over {iters} iterations (medians {plan_median:.1}µs / {kleene_median:.1}µs)"
            );
        }
    }
    // Cancellation latency: wall time from `CancelToken::cancel()` to
    // the `Interrupted` return of a controlled execution, while the
    // long gnp512 formula suite runs in a loop on another thread (so
    // the cancel always lands mid-run). The contract bounds this by
    // one granule — a single instruction's evaluation.
    {
        use portnum_graph::resilience::{CancelToken, ExecControl};
        let w = workloads::gnp_sweep(&[512], 0.05, 5).pop().expect("gnp512 workload");
        let k = Kripke::k_mm(&w.graph);
        let suite: Vec<Formula> = (1..=16).map(workloads::nested_diamonds).collect();
        let plan = Plan::compile_suite(&k, suite.iter()).expect("suite compiles");
        let mut samples: Vec<f64> = Vec::new();
        for _ in 0..7 {
            let token = CancelToken::new();
            let ctl = ExecControl::with_cancel(token.clone());
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::scope(|s| {
                s.spawn(|| loop {
                    match plan.execute_controlled(&k, DiamondMode::Auto, &ctl) {
                        Ok(_) => continue,
                        Err(_) => {
                            let _ = tx.send(std::time::Instant::now());
                            break;
                        }
                    }
                });
                std::thread::sleep(std::time::Duration::from_millis(2));
                let t0 = std::time::Instant::now();
                token.cancel();
                let returned = rx.recv().expect("controlled run reports interruption");
                samples.push(returned.duration_since(t0).as_secs_f64() * 1e6);
            });
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        t.row([w.name.clone(), "cancel_latency".to_string(), format!("{median:.1}"), "0".to_string()]);
        let _ = writeln!(
            json,
            "{{\"bench\":\"eval\",\"workload\":\"{}\",\"case\":\"cancel_latency\",\"worlds\":{},\
             \"median_us\":{:.1},\"ones\":0}}",
            w.name,
            k.len(),
            median
        );
    }
    // Live-update rows: apply a batch of 10 localized edge flips under
    // traffic and re-answer a small formula suite. `live_update_repair`
    // patches the model in place (`Kripke::apply_delta`, one merged
    // batch so each built cache is spliced once) and repairs the
    // checker's cached truth vectors over the dirty frontier
    // (`ModelChecker::detach`/`resume`); `live_update_rebuild` rebuilds
    // the post-delta model from its rows and checks with a fresh
    // checker. Both produce bit-identical answers (verified outside the
    // timed region); on the localized path1024 workload the repair leg
    // must win by ≥ 5× — the PR's headline acceptance number.
    {
        use portnum_logic::plan::ModelChecker;
        use portnum_logic::plan::{delta_override, DeltaOverride};
        use std::time::Instant;
        let flips = 10;
        let suite: Vec<Formula> = (1..=4).map(workloads::nested_diamonds).collect();
        let sweeps: Vec<workloads::Workload> = workloads::path_sweep(&[1024])
            .into_iter()
            .chain(workloads::gnp_sweep(&[512], 0.05, 5))
            .collect();
        for w in &sweeps {
            let base = Kripke::k_mm(&w.graph);
            // The same flips as the per-delta sequence, merged into one
            // arrival batch so every built cache is spliced once.
            let batch = workloads::edge_flip_batch(&base, flips, 77);
            // The expected post-delta answers, computed once.
            let mut final_model = base.clone();
            final_model.apply_delta(&batch).expect("flip batch applies");
            let reference: Vec<Vec<bool>> = {
                let mut checker = ModelChecker::new(&final_model);
                suite.iter().map(|f| checker.check(f).expect("suite case").to_bools()).collect()
            };
            // Post-delta rows, extracted once: the rebuild leg's input.
            let rows: std::collections::BTreeMap<ModalIndex, Vec<Vec<usize>>> = (0..final_model
                .relation_count())
                .map(|r| {
                    let rows = (0..final_model.len())
                        .map(|v| {
                            final_model
                                .successors_dense(r, v)
                                .iter()
                                .map(|&w| w as usize)
                                .collect()
                        })
                        .collect();
                    (final_model.relation_index(r), rows)
                })
                .collect();
            // (median, min) over the samples: the rows report the
            // median; the ≥5× gate compares minima, the noise-free
            // estimate of what each leg costs (the legs are too short
            // for a median to shrug off scheduler and allocator noise
            // this late in a long-running process).
            let stats_with_setup = |run: &mut dyn FnMut() -> (f64, Vec<Vec<bool>>)| -> (f64, f64) {
                let mut samples: Vec<f64> = (0..15)
                    .map(|_| {
                        let (us, outs) = run();
                        assert_eq!(outs, reference, "{}: live-update answers diverged", w.name);
                        us
                    })
                    .collect();
                samples.sort_by(|a, b| a.total_cmp(b));
                (samples[samples.len() / 2], samples[0])
            };
            let (repair_median, repair_min) = stats_with_setup(&mut || {
                // Untimed setup: a pristine model and a warm checker.
                let mut model = base.clone();
                let mut checker = ModelChecker::new(&model);
                for f in &suite {
                    checker.check(f).expect("suite case");
                }
                let cache = checker.detach();
                let start = Instant::now();
                let touched = model.apply_delta(&batch).expect("flip batch applies");
                let mut checker = ModelChecker::resume(&model, cache, &touched);
                let served: usize =
                    suite.iter().map(|f| checker.check(f).expect("suite case").count_ones()).sum();
                let us = start.elapsed().as_secs_f64() * 1e6;
                // Verification extraction, outside the timed region: the
                // repeated checks are cache hits on the served vectors.
                std::hint::black_box(served);
                let outs: Vec<Vec<bool>> = suite
                    .iter()
                    .map(|f| checker.check(f).expect("suite case").to_bools())
                    .collect();
                (us, outs)
            });
            let (rebuild_median, rebuild_min) = stats_with_setup(&mut || {
                let start = Instant::now();
                let model = Kripke::from_parts(base.variant(), final_model.degrees().to_vec(), rows.clone())
                    .expect("extracted rows rebuild");
                let mut checker = ModelChecker::new(&model);
                let served: usize =
                    suite.iter().map(|f| checker.check(f).expect("suite case").count_ones()).sum();
                let us = start.elapsed().as_secs_f64() * 1e6;
                std::hint::black_box(served);
                let outs: Vec<Vec<bool>> = suite
                    .iter()
                    .map(|f| checker.check(f).expect("suite case").to_bools())
                    .collect();
                (us, outs)
            });
            for (case, median) in
                [("live_update_repair", repair_median), ("live_update_rebuild", rebuild_median)]
            {
                t.row([w.name.clone(), case.to_string(), format!("{median:.1}"), flips.to_string()]);
                let _ = writeln!(
                    json,
                    "{{\"bench\":\"eval\",\"workload\":\"{}\",\"case\":\"{}\",\"worlds\":{},\
                     \"median_us\":{:.1},\"ones\":{}}}",
                    w.name,
                    case,
                    base.len(),
                    median,
                    flips
                );
            }
            if w.name == "path1024" && delta_override() == DeltaOverride::Repair {
                assert!(
                    repair_min * 5.0 <= rebuild_min,
                    "localized live update must repair ≥ 5× faster than rebuild: \
                     repair {repair_min:.1}µs vs rebuild {rebuild_min:.1}µs \
                     (medians {repair_median:.1}µs / {rebuild_median:.1}µs)"
                );
            }
        }
    }
    print!("{}", t.render());
    match std::fs::write("BENCH_eval.json", &json) {
        Ok(()) => println!("wrote BENCH_eval.json ({} entries)", json.lines().count()),
        Err(e) => println!("could not write BENCH_eval.json: {e}"),
    }
}

/// Serving throughput through the socket protocol: 16 compatible
/// graded-diamond formulas on gnp512, batched (one coalesced `Check`
/// frame) vs unbatched (16 single-formula requests), at 1 and 4
/// clients. Appends `serve_qps_*` rows to `BENCH_eval.json` and gates
/// the PR's headline number: batched must serve ≥ 3× the QPS of
/// unbatched at 1 client. Batching amortises the per-frame costs —
/// round trip, framing, admission pricing, shard dispatch — across the
/// suite, so the suite here is 16 small distinct formulas whose
/// evaluation does not drown the per-request overhead under test (the
/// deep-tower shape is tracked continuously by the
/// `serving_throughput` criterion bench instead). The gate compares
/// minima over the samples (the noise-free estimate); the rows report
/// medians like every other snapshot.
fn serve_qps_snapshot() {
    use portnum_serve::{Client, ModelSpec, ServeConfig, Server};
    use std::fmt::Write as _;
    use std::time::Instant;
    section("Serving throughput: batched vs unbatched checks (appended to BENCH_eval.json)");

    let mut server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();
    let suite: Vec<Formula> = (0..16usize)
        .map(|i| Formula::diamond_geq(ModalIndex::Any, i / 5, &Formula::prop(i % 5)))
        .collect();
    let mut client = Client::connect(addr).expect("connecting");
    client.load(0, &ModelSpec::gnp(512, 0.05, 5)).expect("loading gnp512");
    // Warm the serving cache: every measured iteration is steady-state,
    // so the batched/unbatched gap is pure per-request overhead (round
    // trips, framing, admission pricing, shard dispatch).
    let reference = client.check(0, &suite).expect("warm-up batch");

    /// `(median, min)` seconds over 9 runs of one 16-formula serving
    /// round.
    fn sample(mut round: impl FnMut()) -> (f64, f64) {
        let mut secs: Vec<f64> = (0..9)
            .map(|_| {
                let start = Instant::now();
                round();
                start.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        (secs[secs.len() / 2], secs[0])
    }

    let (batched_median, batched_min) = sample(|| {
        let truths = client.check(0, &suite).expect("batched check");
        assert_eq!(truths, reference);
    });
    let (unbatched_median, unbatched_min) = sample(|| {
        for (i, f) in suite.iter().enumerate() {
            let truths = client.check(0, std::slice::from_ref(f)).expect("unbatched check");
            assert_eq!(truths.vectors[0], reference.vectors[i]);
        }
    });
    // 4 clients on their own connections, each serving the full suite
    // per round; the round is done when the slowest client finishes.
    let fan_out = |batched: bool| {
        let mut clients: Vec<Client> =
            (0..4).map(|_| Client::connect(addr).expect("connecting")).collect();
        sample(|| {
            std::thread::scope(|s| {
                for client in &mut clients {
                    s.spawn(|| {
                        if batched {
                            let truths = client.check(0, &suite).expect("batched check");
                            assert_eq!(truths, reference);
                        } else {
                            for (i, f) in suite.iter().enumerate() {
                                let truths = client
                                    .check(0, std::slice::from_ref(f))
                                    .expect("unbatched check");
                                assert_eq!(truths.vectors[0], reference.vectors[i]);
                            }
                        }
                    });
                }
            });
        })
    };
    let (batched_4c_median, _) = fan_out(true);
    let (unbatched_4c_median, _) = fan_out(false);

    let mut json = String::new();
    let mut t = Table::new(["workload", "case", "clients", "median µs", "QPS (16-formula rounds/s)"]);
    let cases = [
        ("serve_qps_batched16_1c", 1u32, batched_median),
        ("serve_qps_unbatched16_1c", 1, unbatched_median),
        ("serve_qps_batched16_4c", 4, batched_4c_median),
        ("serve_qps_unbatched16_4c", 4, unbatched_4c_median),
    ];
    for (case, clients, median) in cases {
        // Rounds served per second across all clients: one round is 16
        // formulas answered for one client.
        let qps = f64::from(clients) / median;
        t.row([
            "gnp512".to_string(),
            case.to_string(),
            clients.to_string(),
            format!("{:.1}", median * 1e6),
            format!("{qps:.0}"),
        ]);
        let _ = writeln!(
            json,
            "{{\"bench\":\"serve\",\"workload\":\"gnp512\",\"case\":\"{}\",\"worlds\":512,\
             \"median_us\":{:.1},\"qps\":{:.1}}}",
            case,
            median * 1e6,
            qps
        );
    }
    print!("{}", t.render());
    assert!(
        batched_min * 3.0 <= unbatched_min,
        "a coalesced 16-formula batch must serve ≥ 3× the QPS of 16 single-formula \
         requests: batched {:.1}µs vs unbatched {:.1}µs per round \
         (medians {:.1}µs / {:.1}µs)",
        batched_min * 1e6,
        unbatched_min * 1e6,
        batched_median * 1e6,
        unbatched_median * 1e6
    );
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("BENCH_eval.json")
        .and_then(|mut f| f.write_all(json.as_bytes()));
    match appended {
        Ok(()) => println!("appended {} serve rows to BENCH_eval.json", json.lines().count()),
        Err(e) => println!("could not append to BENCH_eval.json: {e}"),
    }
    server.shutdown();
}

/// Section 3.3's classic tool: covering graphs. Executions commute with
/// covering maps; bisimulation and quotients certify it logically.
fn covers() {
    section("Section 3.3: covering graphs (lifts) — algorithms cannot tell a graph from its cover");
    use portnum_graph::lifts::{lift, Voltages};
    use portnum_logic::minimum_base;
    let mut rng = StdRng::seed_from_u64(33);
    let sim = Simulator::new();
    let mut t = Table::new(["base", "voltages", "lift nodes", "outputs lift?", "min base worlds (base/lift)"]);
    for w in [
        workloads::Workload::consistent("petersen", generators::petersen()),
        workloads::Workload::random("no1factor3", generators::no_one_factor(3), 3),
    ] {
        for (vname, voltages) in [
            ("identity×2", Voltages::identity(&w.graph, 2)),
            ("double-cover", Voltages::double_cover(&w.graph)),
            ("random×3", Voltages::random(&w.graph, 3, &mut rng)),
        ] {
            let lifted = lift(&w.graph, &w.ports, &voltages).expect("voltages fit");
            let base = sim.run(&ViewGather { radius: 3 }, &w.graph, &w.ports).unwrap();
            let cov = sim.run(&ViewGather { radius: 3 }, lifted.graph(), lifted.ports()).unwrap();
            let commutes = lifted.graph().nodes().all(|x| {
                cov.outputs()[x] == base.outputs()[lifted.covering_map().project(x)]
            });
            let (bq, _) = minimum_base(&Kripke::k_pp(&w.graph, &w.ports));
            let (lq, _) = minimum_base(&Kripke::k_pp(lifted.graph(), lifted.ports()));
            t.row([
                w.name.clone(),
                vname.to_string(),
                lifted.graph().len().to_string(),
                commutes.to_string(),
                format!("{}/{}", bq.len(), lq.len()),
            ]);
        }
    }
    print!("{}", t.render());
}

/// Section 3.1: the stronger models, with MIS as the separating problem.
fn section31() {
    section("Section 3.1: stronger models — MIS ∈ LOCAL, MIS ∈ randomised, MIS ∉ VVc");
    use portnum::stronger::local::{run_with_ids, GreedyMisById};
    use portnum::stronger::randomized::{run_randomized, LubyMis};
    use portnum::stronger::separation::{even_cycle_matched_numbering, mis_beyond_vvc};
    let mut t = Table::new(["cycle", "K++ classes", "consistent", "greedy rounds", "luby rounds", "both valid MIS"]);
    for m in [2usize, 4, 8] {
        let (g, p) = even_cycle_matched_numbering(m);
        let classes = bisim::refine(&Kripke::k_pp(&g, &p), BisimStyle::Plain);
        let ids: Vec<u64> = (0..g.len() as u64).map(|v| v.wrapping_mul(0x9e37_79b9)).collect();
        let (greedy_out, greedy_rounds) =
            run_with_ids(&GreedyMisById, &g, &p, &ids, 4 * g.len()).expect("terminates");
        let (luby_out, luby_rounds) =
            run_randomized(&LubyMis, &g, &p, 2012, 100_000).expect("terminates w.h.p.");
        let mis = portnum::problems::MaximalIndependentSet;
        t.row([
            format!("C_{}", 2 * m),
            classes.class_count(classes.depth()).to_string(),
            p.is_consistent().to_string(),
            greedy_rounds.to_string(),
            luby_rounds.to_string(),
            (mis.is_valid(&g, &greedy_out) && mis.is_valid(&g, &luby_out)).to_string(),
        ]);
    }
    print!("{}", t.render());
    for e in [
        mis_beyond_vvc(4),
        portnum::stronger::separation::leader_election_beyond_vvc(4),
    ] {
        println!("  {e}");
        assert!(e.holds());
    }
}

/// Figures 1–2: port numberings and consistency.
fn fig1_2() {
    section("Figures 1–2: port numberings of the 4-node example graph");
    let g = generators::figure1_graph();
    let consistent = PortNumbering::consistent(&g);
    let mut rng = StdRng::seed_from_u64(1);
    let random = PortNumbering::random(&g, &mut rng);
    let mut t = Table::new(["numbering", "pairs (v,i) -> p(v,i)", "consistent"]);
    for (name, p) in [("canonical", &consistent), ("random", &random)] {
        let pairs: Vec<String> =
            p.pairs().map(|(a, b)| format!("({},{})→({},{})", a.node, a.index, b.node, b.index)).collect();
        t.row([name.to_string(), pairs.join(" "), p.is_consistent().to_string()]);
    }
    print!("{}", t.render());
}

/// Figures 3–4: reception and emission modes.
fn fig3_4() {
    section("Figures 3–4: Vector vs Multiset vs Set reception; Vector vs Broadcast emission");
    let vector = [Payload::Data("a"), Payload::Data("b"), Payload::Data("a")];
    let multiset: Multiset<Payload<&str>> = vector.iter().cloned().collect();
    let set = multiset.to_set();
    println!("received vector  : {vector:?}");
    println!("as multiset      : {multiset}");
    println!("as set           : {{{}}}", set.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", "));
    println!("Broadcast sends one message to all ports; Vector may send m1 ≠ m2 ≠ m3 (Figure 4).");
}

/// Figure 5: the trivial partial order collapses into the linear order.
fn fig5() {
    section("Figure 5: problem classes — trivial partial order and proven linear order");
    let mut t = Table::new(["class", "level (Fig 5b)", "collapse/separation evidence"]);
    for c in ProblemClass::ALL {
        t.row([c.to_string(), c.level().to_string(), c.collapse_evidence().to_string()]);
    }
    print!("{}", t.render());
    println!("Derived order: SB ⊊ MB = VB ⊊ SV = MV = VV ⊊ VVc");
}

/// Figure 6: information available to each class, on the Figure 1 graph.
fn fig6() {
    section("Figure 6: auxiliary information available to each class (node 0 of Figure 1)");
    let g = generators::figure1_graph();
    let p = PortNumbering::consistent(&g);
    let v = 0usize;
    let mut t = Table::new(["class", "what node 0 can observe on its in-ports"]);
    let detail: Vec<String> = (0..g.degree(v))
        .map(|i| {
            let src = p.backward(Port::new(v, i));
            format!("port {i}: from node-out-port {}", src.index)
        })
        .collect();
    t.row(["VVc / VV (Vector)", &detail.join(", ")]);
    t.row(["MV / SV (Multiset/Set)", "sender out-port numbers, but no own in-port order"]);
    t.row(["VB (Broadcast)", "own in-port order, but no sender out-port numbers"]);
    t.row(["MB / SB", "only the (multi)set of messages"]);
    print!("{}", t.render());
}

/// Figure 7: the accessibility relations R(i,j) and projections.
fn fig7() {
    section("Figure 7: accessibility relations of K_{a,b}(G,p) on the Figure 1 graph");
    let g = generators::figure1_graph();
    let p = PortNumbering::consistent(&g);
    let mut t = Table::new(["model", "relations", "total edges"]);
    for (name, k) in [
        ("K_{+,+}", Kripke::k_pp(&g, &p)),
        ("K_{-,+}", Kripke::k_mp(&g, &p)),
        ("K_{+,-}", Kripke::k_pm(&g, &p)),
        ("K_{-,-}", Kripke::k_mm(&g)),
    ] {
        let rels: Vec<String> = k.indices().map(|i| format!("R({i})")).collect();
        let total: usize = k
            .indices()
            .map(|i| (0..k.len()).map(|v| k.successors(v, i).len()).sum::<usize>())
            .sum();
        t.row([name.to_string(), rels.join(" "), total.to_string()]);
    }
    print!("{}", t.render());
    println!("(each model distributes the same 2|E| = {} directed pairs)", 2 * g.edge_count());
}

/// Figure 8 / Lemma 15: double covers and 1-factorizations.
fn fig8() {
    section("Figure 8 / Lemma 15: bipartite double covers and 1-factorizations");
    let mut t = Table::new(["graph", "k", "cover regular", "factors", "edge-disjoint"]);
    for (name, g) in [
        ("cycle5", generators::cycle(5)),
        ("petersen", generators::petersen()),
        ("no1factor(3)", generators::no_one_factor(3)),
        ("hypercube(3)", generators::hypercube(3)),
    ] {
        let c = cover::bipartite_double_cover(&g);
        let k = c.regularity().unwrap_or(0);
        let factors = matching::one_factorization(&c).expect("regular covers factorize");
        let mut seen = std::collections::HashSet::new();
        let disjoint = factors
            .iter()
            .all(|f| f.iter().enumerate().all(|(l, &r)| seen.insert((l, r))));
        t.row([
            name.to_string(),
            k.to_string(),
            c.regularity().is_some().to_string(),
            factors.len().to_string(),
            disjoint.to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// Figure 9: regular graphs without a 1-factor and symmetric numberings.
fn fig9() {
    section("Figure 9: k-regular graphs without a 1-factor (odd k) + symmetric numberings");
    let mut t = Table::new([
        "k", "nodes", "connected", "has 1-factor", "symmetric p consistent?", "all bisimilar in K_{+,+}",
    ]);
    for k in [3usize, 5] {
        let g = generators::no_one_factor(k);
        let sym = PortNumbering::symmetric_regular(&g).expect("regular");
        let kpp = Kripke::k_pp(&g, &sym);
        let classes = bisim::refine(&kpp, BisimStyle::Plain);
        t.row([
            k.to_string(),
            g.len().to_string(),
            properties::is_connected(&g).to_string(),
            matching::has_one_factor(&g).to_string(),
            sym.is_consistent().to_string(),
            (classes.class_count(classes.depth()) == 1).to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// Table 3: the logic ↔ algorithms dictionary, exercised end to end.
fn table3() {
    section("Table 3 / Theorem 2: modal logic captures the constant-time classes");
    let g = generators::figure1_graph();
    let p = PortNumbering::consistent(&g);
    let sim = Simulator::new();
    let mut t = Table::new(["logic", "model", "class", "formula", "md", "rounds", "agrees"]);

    let f_any = parse("<*,*>(q2 & <*,*> q3)").unwrap();
    let k_mm = Kripke::k_mm(&g);
    let expect = evaluate(&k_mm, &f_any).unwrap();
    let run = sim.run(&SbAsVector(compile_sb(&f_any).unwrap()), &g, &p).unwrap();
    t.row([
        "ML".into(),
        "K_{-,-}".into(),
        "SB(1)".into(),
        f_any.to_string(),
        f_any.modal_depth().to_string(),
        run.rounds().to_string(),
        (run.outputs() == expect).to_string(),
    ]);
    let f_gr = parse("<*,*>>=2 q1").unwrap();
    let expect = evaluate(&k_mm, &f_gr).unwrap();
    let run = sim.run(&MbAsVector(compile_mb(&f_gr).unwrap()), &g, &p).unwrap();
    t.row([
        "GML".into(),
        "K_{-,-}".into(),
        "MB(1)".into(),
        f_gr.to_string(),
        f_gr.modal_depth().to_string(),
        run.rounds().to_string(),
        (run.outputs() == expect).to_string(),
    ]);
    let f_out = parse("<*,0><*,1> q3").unwrap();
    let k_mp = Kripke::k_mp(&g, &p);
    let expect = evaluate(&k_mp, &f_out).unwrap();
    let run = sim.run(&SetAsVector(compile_set(&f_out).unwrap()), &g, &p).unwrap();
    t.row([
        "MML".into(),
        "K_{-,+}".into(),
        "SV(1)".into(),
        f_out.to_string(),
        f_out.modal_depth().to_string(),
        run.rounds().to_string(),
        (run.outputs() == expect).to_string(),
    ]);
    let f_grout = parse("<*,0>>=2 q1").unwrap();
    let expect = evaluate(&k_mp, &f_grout).unwrap();
    let run = sim.run(&MultisetAsVector(compile_multiset(&f_grout).unwrap()), &g, &p).unwrap();
    t.row([
        "GMML".into(),
        "K_{-,+}".into(),
        "MV(1)".into(),
        f_grout.to_string(),
        f_grout.modal_depth().to_string(),
        run.rounds().to_string(),
        (run.outputs() == expect).to_string(),
    ]);
    let f_in = parse("<0,*> !<1,*> q1").unwrap();
    let k_pm = Kripke::k_pm(&g, &p);
    let expect = evaluate(&k_pm, &f_in).unwrap();
    let run = sim.run(&BroadcastAsVector(compile_broadcast(&f_in).unwrap()), &g, &p).unwrap();
    t.row([
        "MML".into(),
        "K_{+,-}".into(),
        "VB(1)".into(),
        f_in.to_string(),
        f_in.modal_depth().to_string(),
        run.rounds().to_string(),
        (run.outputs() == expect).to_string(),
    ]);
    let f_io = parse("<0,0> q2").unwrap();
    let k_pp = Kripke::k_pp(&g, &p);
    let expect = evaluate(&k_pp, &f_io).unwrap();
    let run = sim.run(&compile_vector(&f_io).unwrap(), &g, &p).unwrap();
    t.row([
        "MML".into(),
        "K_{+,+}".into(),
        "VV(1)/VVc(1)".into(),
        f_io.to_string(),
        f_io.modal_depth().to_string(),
        run.rounds().to_string(),
        (run.outputs() == expect).to_string(),
    ]);
    print!("{}", t.render());
    println!("running time = modal depth (paper: md+1; we apply the rectification it describes)");
}

/// Tables 4–5: the algorithm → formula construction.
fn table4_5() {
    section("Tables 4–5: compiling a finite-state MB algorithm into a GML formula");
    let opts = ToFormulaOptions { max_degree: 3, horizon: 4, ..Default::default() };
    let formulas = mb_algorithm_to_formulas(&OddOddMb, &opts).expect("compiles");
    let mut t = Table::new(["output", "formula size", "modal depth", "matches on suite"]);
    for (output, psi) in &formulas {
        let mut all = true;
        for w in workloads::standard_suite() {
            if w.graph.max_degree() > opts.max_degree {
                continue;
            }
            let run = Simulator::new().run(&MbAsVector(OddOddMb), &w.graph, &w.ports).unwrap();
            let k = Kripke::k_mm(&w.graph);
            let truth = evaluate(&k, psi).unwrap();
            let expected: Vec<bool> = run.outputs().iter().map(|o| o == output).collect();
            all &= truth == expected;
        }
        t.row([
            output.to_string(),
            psi.size().to_string(),
            psi.modal_depth().to_string(),
            all.to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// A tiny genuine Multiset algorithm used in the Theorem 4 sweep.
#[derive(Debug, Clone, Copy)]
struct DegreeProfile;

impl MultisetAlgorithm for DegreeProfile {
    type State = usize;
    type Msg = usize;
    type Output = Vec<usize>;

    fn init(&self, degree: usize) -> Status<usize, Vec<usize>> {
        Status::Running(degree)
    }

    fn message(&self, state: &usize, _port: usize) -> usize {
        *state
    }

    fn step(&self, _state: &usize, received: &Multiset<Payload<usize>>) -> Status<usize, Vec<usize>> {
        Status::Stopped(received.iter().filter_map(Payload::data).copied().collect())
    }
}

/// Theorem 4: Set simulates Multiset in T + 2Δ rounds.
fn thm4() {
    section("Theorem 4 (SV = MV): rounds of the Set-from-Multiset simulation, T + 2Δ");
    let sim = Simulator::new();
    let mut t = Table::new(["graph", "Δ", "direct rounds T", "wrapped rounds", "= T + 2Δ", "max msg units"]);
    let mut rng = StdRng::seed_from_u64(4);
    let mut graphs: Vec<(String, Graph)> = vec![
        ("cycle8".into(), generators::cycle(8)),
        ("star4".into(), generators::star(4)),
        ("grid3x3".into(), generators::grid(3, 3)),
    ];
    for d in [3usize, 4] {
        graphs.push((format!("reg{d}-10"), generators::random_regular(10, d, &mut rng)));
    }
    for (name, g) in graphs {
        let delta = g.max_degree();
        let p = PortNumbering::random(&g, &mut rng);
        let direct = sim.run(&MultisetAsVector(DegreeProfile), &g, &p).unwrap();
        let wrapped =
            sim.run(&SetAsVector(SetFromMultiset::new(DegreeProfile, delta)), &g, &p).unwrap();
        t.row([
            name,
            delta.to_string(),
            direct.rounds().to_string(),
            wrapped.rounds().to_string(),
            (wrapped.rounds() == direct.rounds() + 2 * delta).to_string(),
            wrapped.max_message_units().to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// Theorems 8–9: history-based simulation — no round overhead, growing
/// messages (the paper's open question on message size).
fn thm8_9() {
    section("Theorems 8–9 (MV = VV, MB = VB): history simulation — same rounds, growing messages");
    let sim = Simulator::new();
    let g = generators::cycle(10);
    let p = PortNumbering::consistent(&g);
    let mut t = Table::new(["radius T", "direct rounds", "wrapped rounds", "direct max msg", "wrapped max msg"]);
    for radius in [1usize, 2, 3, 4, 5] {
        let direct = sim.run(&ViewGather { radius }, &g, &p).unwrap();
        let wrapped = sim
            .run(&MultisetAsVector(MultisetFromVector::new(ViewGather { radius })), &g, &p)
            .unwrap();
        t.row([
            radius.to_string(),
            direct.rounds().to_string(),
            wrapped.rounds().to_string(),
            direct.max_message_units().to_string(),
            wrapped.max_message_units().to_string(),
        ]);
    }
    print!("{}", t.render());
}

/// Theorems 11, 13, 17: the strict separations.
fn separations_report() {
    section("Theorems 11, 13, 17: separations (positive algorithm + bisimulation obstruction)");
    for e in separations::derive_linear_order() {
        println!("  {e}");
        assert!(e.holds(), "separation failed: {e}");
    }
}

/// Remark 2: the degree-oblivious class SBo.
fn remark2() {
    section("Remark 2: degree-oblivious SBo solves (only) non-isolation");
    let g = Graph::disjoint_union(&[&generators::star(3), &Graph::empty(2)]);
    let p = PortNumbering::consistent(&g);
    let sim = Simulator::new();
    let run = sim
        .run(
            &SbAsVector(ObliviousAsSb(portnum::algorithms::sb::NonIsolationOblivious)),
            &g,
            &p,
        )
        .unwrap();
    println!(
        "  non-isolation solved by SBo: {} (outputs {:?})",
        NonIsolation.is_valid(&g, run.outputs()),
        run.outputs()
    );
    let run = sim.run(&SbAsVector(LocalMaxDegreeSb), &g, &p).unwrap();
    println!(
        "  local-max-degree needs degrees (SB, not SBo): {}",
        LocalMaxDegree.is_valid(&g, run.outputs())
    );
}

/// Section 3.3 motivation: 2-approximate vertex cover in MB(1).
fn vertex_cover() {
    section("Section 3.3 / [3]: 2-approximate vertex cover by edge packing in MB");
    let sim = Simulator::new();
    let problem = VertexCoverApprox::two();
    let mut t = Table::new(["graph", "|C|", "opt", "ratio ok (≤2)", "rounds"]);
    for w in workloads::standard_suite() {
        if w.graph.edge_count() == 0 {
            continue;
        }
        let run = sim.run(&MbAsVector(EdgePackingVertexCover), &w.graph, &w.ports).unwrap();
        let size = run.outputs().iter().filter(|&&b| b).count();
        let opt = verify::min_vertex_cover_size(&w.graph);
        t.row([
            w.name.clone(),
            size.to_string(),
            opt.to_string(),
            problem.is_valid(&w.graph, run.outputs()).to_string(),
            run.rounds().to_string(),
        ]);
    }
    print!("{}", t.render());
}

// Formula is used via parse(); silence the otherwise-unused import lint in
// builds where sections are trimmed.
#[allow(dead_code)]
fn _formula_marker(_f: Formula, _i: ModalIndex) {}
