//! # portnum-bench
//!
//! Shared workload generators and report formatting for the benchmark
//! harness and the `reproduce` binary, which regenerates every figure and
//! table of the paper (see `EXPERIMENTS.md` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod workloads;
