//! Minimal fixed-width table rendering for the `reproduce` binary.

/// A plain-text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with blanks).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Table {
        self.rows.push(row.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut width = vec![0usize; cols];
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        for (c, w) in width.iter_mut().enumerate() {
            *w = std::iter::once(&self.header)
                .chain(self.rows.iter())
                .map(|r| cell(r, c).chars().count())
                .max()
                .unwrap_or(0);
        }
        let render_row = |row: &[String]| -> String {
            let cells: Vec<String> = (0..cols)
                .map(|c| format!("{:<w$}", cell(row, c), w = width[c]))
                .collect();
            format!("| {} |", cells.join(" | "))
        };
        let sep = format!(
            "|{}|",
            width.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
        );
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Prints a section heading for the reproduce report.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("longer"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }
}
