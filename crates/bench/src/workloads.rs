//! Workload generators shared by the Criterion benches and `reproduce`.

use portnum_graph::{generators, Graph, PortNumbering};
use portnum_logic::{Formula, Kripke, KripkeBuilder, ModalIndex, ModelDelta, ModelVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A depth-`depth` model-checking formula alternating grade-1 and
/// grade-2 diamonds over `Any`, used by the eval benches and the
/// `BENCH_eval.json` snapshot — one definition so both measure the
/// same workload.
pub fn nested_diamonds(depth: usize) -> Formula {
    let mut f = Formula::prop(2);
    for i in 0..depth {
        let grade = 1 + (i % 2);
        f = Formula::diamond_geq(ModalIndex::Any, grade, &f).or(&Formula::prop(1));
    }
    f
}

/// `f_{n+1} = f_n ∧ f_n` iterated `levels` times over a diamond seed:
/// an exponential formula tree that is a linear DAG, exercising the
/// evaluator's shared-subformula memoisation.
pub fn shared_dag(levels: usize) -> Formula {
    let mut f = Formula::diamond(ModalIndex::Any, &Formula::prop(2));
    for _ in 0..levels {
        f = f.and(&f);
    }
    f
}

/// A named graph instance with a port numbering.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// A port numbering (consistent unless stated otherwise in the name).
    pub ports: PortNumbering,
}

impl Workload {
    /// Builds a workload with the canonical consistent numbering.
    pub fn consistent(name: impl Into<String>, graph: Graph) -> Workload {
        let ports = PortNumbering::consistent(&graph);
        Workload { name: name.into(), graph, ports }
    }

    /// Builds a workload with a seeded random numbering.
    pub fn random(name: impl Into<String>, graph: Graph, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let ports = PortNumbering::random(&graph, &mut rng);
        Workload { name: name.into(), graph, ports }
    }
}

/// The standard small-graph suite used across benches: one representative
/// per structural family the paper's proofs care about.
pub fn standard_suite() -> Vec<Workload> {
    vec![
        Workload::consistent("figure1", generators::figure1_graph()),
        Workload::consistent("cycle16", generators::cycle(16)),
        Workload::consistent("star8", generators::star(8)),
        Workload::consistent("grid4x4", generators::grid(4, 4)),
        Workload::consistent("petersen", generators::petersen()),
        Workload::consistent("no1factor3", generators::no_one_factor(3)),
        Workload::consistent("thm13", generators::theorem13_witness().0),
    ]
}

/// Cycles of increasing size (scaling benches).
pub fn cycle_sweep(sizes: &[usize]) -> Vec<Workload> {
    sizes.iter().map(|&n| Workload::consistent(format!("cycle{n}"), generators::cycle(n))).collect()
}

/// Paths of increasing size — the long-diameter workloads where
/// refinement takes Θ(n) rounds and each round changes O(1) blocks.
/// These are the headline cases for the worklist refinement engine.
pub fn path_sweep(sizes: &[usize]) -> Vec<Workload> {
    sizes.iter().map(|&n| Workload::consistent(format!("path{n}"), generators::path(n))).collect()
}

/// A deep caterpillar tree on `n` nodes (`n/2` spine nodes, one leaf
/// each): diameter ~n/2 like a path, but with degree-3 spine worlds so
/// the refinement frontier carries both leaf and spine blocks.
pub fn deep_tree(n: usize) -> Workload {
    Workload::consistent(format!("deep_tree{n}"), generators::caterpillar(n / 2))
}

/// A sparse model **above the evaluator's dense reverse cap**
/// ([`portnum_logic::plan::REVERSE_WORD_CAP`]): a 16384-world path,
/// whose per-relation predecessor matrix would cost 16384 × 256 = 2²²
/// `u64` words — twice the cap — while its CSC store is O(n). The
/// workload where the reverse diamond path is only reachable through
/// the CSC gather.
pub fn sparse_huge() -> Workload {
    let n = 16_384;
    let w = Workload::consistent(format!("sparse_huge{n}"), generators::path(n));
    debug_assert!(n * n.div_ceil(64) > portnum_logic::plan::REVERSE_WORD_CAP);
    w
}

/// The sparse-inner-set diamond paired with [`sparse_huge`]: `⟨*,*⟩q₁`
/// holds at a path's two endpoint-neighbours, so `‖φ‖` has two worlds
/// and the reverse gather touches two predecessor rows where the
/// forward sweep walks all n worlds.
pub fn endpoint_diamond() -> Formula {
    Formula::diamond(ModalIndex::Any, &Formula::prop(1))
}

/// Random `d`-regular graphs of increasing size.
pub fn regular_sweep(d: usize, sizes: &[usize], seed: u64) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes
        .iter()
        .map(|&n| {
            let g = generators::random_regular(n, d, &mut rng);
            Workload::random(format!("reg{d}-{n}"), g, seed ^ n as u64)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Streamed million-world families. Each builds a `K₋,₋` model straight
// through `KripkeBuilder`'s two-pass streaming CSR construction — no
// `Graph`, no port numbering, no intermediate edge `Vec` — so peak
// memory is the finished CSR plus O(1) stream state. At 10⁶–10⁷
// worlds that is the difference between fitting in RAM and not.
// ---------------------------------------------------------------------

/// The streamed path `P_n` as a `K₋,₋` model on `n` worlds.
pub fn huge_path(n: usize) -> Kripke {
    KripkeBuilder::new(ModelVariant::MinusMinus, n)
        .relation(ModalIndex::Any, move || generators::path_edges(n))
        .build()
        .expect("path stream stays in range")
}

/// The streamed caterpillar (spine path plus one leaf per spine world)
/// as a `K₋,₋` model on `2·spine` worlds — the deep-tree shape of
/// [`deep_tree`] at sizes where building the `Graph` first would
/// dominate.
pub fn huge_caterpillar(spine: usize) -> Kripke {
    KripkeBuilder::new(ModelVariant::MinusMinus, 2 * spine)
        .relation(ModalIndex::Any, move || generators::caterpillar_edges(spine))
        .build()
        .expect("caterpillar stream stays in range")
}

/// A streamed circulant (bounded-degree regular) `K₋,₋` model: world
/// `v` sees `v ± o (mod n)` for every offset.
pub fn huge_circulant(n: usize, offsets: Vec<usize>) -> Kripke {
    KripkeBuilder::new(ModelVariant::MinusMinus, n)
        .relation(ModalIndex::Any, move || generators::circulant_edges(n, &offsets))
        .build()
        .expect("circulant stream stays in range")
}

/// A streamed sparse `G(n, p)` `K₋,₋` model (seeded, deterministic):
/// the geometric-skip stream touches only the kept pairs, so
/// construction is `O(n + edges)` even though the pair space is
/// `n(n−1)/2`. For a bounded average degree `d`, pass `p = d / n`.
pub fn huge_gnp(n: usize, p: f64, seed: u64) -> Kripke {
    KripkeBuilder::new(ModelVariant::MinusMinus, n)
        .relation(ModalIndex::Any, move || generators::gnp_edges(n, p, seed))
        .build()
        .expect("gnp stream stays in range")
}

/// The streamed path with a goal world every `goal_every` positions
/// (valuation 1 at goals, 0 elsewhere), the fixpoint benchmark model:
/// `µX. q1 ∨ ⟨*,*⟩X` converges in ≈ `goal_every/2` Kleene iterations,
/// and after the first dense pass the frontier is two worlds per goal
/// segment — tiny against the whole model, which is exactly the gap
/// the `reachability_1m` snapshot measures.
pub fn huge_reachability(n: usize, goal_every: usize) -> Kripke {
    assert!(goal_every >= 2, "adjacent goals leave no frontier to measure");
    KripkeBuilder::new(ModelVariant::MinusMinus, n)
        .relation(ModalIndex::Any, move || generators::path_edges(n))
        .degrees((0..n).map(|v| usize::from(v % goal_every == 0)).collect())
        .build()
        .expect("path stream stays in range")
}

/// The reachability fixpoint paired with [`huge_reachability`]:
/// `µX. q1 ∨ ⟨*,*⟩X` — every world can reach a goal, but only by
/// iterating the wave out from the goal worlds.
pub fn reachability_formula() -> Formula {
    Formula::mu(
        "X",
        &Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X"))),
    )
    .expect("body is positive in X")
}

/// Random bounded-degree `G(n, p)` graphs.
pub fn gnp_sweep(sizes: &[usize], p: f64, seed: u64) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(seed);
    sizes
        .iter()
        .map(|&n| {
            let g = generators::gnp(n, p, &mut rng);
            Workload::consistent(format!("gnp{n}"), g)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Live-update delta workloads: deterministic `ModelDelta` sequences for
// the live_update bench and the `BENCH_eval.json` live_update rows.
// ---------------------------------------------------------------------

/// `k` localized edge-flip deltas against a symmetric single-relation
/// `K₋,₋` model: delta `i` removes the `i`-th sampled undirected edge
/// (both stored directions) and re-adds the previously removed one, so
/// every delta edits at most four directed entries and the model drifts
/// by one missing edge at a time. Edges are sampled distinct by a
/// seeded partial shuffle ([`generators::crash_schedule`] over edge
/// indices), making the sequence a pure function of `(model, k, seed)`.
///
/// # Panics
///
/// Panics if the model is not `K₋,₋` or stores fewer than `k`
/// undirected edges.
pub fn edge_flip_deltas(model: &Kripke, k: usize, seed: u64) -> Vec<ModelDelta> {
    assert_eq!(model.variant(), ModelVariant::MinusMinus, "edge flips target K₋,₋ models");
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 0..model.len() {
        for &w in model.successors_dense(0, v) {
            if (v as u32) < w {
                edges.push((v as u32, w));
            }
        }
    }
    assert!(k <= edges.len(), "cannot flip {k} of {} undirected edges", edges.len());
    let picks = generators::crash_schedule(edges.len(), k, seed);
    let mut deltas = Vec::with_capacity(k);
    for (i, &e) in picks.iter().enumerate() {
        let (v, w) = edges[e as usize];
        let mut d = ModelDelta::new();
        d.remove_edge(ModalIndex::Any, v, w).remove_edge(ModalIndex::Any, w, v);
        if i > 0 {
            let (pv, pw) = edges[picks[i - 1] as usize];
            d.add_edge(ModalIndex::Any, pv, pw).add_edge(ModalIndex::Any, pw, pv);
        }
        deltas.push(d);
    }
    deltas
}

/// The same `k` edge flips as [`edge_flip_deltas`], merged into one
/// arrival batch: every sampled edge is removed and all but the last
/// re-added, which is exactly what the per-flip sequence composes to.
/// Applying the batch patches each of the model's built caches once
/// instead of once per flip — the serving pattern the
/// `live_update_repair` rows of `reproduce` measure.
pub fn edge_flip_batch(model: &Kripke, k: usize, seed: u64) -> ModelDelta {
    let mut batch = ModelDelta::new();
    let deltas = edge_flip_deltas(model, k, seed);
    for d in &deltas {
        batch.merge(d);
    }
    batch
}

/// `k` crash-failure deltas: each crashes one distinct world (sampled
/// by [`generators::crash_schedule`]), isolating it from every stored
/// relation while the universe keeps its size. Works on any model
/// variant.
pub fn crash_deltas(model: &Kripke, k: usize, seed: u64) -> Vec<ModelDelta> {
    generators::crash_schedule(model.len(), k, seed)
        .into_iter()
        .map(|v| {
            let mut d = ModelDelta::new();
            d.crash_world(v);
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_wellformed() {
        for w in standard_suite() {
            assert_eq!(w.graph.len(), w.ports.len(), "{}", w.name);
            assert!(w.ports.is_consistent());
        }
        assert_eq!(cycle_sweep(&[4, 8]).len(), 2);
        let regs = regular_sweep(3, &[8, 10], 7);
        assert!(regs.iter().all(|w| w.graph.max_degree() == 3));
    }

    #[test]
    fn streamed_families_match_graph_built_models_in_miniature() {
        // The streamed builders must agree with the Graph route at
        // sizes where both are affordable; path and caterpillar emit
        // rows in the Graph generators' exact adjacency order, so the
        // models are `Eq`.
        assert_eq!(huge_path(64), Kripke::k_mm(&generators::path(64)));
        assert_eq!(huge_caterpillar(32), Kripke::k_mm(&generators::caterpillar(32)));
        // Circulant rows may order offsets differently; check shape.
        let c = huge_circulant(60, vec![1, 7]);
        assert_eq!(c.len(), 60);
        assert!(c.degrees().iter().all(|&d| d == 4));
        // The gnp stream is its own RNG; check symmetry-level facts.
        let g = huge_gnp(500, 0.01, 42);
        assert_eq!(g.len(), 500);
        assert_eq!(g.degrees().iter().sum::<usize>(), g.relation_entry_count());
        assert!(g.relation_entry_count().is_multiple_of(2), "symmetric pairs come in twos");
    }

    #[test]
    fn delta_workloads_apply_cleanly_and_stay_localized() {
        let mut k = Kripke::k_mm(&generators::path(64));
        let entries = k.relation_entry_count();
        for (i, d) in edge_flip_deltas(&k, 8, 9).iter().enumerate() {
            let touched = k.apply_delta(d).expect("flip deltas name stored edges");
            assert!(touched.len() <= 4, "delta {i} touched {touched:?}");
        }
        // Net effect of 8 flips: exactly one undirected edge missing.
        assert_eq!(k.relation_entry_count(), entries - 2);
        assert_eq!(edge_flip_deltas(&k, 8, 9).len(), 8);

        // The merged batch composes to the same model as the sequence.
        let base = Kripke::k_mm(&generators::path(64));
        let mut batched = base.clone();
        batched.apply_delta(&edge_flip_batch(&base, 8, 9)).expect("batch applies");
        assert_eq!(batched, k);
        assert_eq!(batched.version(), 1, "one arrival, one version bump");

        let mut k = Kripke::k_mm(&generators::cycle(32));
        let crashes = crash_deltas(&k, 5, 3);
        for d in &crashes {
            k.apply_delta(d).expect("crashes are always valid");
        }
        // Crashed worlds are isolated (bystanders may lose edges too).
        assert_eq!(crashes.len(), 5);
        assert!(k.degrees().iter().filter(|&&d| d == 0).count() >= 5);
        assert_eq!(k.len(), 32, "the universe never shrinks");
    }
}
