//! Algorithms in `Multiset ∩ Broadcast` (class `MB`).

use crate::rational::Ratio;
use portnum_machine::{MbAlgorithm, Multiset, Payload, Status};

/// One-round `MB` algorithm for the [`OddOdd`](crate::problems::OddOdd)
/// problem of Theorem 13: broadcast your degree parity; output 1 iff an odd
/// number of neighbours reported odd. Counting the multiset is essential —
/// the same problem is **not** solvable in `SB` (Theorem 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OddOddMb;

impl MbAlgorithm for OddOddMb {
    type State = usize;
    type Msg = bool;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<usize, bool> {
        Status::Running(degree)
    }

    fn broadcast(&self, state: &usize) -> bool {
        state % 2 == 1
    }

    fn step(&self, _state: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, bool> {
        Status::Stopped(received.count(&Payload::Data(true)) % 2 == 1)
    }
}

/// `MB` 2-approximate minimum vertex cover by **maximal edge packing**, in
/// the spirit of Åstrand–Suomela \[3\] (the paper's motivating example of a
/// non-trivial problem in `MB(1)`).
///
/// Every node starts with residual capacity 1. Each round, an active node
/// offers `residual / (active neighbours)` to each incident active edge and
/// broadcasts the offer; the edge `{u, v}` is raised by `min(o_u, o_v)`,
/// which both endpoints compute symmetrically from the received *multiset*
/// of offers. A node whose residual hits 0 is saturated: it stops and
/// outputs 1 (in the cover). A node whose active neighbours all saturated
/// stops and outputs 0. On termination the packing is maximal, so the
/// saturated nodes form a vertex cover of size at most `2·opt` (LP
/// duality).
///
/// Deviations from \[3\], documented: Åstrand–Suomela engineer the offers so
/// that `O(Δ)` rounds suffice; this implementation uses the natural uniform
/// offer, which still terminates (every round, the active node with the
/// globally minimal offer saturates unless its active degree dropped) but
/// only guarantees `O(n)` rounds. Arithmetic is exact rational and panics
/// on `u128` overflow for adversarially deep instances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgePackingVertexCover;

/// State of [`EdgePackingVertexCover`]: the residual capacity and the
/// number of neighbours believed active (as of the previous round).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackingState {
    residual: Ratio,
    active_neighbors: usize,
}

impl MbAlgorithm for EdgePackingVertexCover {
    type State = PackingState;
    type Msg = Ratio;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<PackingState, bool> {
        if degree == 0 {
            // No incident edges: never in a minimal cover.
            Status::Stopped(false)
        } else {
            Status::Running(PackingState {
                residual: Ratio::one(),
                active_neighbors: degree,
            })
        }
    }

    fn broadcast(&self, state: &PackingState) -> Ratio {
        state.residual.div_int(state.active_neighbors)
    }

    fn step(
        &self,
        state: &PackingState,
        received: &Multiset<Payload<Ratio>>,
    ) -> Status<PackingState, bool> {
        let own_offer = state.residual.div_int(state.active_neighbors);
        let mut active = 0usize;
        let mut raised = Ratio::zero();
        for (payload, count) in received.counts() {
            if let Payload::Data(offer) = payload {
                active += count;
                raised = raised.add(own_offer.min(*offer).mul_int(count));
            }
        }
        let residual = state.residual.sub(raised);
        if residual.is_zero() {
            Status::Stopped(true) // saturated: in the cover
        } else if active == 0 {
            Status::Stopped(false) // all incident edges are covered
        } else {
            Status::Running(PackingState { residual, active_neighbors: active })
        }
    }
}

/// `MB` algorithm counting neighbours with degree at least `threshold`;
/// a simple example of the counting power `MB` has over `SB`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountHighDegreeNeighbors {
    /// The degree threshold.
    pub threshold: usize,
}

impl MbAlgorithm for CountHighDegreeNeighbors {
    type State = usize;
    type Msg = bool;
    type Output = usize;

    fn init(&self, degree: usize) -> Status<usize, usize> {
        Status::Running(degree)
    }

    fn broadcast(&self, state: &usize) -> bool {
        *state >= self.threshold
    }

    fn step(&self, _state: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, usize> {
        Status::Stopped(received.count(&Payload::Data(true)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{OddOdd, Problem, VertexCoverApprox};
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::MbAsVector;
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn odd_odd_solves_its_problem() {
        let sim = Simulator::new();
        let (witness, _) = generators::theorem13_witness();
        for g in [
            witness,
            generators::star(4),
            generators::figure1_graph(),
            generators::petersen(),
        ] {
            let p = PortNumbering::consistent(&g);
            let run = sim.run(&MbAsVector(OddOddMb), &g, &p).unwrap();
            assert!(OddOdd.is_valid(&g, run.outputs()), "{g}");
            assert_eq!(run.rounds(), 1);
        }
    }

    #[test]
    fn edge_packing_gives_two_approx_cover() {
        let sim = Simulator::new();
        let problem = VertexCoverApprox::two();
        let mut rng = StdRng::seed_from_u64(99);
        let mut graphs = vec![
            generators::cycle(5),
            generators::cycle(6),
            generators::star(6),
            generators::path(7),
            generators::petersen(),
            generators::complete(5),
            generators::grid(3, 4),
            generators::no_one_factor(3),
        ];
        for _ in 0..10 {
            graphs.push(generators::gnp(10, 0.3, &mut rng));
        }
        for g in graphs {
            if g.edge_count() == 0 {
                continue;
            }
            let p = PortNumbering::consistent(&g);
            let run = sim.run(&MbAsVector(EdgePackingVertexCover), &g, &p).unwrap();
            assert!(problem.is_valid(&g, run.outputs()), "{g}: {:?}", run.outputs());
        }
    }

    #[test]
    fn edge_packing_on_star_picks_centre_fast() {
        // On a star the centre saturates in one round (every leaf offers 1,
        // the centre offers 1/k per edge).
        let g = generators::star(5);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&MbAsVector(EdgePackingVertexCover), &g, &p).unwrap();
        assert!(run.outputs()[0]);
        assert!(run.rounds() <= 3);
    }

    #[test]
    fn edge_packing_handles_isolated_nodes() {
        let g = portnum_graph::Graph::disjoint_union(&[
            &generators::path(2),
            &portnum_graph::Graph::empty(1),
        ]);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&MbAsVector(EdgePackingVertexCover), &g, &p).unwrap();
        assert!(!run.outputs()[2]);
        assert!(run.outputs()[0] || run.outputs()[1]);
    }

    #[test]
    fn count_high_degree_neighbors() {
        let g = generators::figure1_graph(); // degrees: 3,2,2,1
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new()
            .run(&MbAsVector(CountHighDegreeNeighbors { threshold: 2 }), &g, &p)
            .unwrap();
        assert_eq!(run.outputs(), &[2, 2, 2, 1]);
    }
}
