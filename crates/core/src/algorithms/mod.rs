//! Concrete algorithms, one module per model class.
//!
//! Each algorithm is written against the *weakest* trait that supports it,
//! so its class membership is a static guarantee:
//!
//! * [`sb`] — `Set ∩ Broadcast`: local maximum degree; the degree-oblivious
//!   non-isolation detector of Remark 2.
//! * [`mb`] — `Multiset ∩ Broadcast`: the odd-odd algorithm of Theorem 13;
//!   the edge-packing 2-approximate vertex cover in the spirit of
//!   Åstrand–Suomela \[3\].
//! * [`sv`] — `Set`: the star leaf-selection algorithm of Theorem 11.
//! * [`vv`] — `Vector`: view gathering (Yamashita–Kameda).
//! * [`vvc`] — `Vector`, meaningful under consistent numberings: the
//!   local-type symmetry breaker of Theorem 17.

pub mod mb;
pub mod sb;
pub mod sv;
pub mod vv;
pub mod vvc;
