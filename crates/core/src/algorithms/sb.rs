//! Algorithms in `Set ∩ Broadcast` (class `SB`) and its degree-oblivious
//! restriction `SBo` (Remark 2).

use portnum_machine::{ObliviousAlgorithm, Payload, SbAlgorithm, Status};
use std::collections::BTreeSet;

/// One-round `SB` algorithm for [`LocalMaxDegree`](crate::problems::LocalMaxDegree):
/// broadcast your degree; output 1 iff no neighbour reported a larger one.
///
/// Set reception suffices — only the *maximum* of the incoming degrees
/// matters, not how often each value occurs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalMaxDegreeSb;

impl SbAlgorithm for LocalMaxDegreeSb {
    type State = usize;
    type Msg = usize;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<usize, bool> {
        Status::Running(degree)
    }

    fn broadcast(&self, state: &usize) -> usize {
        *state
    }

    fn step(&self, state: &usize, received: &BTreeSet<Payload<usize>>) -> Status<usize, bool> {
        let max_neighbor = received.iter().filter_map(Payload::data).max();
        Status::Stopped(max_neighbor.is_none_or(|&m| m <= *state))
    }
}

/// One-round **degree-oblivious** algorithm (class `SBo`) for
/// [`NonIsolation`](crate::problems::NonIsolation): broadcast a ping;
/// output 1 iff anything was heard. Remark 2 observes that this is
/// essentially the *only* problem `SBo` can solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonIsolationOblivious;

impl ObliviousAlgorithm for NonIsolationOblivious {
    type State = ();
    type Msg = ();
    type Output = bool;

    fn init(&self) -> Status<(), bool> {
        Status::Running(())
    }

    fn broadcast(&self, _state: &()) {}

    fn step(&self, _state: &(), received: &BTreeSet<Payload<()>>) -> Status<(), bool> {
        Status::Stopped(!received.is_empty())
    }
}

/// `SB` algorithm broadcasting the *set* of degrees seen so far for a fixed
/// number of rounds; the output is the set of degrees within distance
/// `radius`. Demonstrates multi-round `SB` information spread (everything
/// an `SB` algorithm learns is such a set-shaped aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeSetGossip {
    /// How many rounds to gossip.
    pub radius: usize,
}

impl SbAlgorithm for DegreeSetGossip {
    type State = (usize, BTreeSet<usize>);
    type Msg = BTreeSet<usize>;
    type Output = BTreeSet<usize>;

    fn init(&self, degree: usize) -> Status<(usize, BTreeSet<usize>), BTreeSet<usize>> {
        let known: BTreeSet<usize> = [degree].into();
        if self.radius == 0 {
            Status::Stopped(known)
        } else {
            Status::Running((0, known))
        }
    }

    fn broadcast(&self, (_, known): &(usize, BTreeSet<usize>)) -> BTreeSet<usize> {
        known.clone()
    }

    fn step(
        &self,
        (round, known): &(usize, BTreeSet<usize>),
        received: &BTreeSet<Payload<BTreeSet<usize>>>,
    ) -> Status<(usize, BTreeSet<usize>), BTreeSet<usize>> {
        let mut known = known.clone();
        for payload in received {
            if let Payload::Data(set) = payload {
                known.extend(set.iter().copied());
            }
        }
        if round + 1 == self.radius {
            Status::Stopped(known)
        } else {
            Status::Running((round + 1, known))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{LocalMaxDegree, NonIsolation, Problem};
    use portnum_graph::{generators, Graph, PortNumbering};
    use portnum_machine::adapters::{ObliviousAsSb, SbAsVector};
    use portnum_machine::Simulator;

    #[test]
    fn local_max_degree_solves_its_problem() {
        let sim = Simulator::new();
        for g in [
            generators::star(4),
            generators::path(5),
            generators::figure1_graph(),
            generators::grid(3, 3),
        ] {
            let p = PortNumbering::consistent(&g);
            let run = sim.run(&SbAsVector(LocalMaxDegreeSb), &g, &p).unwrap();
            assert!(LocalMaxDegree.is_valid(&g, run.outputs()), "{g}");
            assert_eq!(run.rounds(), 1);
        }
    }

    #[test]
    fn oblivious_non_isolation() {
        let g = Graph::disjoint_union(&[&generators::cycle(3), &Graph::empty(2)]);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new()
            .run(&SbAsVector(ObliviousAsSb(NonIsolationOblivious)), &g, &p)
            .unwrap();
        assert!(NonIsolation.is_valid(&g, run.outputs()));
    }

    #[test]
    fn degree_gossip_collects_ball() {
        let g = generators::path(5); // degrees 1,2,2,2,1
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new()
            .run(&SbAsVector(DegreeSetGossip { radius: 2 }), &g, &p)
            .unwrap();
        // Node 2 (middle) sees only degree-2 nodes within distance 1, but
        // learns of degree 1 via two hops.
        let out = &run.outputs()[2];
        assert!(out.contains(&1) && out.contains(&2));
        // Node 0 after radius 2 knows {1, 2}.
        assert_eq!(run.outputs()[0], [1, 2].into());
        // Radius 0 stops immediately with the own degree.
        let run0 = Simulator::new()
            .run(&SbAsVector(DegreeSetGossip { radius: 0 }), &g, &p)
            .unwrap();
        assert_eq!(run0.rounds(), 0);
        assert_eq!(run0.outputs()[0], [1].into());
    }
}
