//! Algorithms in class `Set` (problem class `SV`).

use portnum_machine::{Payload, SetAlgorithm, Status};
use std::collections::BTreeSet;

/// Theorem 11's one-round `Set` algorithm for
/// [`LeafInStar`](crate::problems::LeafInStar): every node sends its port
/// index `i` to port `i`; a node outputs 1 iff it has degree 1 and received
/// the set `{0}` — i.e. it is the leaf hanging off the centre's out-port 0.
///
/// This is the algorithm from the proof of Theorem 11 (with the paper's
/// 1-based `{1}` becoming 0-based `{0}`); it shows `SV` can use *outgoing*
/// port numbers to break the leaves' symmetry, which no `VB` algorithm can
/// (the leaves are bisimilar in `K₊,₋` under every port numbering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StarLeafSelect;

impl SetAlgorithm for StarLeafSelect {
    type State = usize;
    type Msg = usize;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<usize, bool> {
        if degree == 0 {
            Status::Stopped(false)
        } else {
            Status::Running(degree)
        }
    }

    fn message(&self, _state: &usize, port: usize) -> usize {
        port
    }

    fn step(&self, state: &usize, received: &BTreeSet<Payload<usize>>) -> Status<usize, bool> {
        let selected = *state == 1 && received.len() == 1 && received.contains(&Payload::Data(0));
        Status::Stopped(selected)
    }
}

/// A `Set` algorithm computing, in one round, the set of out-port indices
/// that neighbours use towards this node — exactly the information an `SV`
/// algorithm has that a `VB` algorithm lacks (Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncomingPortProbe;

impl SetAlgorithm for IncomingPortProbe {
    type State = ();
    type Msg = usize;
    type Output = BTreeSet<usize>;

    fn init(&self, _degree: usize) -> Status<(), BTreeSet<usize>> {
        Status::Running(())
    }

    fn message(&self, _state: &(), port: usize) -> usize {
        port
    }

    fn step(
        &self,
        _state: &(),
        received: &BTreeSet<Payload<usize>>,
    ) -> Status<(), BTreeSet<usize>> {
        Status::Stopped(received.iter().filter_map(Payload::data).copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{LeafInStar, Problem};
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::SetAsVector;
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_exactly_one_leaf_under_any_numbering() {
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(21);
        for k in [2usize, 3, 5, 9] {
            let g = generators::star(k);
            for _ in 0..10 {
                let p = PortNumbering::random(&g, &mut rng);
                let run = sim.run(&SetAsVector(StarLeafSelect), &g, &p).unwrap();
                assert!(LeafInStar.is_valid(&g, run.outputs()), "k = {k}");
                assert_eq!(run.rounds(), 1);
            }
        }
    }

    #[test]
    fn harmless_on_other_graphs() {
        let sim = Simulator::new();
        for g in [generators::cycle(5), generators::grid(2, 3), generators::petersen()] {
            let p = PortNumbering::consistent(&g);
            let run = sim.run(&SetAsVector(StarLeafSelect), &g, &p).unwrap();
            assert!(LeafInStar.is_valid(&g, run.outputs()), "{g}");
        }
    }

    #[test]
    fn incoming_port_probe_reads_backward_map() {
        let g = generators::star(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&SetAsVector(IncomingPortProbe), &g, &p).unwrap();
        // The centre hears {0} (every leaf's only port); each leaf hears
        // the centre port wired to it.
        assert_eq!(run.outputs()[0], [0].into());
        for leaf in 1..=3 {
            let expected: BTreeSet<usize> = [p.local_type(leaf)[0]].into();
            assert_eq!(run.outputs()[leaf], expected);
        }
    }
}
