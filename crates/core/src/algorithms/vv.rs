//! Algorithms in class `Vector` (problem class `VV`).

use portnum_machine::{MessageSize, Payload, Status, VectorAlgorithm};

/// A truncated Yamashita–Kameda view: the full port-labelled unfolding of
/// the graph around a node to a fixed depth. Two nodes have equal views of
/// depth `t` iff no `Vector` algorithm can distinguish them in `t` rounds.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct View {
    /// Degree of the root node.
    pub degree: usize,
    /// For each in-port `i` (in order): the out-port the feeding neighbour
    /// used, and that neighbour's view of depth one less.
    pub children: Vec<(usize, View)>,
}

// Manual `Clone` for the sake of `clone_from`: views are trees of
// `Vec`s, and the simulator's payload recycling re-clones a node's view
// into the same inbox slot every round — deep `clone_from` reuses the
// entire previous tree's allocations when the shape matches (it grows
// by one level per round, so interior nodes always match).
impl Clone for View {
    fn clone(&self) -> View {
        View { degree: self.degree, children: self.children.clone() }
    }

    fn clone_from(&mut self, source: &View) {
        self.degree = source.degree;
        self.children.truncate(source.children.len());
        for (dst, src) in self.children.iter_mut().zip(&source.children) {
            dst.0 = src.0;
            dst.1.clone_from(&src.1);
        }
        let grown = self.children.len();
        self.children.extend_from_slice(&source.children[grown..]);
    }
}

impl View {
    /// The leaf view of a node of the given degree.
    pub fn leaf(degree: usize) -> View {
        View { degree, children: Vec::new() }
    }

    /// Depth of the view tree.
    pub fn depth(&self) -> usize {
        self.children.iter().map(|(_, v)| v.depth() + 1).max().unwrap_or(0)
    }

    /// Number of tree nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|(_, v)| v.size()).sum::<usize>()
    }
}

impl MessageSize for View {
    fn size_units(&self) -> u64 {
        1 + self
            .children
            .iter()
            .map(|(_, v)| 1 + v.size_units())
            .sum::<u64>()
    }
}

/// The canonical `Vector` algorithm: gather the depth-`radius` view.
///
/// Every node's output is its [`View`]; equal outputs correspond exactly to
/// view-equivalence, which the graph crate computes independently via
/// interned refinement ([`portnum_graph::views::view_classes`]) — the two
/// are cross-validated in the tests. Every `Vector` algorithm running in
/// `radius` rounds factors through this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewGather {
    /// How many rounds (= view depth) to gather.
    pub radius: usize,
}

impl VectorAlgorithm for ViewGather {
    type State = (usize, View);
    type Msg = (usize, View);
    type Output = View;

    fn init(&self, degree: usize) -> Status<(usize, View), View> {
        if self.radius == 0 {
            Status::Stopped(View::leaf(degree))
        } else {
            Status::Running((0, View::leaf(degree)))
        }
    }

    fn message(&self, (_, view): &(usize, View), port: usize) -> (usize, View) {
        (port, view.clone())
    }

    fn message_into(
        &self,
        (_, view): &(usize, View),
        port: usize,
        slot: &mut Payload<(usize, View)>,
    ) {
        // Reuse last round's view tree in place; its shape is a strict
        // prefix of this round's, so every allocation is recycled.
        match slot.data_mut() {
            Some((j, old)) => {
                *j = port;
                old.clone_from(view);
            }
            None => *slot = Payload::Data((port, view.clone())),
        }
    }

    fn step(
        &self,
        (round, view): &(usize, View),
        received: &[Payload<(usize, View)>],
    ) -> Status<(usize, View), View> {
        let children: Vec<(usize, View)> = received
            .iter()
            .map(|payload| match payload {
                Payload::Data((j, v)) => (*j, v.clone()),
                Payload::Silent => unreachable!("view gathering never stops early"),
            })
            .collect();
        let next = View { degree: view.degree, children };
        if round + 1 == self.radius {
            Status::Stopped(next)
        } else {
            Status::Running((round + 1, next))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::{generators, views, PortNumbering};
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn view_shapes() {
        let leaf = View::leaf(3);
        assert_eq!(leaf.depth(), 0);
        assert_eq!(leaf.size(), 1);
        let v = View { degree: 2, children: vec![(0, View::leaf(1)), (1, View::leaf(2))] };
        assert_eq!(v.depth(), 1);
        assert_eq!(v.size(), 3);
        assert!(v.size_units() > 3);
    }

    #[test]
    fn gathered_views_match_interned_view_classes() {
        let mut rng = StdRng::seed_from_u64(2718);
        let sim = Simulator::new();
        for g in [
            generators::figure1_graph(),
            generators::cycle(6),
            generators::petersen(),
            generators::random_regular(8, 3, &mut rng),
        ] {
            let p = PortNumbering::random(&g, &mut rng);
            for radius in 0..4 {
                let run = sim.run(&ViewGather { radius }, &g, &p).unwrap();
                assert_eq!(run.rounds(), radius);
                let classes = views::view_classes(&g, &p, radius);
                for u in g.nodes() {
                    for v in g.nodes() {
                        assert_eq!(
                            run.outputs()[u] == run.outputs()[v],
                            classes.equivalent(radius, u, v),
                            "{g}, radius {radius}, nodes {u},{v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn view_depth_equals_radius_on_long_cycles() {
        let g = generators::cycle(12);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&ViewGather { radius: 3 }, &g, &p).unwrap();
        assert!(run.outputs().iter().all(|v| v.depth() == 3));
        // View sizes grow like 2^radius on a cycle.
        assert!(run.outputs()[0].size() >= 2usize.pow(3));
    }

    #[test]
    fn message_into_overwrites_any_stale_slot() {
        // The simulator's recycling contract: `message_into` receives
        // whatever the slot held last round — usually this sender's own
        // previous payload, but after a Data→Silent→Data transition or
        // an inbox re-layout it can be `Silent` or a payload from a
        // *different* route entirely. Whatever it finds, it must leave
        // exactly `Payload::Data(message(state, port))`.
        let algo = ViewGather { radius: 3 };
        let state_deep = (
            2usize,
            View {
                degree: 2,
                children: vec![
                    (1, View { degree: 3, children: vec![(0, View::leaf(1))] }),
                    (0, View::leaf(4)),
                ],
            },
        );
        let state_leaf = (0usize, View::leaf(1));
        let stale_other_route = Payload::Data((
            7usize,
            View { degree: 5, children: vec![(4, View::leaf(9)), (3, View::leaf(9))] },
        ));
        for state in [&state_deep, &state_leaf] {
            for port in [0usize, 1] {
                let expected = Payload::Data(algo.message(state, port));
                let mut slots = vec![
                    Payload::Silent,                                  // neighbour stopped
                    Payload::Data(algo.message(&state_leaf, 1)),      // own older message
                    stale_other_route.clone(),                        // recycled, different route
                    expected.clone(),                                 // steady state
                ];
                for slot in &mut slots {
                    algo.message_into(state, port, slot);
                    assert_eq!(slot, &expected, "port {port}");
                }
            }
        }
    }

    #[test]
    fn view_clone_from_overwrites_larger_and_smaller_trees() {
        // `clone_from` backs the recycling override; it must be a full
        // overwrite whatever shape the recycled tree had (growing,
        // shrinking, or disjoint), not just the strict-prefix shape of
        // steady-state rounds.
        let small = View::leaf(2);
        let big = View {
            degree: 1,
            children: vec![
                (0, View { degree: 2, children: vec![(1, View::leaf(7))] }),
                (1, View::leaf(3)),
            ],
        };
        let mut dst = big.clone();
        dst.clone_from(&small);
        assert_eq!(dst, small);
        let mut dst = small.clone();
        dst.clone_from(&big);
        assert_eq!(dst, big);
        let disjoint = View { degree: 9, children: vec![(5, View::leaf(5))] };
        let mut dst = disjoint;
        dst.clone_from(&big);
        assert_eq!(dst, big);
    }

    #[test]
    fn symmetric_numbering_gives_identical_views() {
        let g = generators::no_one_factor(3);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        let run = Simulator::new().run(&ViewGather { radius: 4 }, &g, &p).unwrap();
        let first = &run.outputs()[0];
        assert!(run.outputs().iter().all(|v| v == first));
    }
}
