//! The `VVc` side: `Vector` algorithms whose correctness relies on the
//! promised *consistency* of the port numbering.

use portnum_machine::{Payload, Status, VectorAlgorithm};

/// Theorem 17's two-round symmetry breaker.
///
/// Round 1: every node sends `i` to its port `i`; the received vector is
/// the node's *local type* `t(v)` (the partner port of each of its ports —
/// meaningful because consistency makes port `i` serve both directions of
/// one edge). Round 2: local types are exchanged and a node outputs 1 iff
/// its type is lexicographically maximal in its closed neighbourhood.
///
/// Under any **consistent** numbering of a graph in the family `𝒢`
/// (connected, odd-regular, no 1-factor), local types cannot all coincide
/// (Lemma 16), so the output is non-constant — solving
/// [`SymmetryBreak`](crate::problems::SymmetryBreak) in `VVc(1)`. Under the
/// symmetric *inconsistent* numbering of Lemma 15 the same algorithm
/// produces constant output, and bisimilarity shows every `VV` algorithm
/// must (Theorem 17).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalTypeSymmetryBreak;

/// Protocol state: collecting the local type, then comparing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeState {
    /// Round 1: waiting for partner port numbers.
    Probing,
    /// Round 2: the local type, being exchanged with neighbours.
    Comparing(Vec<usize>),
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeMsg {
    /// Round 1: "this message left through my port `i`".
    PortNumber(usize),
    /// Round 2: "my local type is …".
    LocalType(Vec<usize>),
}

impl portnum_machine::MessageSize for TypeMsg {
    fn size_units(&self) -> u64 {
        match self {
            TypeMsg::PortNumber(_) => 1,
            TypeMsg::LocalType(t) => 1 + t.len() as u64,
        }
    }
}

impl VectorAlgorithm for LocalTypeSymmetryBreak {
    type State = TypeState;
    type Msg = TypeMsg;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<TypeState, bool> {
        if degree == 0 {
            Status::Stopped(false)
        } else {
            Status::Running(TypeState::Probing)
        }
    }

    fn message(&self, state: &TypeState, port: usize) -> TypeMsg {
        match state {
            TypeState::Probing => TypeMsg::PortNumber(port),
            TypeState::Comparing(t) => TypeMsg::LocalType(t.clone()),
        }
    }

    fn step(&self, state: &TypeState, received: &[Payload<TypeMsg>]) -> Status<TypeState, bool> {
        match state {
            TypeState::Probing => {
                let local_type: Vec<usize> = received
                    .iter()
                    .map(|payload| match payload {
                        Payload::Data(TypeMsg::PortNumber(j)) => *j,
                        _ => unreachable!("round 1 delivers port numbers from running nodes"),
                    })
                    .collect();
                Status::Running(TypeState::Comparing(local_type))
            }
            TypeState::Comparing(own) => {
                let is_max = received.iter().all(|payload| match payload {
                    Payload::Data(TypeMsg::LocalType(t)) => t <= own,
                    _ => unreachable!("round 2 delivers local types from running nodes"),
                });
                Status::Stopped(is_max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{Problem, SymmetryBreak};
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn breaks_symmetry_on_family_graphs_with_consistent_numberings() {
        let sim = Simulator::new();
        let mut rng = StdRng::seed_from_u64(5);
        for k in [3usize, 5] {
            let g = generators::no_one_factor(k);
            assert!(SymmetryBreak::in_family(&g));
            for _ in 0..10 {
                let p = PortNumbering::random_consistent(&g, &mut rng);
                let run = sim.run(&LocalTypeSymmetryBreak, &g, &p).unwrap();
                assert!(SymmetryBreak.is_valid(&g, run.outputs()), "k = {k}");
                assert_eq!(run.rounds(), 2);
            }
        }
    }

    #[test]
    fn constant_output_under_symmetric_numbering() {
        // Lemma 15 in action: under the symmetric (inconsistent) numbering
        // every node computes the same local type, so this algorithm fails —
        // and by Theorem 17 every Vector algorithm must.
        let g = generators::no_one_factor(3);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        assert!(!p.is_consistent());
        let run = Simulator::new().run(&LocalTypeSymmetryBreak, &g, &p).unwrap();
        let first = run.outputs()[0];
        assert!(run.outputs().iter().all(|&b| b == first));
        assert!(!SymmetryBreak.is_valid(&g, run.outputs()));
    }

    #[test]
    fn local_types_match_port_numbering_ground_truth() {
        // The round-1 reception reproduces PortNumbering::local_type.
        let g = generators::petersen();
        let mut rng = StdRng::seed_from_u64(17);
        let p = PortNumbering::random_consistent(&g, &mut rng);
        // Drive one round by hand.
        let algo = LocalTypeSymmetryBreak;
        let mut inbox: Vec<Vec<Payload<TypeMsg>>> =
            g.nodes().map(|v| vec![Payload::Silent; g.degree(v)]).collect();
        for v in g.nodes() {
            for i in 0..g.degree(v) {
                let t = p.forward(portnum_graph::Port::new(v, i));
                inbox[t.node][t.index] = Payload::Data(TypeMsg::PortNumber(i));
            }
        }
        for v in g.nodes() {
            let next = algo.step(&TypeState::Probing, &inbox[v]);
            match next {
                Status::Running(TypeState::Comparing(t)) => {
                    assert_eq!(t, p.local_type(v), "node {v}");
                }
                other => panic!("unexpected state {other:?}"),
            }
        }
    }

    #[test]
    fn isolated_nodes_stop_immediately() {
        let g = portnum_graph::Graph::empty(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&LocalTypeSymmetryBreak, &g, &p).unwrap();
        assert_eq!(run.rounds(), 0);
        assert_eq!(run.outputs(), &[false, false, false]);
    }
}
