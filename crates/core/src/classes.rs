//! The seven problem classes and their order structure (Figures 5a / 5b).

use std::fmt;

/// A problem class of the paper: graph problems solvable by deterministic
/// anonymous algorithms in the corresponding model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProblemClass {
    /// `SB` — `Set ∩ Broadcast`.
    Sb,
    /// `MB` — `Multiset ∩ Broadcast`.
    Mb,
    /// `VB` — `Broadcast` with vector reception.
    Vb,
    /// `SV` — `Set` reception with out-port numbers.
    Sv,
    /// `MV` — `Multiset` reception with out-port numbers.
    Mv,
    /// `VV` — full `Vector` model, arbitrary port numbering.
    Vv,
    /// `VVc` — full `Vector` model with a *consistent* port numbering: the
    /// standard port-numbering model.
    VVc,
}

impl ProblemClass {
    /// All seven classes.
    pub const ALL: [ProblemClass; 7] = [
        ProblemClass::Sb,
        ProblemClass::Mb,
        ProblemClass::Vb,
        ProblemClass::Sv,
        ProblemClass::Mv,
        ProblemClass::Vv,
        ProblemClass::VVc,
    ];

    /// The *trivial* containments of Figure 5a — the partial order implied
    /// directly by the definitions (weaker reception/emission ⇒ fewer
    /// solvable problems). Returns `true` if `self ⊆ other` trivially.
    pub fn trivially_contained_in(self, other: ProblemClass) -> bool {
        use ProblemClass::*;
        if self == other {
            return true;
        }
        let up: &[ProblemClass] = match self {
            Sb => &[Mb, Vb, Sv, Mv, Vv, VVc],
            Mb => &[Vb, Mv, Vv, VVc],
            Vb => &[Vv, VVc],
            Sv => &[Mv, Vv, VVc],
            Mv => &[Vv, VVc],
            Vv => &[VVc],
            VVc => &[],
        };
        up.contains(&other)
    }

    /// The *proven* level of the class in the linear order of Figure 5b:
    ///
    /// ```text
    /// SB  ⊊  MB = VB  ⊊  SV = MV = VV  ⊊  VVc
    ///  0       1             2             3
    /// ```
    ///
    /// Main theorem of the paper (relations (1) and (2); the same collapse
    /// holds for the constant-time versions).
    pub fn level(self) -> usize {
        use ProblemClass::*;
        match self {
            Sb => 0,
            Mb | Vb => 1,
            Sv | Mv | Vv => 2,
            VVc => 3,
        }
    }

    /// Returns `true` if `self ⊆ other` according to the proven linear
    /// order (1).
    pub fn contained_in(self, other: ProblemClass) -> bool {
        self.level() <= other.level()
    }

    /// Returns `true` if the two classes are proven *equal*
    /// (e.g. `SV = MV = VV`).
    pub fn equals(self, other: ProblemClass) -> bool {
        self.level() == other.level()
    }

    /// The canonical representative of the class's level, from the paper's
    /// summary: consistent port numbering / no incoming port numbers / no
    /// outgoing port numbers / neither.
    pub fn representative(self) -> ProblemClass {
        use ProblemClass::*;
        match self.level() {
            0 => Sb,
            1 => Vb,
            2 => Sv,
            _ => VVc,
        }
    }

    /// Which theorem of the paper establishes this class's relation to the
    /// next level down, as `(theorem, statement)`.
    pub fn collapse_evidence(self) -> &'static str {
        use ProblemClass::*;
        match self {
            Sb => "SB ⊊ MB: Theorem 13 (odd-odd problem, plain vs graded bisimulation)",
            Mb => "MB = VB: Theorem 9 (broadcast history simulation)",
            Vb => "VB ⊊ SV: Theorem 11 (leaf selection in stars)",
            Sv => "SV = MV: Theorem 4 (2Δ-round colouring preamble)",
            Mv => "MV = VV: Theorem 8 (per-port history simulation)",
            Vv => "VV ⊊ VVc: Theorem 17 + Lemmas 15–16 (regular graphs without a 1-factor)",
            VVc => "VVc ⊊ LOCAL: unique identifiers break symmetry (Section 3.1)",
        }
    }
}

impl fmt::Display for ProblemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProblemClass::Sb => "SB",
            ProblemClass::Mb => "MB",
            ProblemClass::Vb => "VB",
            ProblemClass::Sv => "SV",
            ProblemClass::Mv => "MV",
            ProblemClass::Vv => "VV",
            ProblemClass::VVc => "VVc",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ProblemClass::*;

    #[test]
    fn trivial_partial_order_is_reflexive_transitive() {
        for a in ProblemClass::ALL {
            assert!(a.trivially_contained_in(a));
            for b in ProblemClass::ALL {
                for c in ProblemClass::ALL {
                    if a.trivially_contained_in(b) && b.trivially_contained_in(c) {
                        assert!(a.trivially_contained_in(c), "{a} ⊆ {b} ⊆ {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_order_is_refined_by_linear_order() {
        // Everything the definitions promise, the theorem keeps.
        for a in ProblemClass::ALL {
            for b in ProblemClass::ALL {
                if a.trivially_contained_in(b) {
                    assert!(a.contained_in(b), "{a} ⊆ {b}");
                }
            }
        }
    }

    #[test]
    fn linear_order_shape() {
        assert!(Sb.contained_in(Mb) && !Mb.contained_in(Sb));
        assert!(Mb.equals(Vb));
        assert!(Vb.contained_in(Sv) && !Sv.contained_in(Vb));
        assert!(Sv.equals(Mv) && Mv.equals(Vv));
        assert!(Vv.contained_in(VVc) && !VVc.contained_in(Vv));
        // The surprising comparabilities absent from the trivial order:
        assert!(!Vb.trivially_contained_in(Sv));
        assert!(!Sv.trivially_contained_in(Vb));
        assert!(Vb.contained_in(Sv));
    }

    #[test]
    fn representatives() {
        assert_eq!(Mb.representative(), Vb);
        assert_eq!(Mv.representative(), Sv);
        assert_eq!(Sb.representative(), Sb);
        assert_eq!(VVc.representative(), VVc);
    }

    #[test]
    fn display_and_evidence_nonempty() {
        for c in ProblemClass::ALL {
            assert!(!c.to_string().is_empty());
            assert!(!c.collapse_evidence().is_empty());
        }
    }
}
