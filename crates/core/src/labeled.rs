//! Local inputs (Section 3.4): structures `(V, E, f)` where each node
//! carries a label `f(v)` available at initialisation.
//!
//! The paper observes that (a) the classification (1)–(2) extends verbatim
//! to labelled graphs — a separation on unlabelled graphs is a fortiori a
//! separation with labels — and (b) labels only become *necessary* below
//! `SB`: the degree-oblivious class `SBo` of Remark 2, trivial on plain
//! graphs, supports non-trivial algorithms once nodes have local inputs.
//! This module makes both points executable.

use portnum_graph::{Graph, Port, PortNumbering};
use portnum_machine::{Message, Payload, Status};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A node labelling `f : V → u64`.
pub type Labels = Vec<u64>;

/// A labelled `Set ∩ Broadcast` algorithm: like
/// [`SbAlgorithm`](portnum_machine::SbAlgorithm), but the initial state may
/// depend on the local input. With `init` ignoring the degree this is the
/// labelled `SBo` model.
pub trait LabeledSbAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status from the degree and the local input `f(v)`.
    fn init(&self, degree: usize, label: u64) -> Status<Self::State, Self::Output>;

    /// The broadcast message.
    fn broadcast(&self, state: &Self::State) -> Self::Msg;

    /// The transition on the received set of payloads.
    fn step(
        &self,
        state: &Self::State,
        received: &BTreeSet<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output>;
}

/// Synchronous execution of a labelled `SB` algorithm on `(G, p, f)`.
///
/// # Errors
///
/// Returns the number of still-running nodes if the round limit is hit.
///
/// # Panics
///
/// Panics if `labels.len() != g.len()`.
pub fn run_labeled_sb<A: LabeledSbAlgorithm>(
    algo: &A,
    g: &Graph,
    p: &PortNumbering,
    labels: &Labels,
    max_rounds: usize,
) -> Result<(Vec<A::Output>, usize), usize> {
    assert_eq!(labels.len(), g.len(), "one label per node");
    let mut states: Vec<Status<A::State, A::Output>> =
        g.nodes().map(|v| algo.init(g.degree(v), labels[v])).collect();
    let mut rounds = 0;
    while states.iter().any(|s| !s.is_stopped()) {
        if rounds == max_rounds {
            return Err(states.iter().filter(|s| !s.is_stopped()).count());
        }
        rounds += 1;
        let mut inboxes: Vec<BTreeSet<Payload<A::Msg>>> =
            g.nodes().map(|_| BTreeSet::new()).collect();
        for v in g.nodes() {
            match &states[v] {
                Status::Running(s) => {
                    let msg = algo.broadcast(s);
                    for i in 0..g.degree(v) {
                        let target = p.forward(Port::new(v, i));
                        inboxes[target.node].insert(Payload::Data(msg.clone()));
                    }
                }
                Status::Stopped(_) => {
                    for i in 0..g.degree(v) {
                        let target = p.forward(Port::new(v, i));
                        inboxes[target.node].insert(Payload::Silent);
                    }
                }
            }
        }
        for v in g.nodes() {
            if let Status::Running(s) = states[v].clone() {
                states[v] = algo.step(&s, &inboxes[v]);
            }
        }
    }
    let outputs = states
        .into_iter()
        .map(|s| match s {
            Status::Stopped(o) => o,
            Status::Running(_) => unreachable!("loop exits when all stopped"),
        })
        .collect();
    Ok((outputs, rounds))
}

/// A **degree-oblivious** labelled algorithm (`SBo` + local inputs): each
/// node broadcasts its label for `radius` rounds and outputs whether its
/// own label is the strict maximum seen — a non-trivial computation that
/// plain `SBo` cannot express at all (Remark 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelLocalMax {
    /// Gossip radius.
    pub radius: usize,
}

impl LabeledSbAlgorithm for LabelLocalMax {
    type State = (usize, u64, u64); // (round, own label, max seen)
    type Msg = u64;
    type Output = bool;

    fn init(&self, _degree: usize, label: u64) -> Status<(usize, u64, u64), bool> {
        // Degree-oblivious: the state depends only on the label.
        if self.radius == 0 {
            Status::Stopped(true)
        } else {
            Status::Running((0, label, 0))
        }
    }

    fn broadcast(&self, &(_, _, best): &(usize, u64, u64)) -> u64 {
        best
    }

    fn step(
        &self,
        &(round, label, best): &(usize, u64, u64),
        received: &BTreeSet<Payload<u64>>,
    ) -> Status<(usize, u64, u64), bool> {
        let heard = received.iter().filter_map(Payload::data).max().copied().unwrap_or(0);
        let best = best.max(heard).max(label);
        if round + 1 == self.radius {
            Status::Stopped(label >= best)
        } else {
            Status::Running((round + 1, label, best))
        }
    }
}

/// Encodes a 1-bit label in topology: the paper's remark that "a uniformly
/// finite amount of local information could be encoded in the topological
/// information of the graph". Node `v` with label bit 1 gets one pendant
/// leaf attached; with bit 0, two. Returns the enlarged graph and the ids
/// of the original nodes.
pub fn encode_labels_in_topology(g: &Graph, bits: &[bool]) -> (Graph, Vec<usize>) {
    assert_eq!(bits.len(), g.len());
    let extra: usize = bits.iter().map(|&b| if b { 1 } else { 2 }).sum();
    let mut builder = Graph::builder(g.len() + extra);
    for (u, v) in g.edges() {
        builder.edge(u, v).expect("original edges are simple");
    }
    let mut next = g.len();
    for (v, &bit) in bits.iter().enumerate() {
        for _ in 0..if bit { 1 } else { 2 } {
            builder.edge(v, next).expect("pendant edges are simple");
            next += 1;
        }
    }
    (builder.build(), g.nodes().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::generators;

    #[test]
    fn label_local_max_breaks_symmetry_on_cycles() {
        // Plain SBo (indeed plain VVc!) cannot break the symmetry of a
        // cycle; with distinct labels, degree-oblivious gossip can.
        let g = generators::cycle(6);
        let p = PortNumbering::consistent(&g);
        let labels: Labels = vec![3, 1, 4, 1, 5, 9];
        let (out, rounds) =
            run_labeled_sb(&LabelLocalMax { radius: 3 }, &g, &p, &labels, 100).unwrap();
        assert_eq!(rounds, 3);
        // Node 5 (label 9) is the unique global max within radius 3 of all.
        assert_eq!(out, vec![false, false, false, false, false, true]);
    }

    #[test]
    fn constant_labels_keep_symmetry() {
        // With constant inputs the labelled model degenerates back to the
        // unlabelled one: all outputs equal on a symmetric instance.
        let g = generators::cycle(5);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        let labels: Labels = vec![7; 5];
        let (out, _) = run_labeled_sb(&LabelLocalMax { radius: 4 }, &g, &p, &labels, 100).unwrap();
        assert!(out.iter().all(|&b| b == out[0]));
    }

    #[test]
    fn early_stopping_with_radius_zero() {
        let g = generators::path(3);
        let p = PortNumbering::consistent(&g);
        let (out, rounds) =
            run_labeled_sb(&LabelLocalMax { radius: 0 }, &g, &p, &vec![0; 3], 10).unwrap();
        assert_eq!(rounds, 0);
        assert_eq!(out, vec![true, true, true]);
    }

    #[test]
    fn round_limit_reported() {
        /// Never stops.
        #[derive(Debug)]
        struct Forever;
        impl LabeledSbAlgorithm for Forever {
            type State = ();
            type Msg = ();
            type Output = ();
            fn init(&self, _d: usize, _l: u64) -> Status<(), ()> {
                Status::Running(())
            }
            fn broadcast(&self, _: &()) {}
            fn step(&self, _: &(), _: &BTreeSet<Payload<()>>) -> Status<(), ()> {
                Status::Running(())
            }
        }
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        assert_eq!(run_labeled_sb(&Forever, &g, &p, &vec![0; 3], 5), Err(3));
    }

    #[test]
    fn topology_encoding_preserves_labels_as_degrees() {
        let g = generators::cycle(4);
        let bits = vec![true, false, true, false];
        let (enlarged, originals) = encode_labels_in_topology(&g, &bits);
        assert_eq!(enlarged.len(), 4 + 1 + 2 + 1 + 2);
        for (&v, &bit) in originals.iter().zip(&bits) {
            // Original degree 2 plus 1 or 2 pendants.
            assert_eq!(enlarged.degree(v), 2 + if bit { 1 } else { 2 });
        }
        // The pendant leaves have degree 1.
        for v in 4..enlarged.len() {
            assert_eq!(enlarged.degree(v), 1);
        }
    }
}
