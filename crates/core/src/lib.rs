//! # portnum
//!
//! A full reproduction of Hella, Järvisalo, Kuusisto, Laurinharju,
//! Lempiäinen, Luosto, Suomela, Virtema: *Weak models of distributed
//! computing, with connections to modal logic* (PODC 2012).
//!
//! The paper classifies seven models of deterministic distributed
//! computing in anonymous port-numbered networks and proves that the
//! associated problem classes collapse into a linear order:
//!
//! ```text
//! SB  ⊊  MB = VB  ⊊  SV = MV = VV  ⊊  VVc
//! ```
//!
//! This crate makes every ingredient executable:
//!
//! * [`classes`](ProblemClass) — the lattice of Figure 5a and the proven
//!   order of Figure 5b;
//! * [`problems`] — graph problems (Section 1.4) including the three
//!   separation witnesses;
//! * [`algorithms`] — concrete algorithms, each written against the
//!   weakest class that supports it;
//! * [`sim`] — Theorems 4, 8, and 9 as typed simulation wrappers: the
//!   equalities `SV = MV = VV` and `MB = VB` exist as `impl`s;
//! * [`separations`] — Theorems 11, 13, 17 as machine-checked evidence
//!   (positive algorithm + bisimulation obstruction via Corollary 3);
//! * [`stronger`] — the Section 3.1 extensions: the `LOCAL` model
//!   (unique identifiers) and randomised algorithms, with maximal
//!   independent set separating them from `VVc`;
//! * [`verify`] — exact brute-force checkers; [`rational`] — exact
//!   arithmetic for the vertex-cover packing algorithm.
//!
//! The three companion crates are re-exported: [`graph`]
//! (`portnum-graph`), [`machine`] (`portnum-machine`), and [`logic`]
//! (`portnum-logic`).
//!
//! # Quick start
//!
//! ```
//! use portnum::separations;
//!
//! // Re-derive the paper's main result from executable evidence.
//! for evidence in separations::derive_linear_order() {
//!     assert!(evidence.holds(), "{evidence}");
//! }
//! ```
//!
//! Simulate a `Broadcast` algorithm in class `MB` (Theorem 9):
//!
//! ```
//! use portnum::algorithms::mb::OddOddMb;
//! use portnum::machine::adapters::{MbAsBroadcast, MbAsVector};
//! use portnum::machine::Simulator;
//! use portnum::graph::{generators, PortNumbering};
//! use portnum::sim::MbFromVb;
//!
//! let g = generators::figure1_graph();
//! let p = PortNumbering::consistent(&g);
//! let sim = Simulator::new();
//!
//! let direct = sim.run(&MbAsVector(OddOddMb), &g, &p)?;
//! let wrapped = sim.run(&MbAsVector(MbFromVb::new(MbAsBroadcast(OddOddMb))), &g, &p)?;
//! assert_eq!(direct.outputs(), wrapped.outputs());
//! # Ok::<(), portnum::machine::ExecutionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
mod classes;
pub mod labeled;
pub mod problems;
pub mod rational;
pub mod separations;
pub mod sim;
pub mod stronger;
pub mod verify;

pub use classes::ProblemClass;
pub use problems::Problem;

pub use portnum_graph as graph;
pub use portnum_logic as logic;
pub use portnum_machine as machine;
