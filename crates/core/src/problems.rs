//! Graph problems (Section 1.4): a problem maps each graph to its set of
//! acceptable solutions; [`Problem::is_valid`] decides membership.
//!
//! The library covers the classical examples of Section 1.4 (maximal
//! independent set, colouring, Eulerian decision), the approximation
//! problem motivating the weak models (vertex cover 2-approximation, \[3\]),
//! and the three separation witnesses of Theorems 11, 13, and 17.

use crate::verify;
use portnum_graph::{matching, properties, Graph};

/// A graph problem `Π`: for each graph, a set of valid solutions
/// `S : V → Output`.
pub trait Problem {
    /// The finite output alphabet `Y`.
    type Output: Clone + Eq + std::fmt::Debug;

    /// A short human-readable name.
    fn name(&self) -> &'static str;

    /// Whether `outputs` (indexed by node) is a valid solution on `g`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `outputs.len() != g.len()`.
    fn is_valid(&self, g: &Graph, outputs: &[Self::Output]) -> bool;
}

/// Maximal independent set (Section 1.4). Not solvable in any of the weak
/// models (a symmetric cycle defeats it); included as a reference problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaximalIndependentSet;

impl Problem for MaximalIndependentSet {
    type Output = bool;

    fn name(&self) -> &'static str {
        "maximal independent set"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        verify::is_maximal_independent_set(g, outputs)
    }
}

/// Proper vertex `k`-colouring (Section 1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProperColoring {
    /// Number of colours allowed.
    pub colors: usize,
}

impl Problem for ProperColoring {
    type Output = usize;

    fn name(&self) -> &'static str {
        "proper vertex colouring"
    }

    fn is_valid(&self, g: &Graph, outputs: &[usize]) -> bool {
        assert_eq!(outputs.len(), g.len());
        verify::is_proper_coloring(g, outputs, self.colors)
    }
}

/// The Eulerian decision problem with the paper's accept/reject semantics:
/// on a yes-instance every node outputs 1; on a no-instance at least one
/// node outputs 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EulerianDecision;

impl Problem for EulerianDecision {
    type Output = bool;

    fn name(&self) -> &'static str {
        "Eulerian decision"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        if properties::is_eulerian(g) {
            outputs.iter().all(|&b| b)
        } else {
            outputs.iter().any(|&b| !b)
        }
    }
}

/// Vertex cover with an approximation guarantee: the output must be a
/// vertex cover of size at most `factor_num/factor_den · opt` (opt computed
/// exactly — keep instances small).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexCoverApprox {
    /// Approximation factor numerator.
    pub factor_num: usize,
    /// Approximation factor denominator.
    pub factor_den: usize,
}

impl VertexCoverApprox {
    /// The 2-approximation variant of Åstrand–Suomela \[3\].
    pub fn two() -> Self {
        VertexCoverApprox { factor_num: 2, factor_den: 1 }
    }
}

impl Problem for VertexCoverApprox {
    type Output = bool;

    fn name(&self) -> &'static str {
        "approximate minimum vertex cover"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        if !verify::is_vertex_cover(g, outputs) {
            return false;
        }
        let size = outputs.iter().filter(|&&b| b).count();
        let opt = verify::min_vertex_cover_size(g);
        size * self.factor_den <= self.factor_num * opt
    }
}

/// Theorem 11's witness problem: *select one leaf of a star*. On a `k`-star
/// (`k > 1`), exactly one leaf must output 1 and every other node 0; on any
/// other graph, anything goes.
///
/// In `SV(1)` (one round: send your port number to that port), but **not**
/// in `VB`: the leaves of a star are bisimilar in `K₊,₋`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeafInStar;

impl LeafInStar {
    /// Returns the centre if `g` is a `k`-star with `k > 1`.
    pub fn star_centre(g: &Graph) -> Option<usize> {
        let n = g.len();
        if n < 3 {
            return None;
        }
        let centre = g.nodes().find(|&v| g.degree(v) == n - 1)?;
        g.nodes()
            .all(|v| v == centre || (g.degree(v) == 1 && g.has_edge(v, centre)))
            .then_some(centre)
    }
}

impl Problem for LeafInStar {
    type Output = bool;

    fn name(&self) -> &'static str {
        "leaf selection in stars"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        match Self::star_centre(g) {
            None => true,
            Some(centre) => {
                !outputs[centre] && outputs.iter().filter(|&&b| b).count() == 1
            }
        }
    }
}

/// Theorem 13's witness problem: a node outputs 1 iff it has an **odd
/// number of odd-degree neighbours**.
///
/// In `MB(1)` (broadcast your degree parity, count), but **not** in `SB`:
/// set reception cannot count, and the witness graph
/// [`portnum_graph::generators::theorem13_witness`] has plain-bisimilar
/// nodes that must answer differently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OddOdd;

impl OddOdd {
    /// The unique correct output at `v`.
    pub fn expected(g: &Graph, v: usize) -> bool {
        g.neighbors(v).iter().filter(|&&u| g.degree(u) % 2 == 1).count() % 2 == 1
    }
}

impl Problem for OddOdd {
    type Output = bool;

    fn name(&self) -> &'static str {
        "odd number of odd-degree neighbours"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        g.nodes().all(|v| outputs[v] == Self::expected(g, v))
    }
}

/// Theorem 17's witness problem: *break symmetry on the family `𝒢`* of
/// connected, odd-degree-regular graphs without a 1-factor. On `G ∈ 𝒢` the
/// output must be non-constant; on any other graph, anything goes.
///
/// In `VVc(1)` (two rounds: compare local types), but **not** in `VV`:
/// Lemma 15 wires a symmetric port numbering from a 1-factorization of the
/// bipartite double cover, making all nodes bisimilar in `K₊,₊`, while
/// Lemma 16 shows consistent numberings cannot be symmetric on `𝒢`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymmetryBreak;

impl SymmetryBreak {
    /// Membership in the family `𝒢`: connected, `k`-regular for odd
    /// `k ≥ 3`, and without a 1-factor.
    pub fn in_family(g: &Graph) -> bool {
        let Some(k) = properties::regularity(g) else {
            return false;
        };
        k >= 3 && k % 2 == 1 && properties::is_connected(g) && !matching::has_one_factor(g)
    }
}

impl Problem for SymmetryBreak {
    type Output = bool;

    fn name(&self) -> &'static str {
        "symmetry breaking on regular graphs without a 1-factor"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        if Self::in_family(g) {
            outputs.iter().any(|&b| b) && outputs.iter().any(|&b| !b)
        } else {
            true
        }
    }
}

/// Leader election: on a *connected* graph, exactly one node outputs 1;
/// disconnected graphs are unconstrained.
///
/// The natural global problem the paper's Section 5.4 cites from prior
/// work (Boldi et al., Yamashita–Kameda): not solvable in `VVc` — a
/// symmetric cycle has all nodes bisimilar in `K₊,₊`, and any connected
/// cover duplicates a would-be leader — but solvable with unique
/// identifiers by flood-max
/// ([`FloodMaxLeader`](crate::stronger::local::FloodMaxLeader)). Being
/// global, it cannot separate the *constant-time* classes (it is not even
/// in `VVc(1)`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaderElection;

impl Problem for LeaderElection {
    type Output = bool;

    fn name(&self) -> &'static str {
        "leader election"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        !properties::is_connected(g) || outputs.iter().filter(|&&b| b).count() == 1
    }
}

/// A node outputs 1 iff its degree is maximal among its neighbours.
/// Solvable in `SB(1)` — the classic example of a non-trivial problem at
/// the very bottom of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalMaxDegree;

impl Problem for LocalMaxDegree {
    type Output = bool;

    fn name(&self) -> &'static str {
        "local maximum degree"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        g.nodes().all(|v| {
            let is_max = g.neighbors(v).iter().all(|&u| g.degree(u) <= g.degree(v));
            outputs[v] == is_max
        })
    }
}

/// A node outputs 1 iff it has at least one neighbour. The only problem
/// (essentially) solvable in the degree-oblivious class `SBo` of Remark 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonIsolation;

impl Problem for NonIsolation {
    type Output = bool;

    fn name(&self) -> &'static str {
        "non-isolation"
    }

    fn is_valid(&self, g: &Graph, outputs: &[bool]) -> bool {
        assert_eq!(outputs.len(), g.len());
        g.nodes().all(|v| outputs[v] == (g.degree(v) > 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::generators;

    #[test]
    fn mis_problem() {
        let g = generators::cycle(4);
        assert!(MaximalIndependentSet.is_valid(&g, &[true, false, true, false]));
        assert!(!MaximalIndependentSet.is_valid(&g, &[true, true, false, false]));
        assert!(!MaximalIndependentSet.is_valid(&g, &[true, false, false, false]));
    }

    #[test]
    fn coloring_problem() {
        let g = generators::cycle(5);
        assert!(ProperColoring { colors: 3 }.is_valid(&g, &[0, 1, 0, 1, 2]));
        assert!(!ProperColoring { colors: 2 }.is_valid(&g, &[0, 1, 0, 1, 2]));
    }

    #[test]
    fn eulerian_problem() {
        let yes = generators::cycle(4);
        assert!(EulerianDecision.is_valid(&yes, &[true; 4]));
        assert!(!EulerianDecision.is_valid(&yes, &[true, true, false, true]));
        let no = generators::path(3);
        assert!(EulerianDecision.is_valid(&no, &[true, false, true]));
        assert!(!EulerianDecision.is_valid(&no, &[true, true, true]));
    }

    #[test]
    fn vertex_cover_problem() {
        let g = generators::cycle(5); // opt = 3
        let p = VertexCoverApprox::two();
        assert!(p.is_valid(&g, &[true, true, true, true, true])); // 5 ≤ 6
        assert!(p.is_valid(&g, &[true, false, true, false, true]));
        assert!(!p.is_valid(&g, &[true, false, true, false, false])); // not a cover
        let star = generators::star(8); // opt = 1
        assert!(!p.is_valid(&star, &[false, true, true, true, true, true, true, true, true]));
        let mut all_leaves = vec![true; 9];
        all_leaves[0] = false;
        assert!(!p.is_valid(&star, &all_leaves), "8 leaves > 2·1");
        let mut centre_only = vec![false; 9];
        centre_only[0] = true;
        assert!(p.is_valid(&star, &centre_only));
    }

    #[test]
    fn leaf_in_star_problem() {
        let g = generators::star(3);
        assert_eq!(LeafInStar::star_centre(&g), Some(0));
        assert!(LeafInStar.is_valid(&g, &[false, true, false, false]));
        assert!(!LeafInStar.is_valid(&g, &[false, true, true, false]));
        assert!(!LeafInStar.is_valid(&g, &[true, false, false, false]));
        assert!(!LeafInStar.is_valid(&g, &[false, false, false, false]));
        // Non-stars are unconstrained.
        let c = generators::cycle(4);
        assert_eq!(LeafInStar::star_centre(&c), None);
        assert!(LeafInStar.is_valid(&c, &[false; 4]));
        // K2 is formally a 1-star; the problem only constrains k > 1.
        let k2 = generators::path(2);
        assert_eq!(LeafInStar::star_centre(&k2), None);
    }

    #[test]
    fn odd_odd_problem() {
        let (g, (a, b)) = generators::theorem13_witness();
        assert!(!OddOdd::expected(&g, a));
        assert!(OddOdd::expected(&g, b));
        let expected: Vec<bool> = g.nodes().map(|v| OddOdd::expected(&g, v)).collect();
        assert!(OddOdd.is_valid(&g, &expected));
        let mut wrong = expected.clone();
        wrong[a] = !wrong[a];
        assert!(!OddOdd.is_valid(&g, &wrong));
    }

    #[test]
    fn symmetry_break_problem() {
        let g = generators::no_one_factor(3);
        assert!(SymmetryBreak::in_family(&g));
        assert!(!SymmetryBreak::in_family(&generators::petersen()), "has a 1-factor");
        assert!(!SymmetryBreak::in_family(&generators::cycle(6)), "even degree");
        assert!(!SymmetryBreak::in_family(&generators::star(3)), "not regular");
        let mut half = vec![false; g.len()];
        half[0] = true;
        assert!(SymmetryBreak.is_valid(&g, &half));
        assert!(!SymmetryBreak.is_valid(&g, &vec![true; g.len()]));
        assert!(!SymmetryBreak.is_valid(&g, &vec![false; g.len()]));
        // Outside the family anything goes.
        let p = generators::petersen();
        assert!(SymmetryBreak.is_valid(&p, &[false; 10]));
    }

    #[test]
    fn local_max_and_isolation() {
        let g = generators::star(3);
        assert!(LocalMaxDegree.is_valid(&g, &[true, false, false, false]));
        assert!(!LocalMaxDegree.is_valid(&g, &[true, true, false, false]));
        let mut h = Graph::disjoint_union(&[&generators::path(2), &Graph::empty(1)]);
        assert!(NonIsolation.is_valid(&h, &[true, true, false]));
        assert!(!NonIsolation.is_valid(&h, &[true, true, true]));
        let _ = &mut h;
    }

    use portnum_graph::Graph;
}
