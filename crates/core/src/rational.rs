//! Exact nonnegative rational arithmetic for the edge-packing algorithm.
//!
//! The `MB` vertex-cover algorithm raises edge packing weights by exact
//! fractions (`residual / active-degree`); floating point would break both
//! the saturation test (`residual == 0`) and determinism. Values are kept
//! reduced; operations panic on `u128` overflow rather than silently
//! corrupting the packing (documented in the algorithm's caveats).

use std::cmp::Ordering;
use std::fmt;

/// A nonnegative rational number with reduced `u128` representation.
///
/// # Examples
///
/// ```
/// use portnum::rational::Ratio;
///
/// let third = Ratio::new(1, 3);
/// let sixth = Ratio::new(1, 6);
/// assert_eq!(third.add(sixth), Ratio::new(1, 2));
/// assert_eq!(third.sub(sixth), sixth);
/// assert_eq!(third.min(sixth), sixth);
/// assert_eq!(Ratio::one().div_int(4), Ratio::new(1, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u128,
    den: u128,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Creates `num / den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u128, den: u128) -> Ratio {
        assert!(den != 0, "denominator must be nonzero");
        if num == 0 {
            return Ratio { num: 0, den: 1 };
        }
        let g = gcd(num, den);
        Ratio { num: num / g, den: den / g }
    }

    /// Zero.
    pub fn zero() -> Ratio {
        Ratio { num: 0, den: 1 }
    }

    /// One.
    pub fn one() -> Ratio {
        Ratio { num: 1, den: 1 }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The numerator of the reduced form.
    pub fn numerator(self) -> u128 {
        self.num
    }

    /// The denominator of the reduced form.
    pub fn denominator(self) -> u128 {
        self.den
    }

    fn checked(op: Option<u128>) -> u128 {
        op.expect("rational arithmetic overflowed u128; instance too large for exact packing")
    }

    /// Addition.
    ///
    /// # Panics
    ///
    /// Panics on `u128` overflow.
    #[allow(clippy::should_implement_trait)] // by-value convenience, not ops::Add
    pub fn add(self, other: Ratio) -> Ratio {
        let g = gcd(self.den, other.den);
        let lcm = Self::checked(self.den.checked_mul(other.den / g));
        let left = Self::checked(self.num.checked_mul(lcm / self.den));
        let right = Self::checked(other.num.checked_mul(lcm / other.den));
        Ratio::new(Self::checked(left.checked_add(right)), lcm)
    }

    /// Saturating subtraction (`0` if `other > self`).
    ///
    /// # Panics
    ///
    /// Panics on `u128` overflow.
    #[allow(clippy::should_implement_trait)] // saturating, unlike ops::Sub
    pub fn sub(self, other: Ratio) -> Ratio {
        let g = gcd(self.den, other.den);
        let lcm = Self::checked(self.den.checked_mul(other.den / g));
        let left = Self::checked(self.num.checked_mul(lcm / self.den));
        let right = Self::checked(other.num.checked_mul(lcm / other.den));
        Ratio::new(left.saturating_sub(right), lcm)
    }

    /// Division by a positive integer.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or on overflow.
    pub fn div_int(self, k: usize) -> Ratio {
        assert!(k != 0, "division by zero");
        Ratio::new(self.num, Self::checked(self.den.checked_mul(k as u128)))
    }

    /// Multiplication by a nonnegative integer.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn mul_int(self, k: usize) -> Ratio {
        Ratio::new(Self::checked(self.num.checked_mul(k as u128)), self.den)
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        let left = Self::checked(self.num.checked_mul(other.den));
        let right = Self::checked(other.num.checked_mul(self.den));
        left.cmp(&right)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl portnum_machine::MessageSize for Ratio {
    fn size_units(&self) -> u64 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::zero());
        assert_eq!(Ratio::new(6, 3), Ratio::new(2, 1));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 2);
        let b = Ratio::new(1, 3);
        assert_eq!(a.add(b), Ratio::new(5, 6));
        assert_eq!(a.sub(b), Ratio::new(1, 6));
        assert_eq!(b.sub(a), Ratio::zero());
        assert_eq!(a.div_int(2), Ratio::new(1, 4));
        assert_eq!(b.mul_int(3), Ratio::one());
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(2, 3) > Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
        assert_eq!(Ratio::new(1, 3).min(Ratio::new(1, 4)), Ratio::new(1, 4));
    }

    #[test]
    fn saturation_at_one_is_exact() {
        // 1/3 + 1/3 + 1/3 == 1 exactly — the heart of the packing test.
        let third = Ratio::one().div_int(3);
        let sum = third.add(third).add(third);
        assert_eq!(sum, Ratio::one());
        assert!(Ratio::one().sub(sum).is_zero());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ratio::new(3, 4).to_string(), "3/4");
        assert_eq!(Ratio::new(4, 2).to_string(), "2");
        assert_eq!(Ratio::zero().to_string(), "0");
    }
}
