//! Executable separation witnesses (Section 5.3) and the derivation of the
//! linear order (Figure 5b).
//!
//! Each theorem is packaged as a function returning a machine-checked
//! evidence struct: the positive side (an algorithm in the stronger class
//! solving the witness problem) and the negative side (a bisimilarity
//! certificate in the weaker class's Kripke model, which by Corollary 3
//! rules out *every* algorithm of that class).

use crate::algorithms::{mb::OddOddMb, sv::StarLeafSelect, vvc::LocalTypeSymmetryBreak};
use crate::classes::ProblemClass;
use crate::problems::{LeafInStar, OddOdd, Problem, SymmetryBreak};
use portnum_graph::{generators, Graph, PortNumbering};
use portnum_logic::bisim::{self, BisimStyle};
use portnum_logic::Kripke;
use portnum_machine::adapters::{MbAsVector, SetAsVector};
use portnum_machine::Simulator;
use std::fmt;

/// Evidence for one strict separation `weaker ⊊ stronger`.
#[derive(Debug, Clone)]
pub struct SeparationEvidence {
    /// The weaker class, which cannot solve the witness problem.
    pub weaker: ProblemClass,
    /// The stronger class, which solves it.
    pub stronger: ProblemClass,
    /// Name of the witness problem.
    pub problem: &'static str,
    /// The witness graph (with its port numbering where relevant).
    pub graph: Graph,
    /// Whether the positive algorithm solved the problem on the witness.
    pub positive_solved: bool,
    /// Rounds the positive algorithm took.
    pub positive_rounds: usize,
    /// The set `X` of nodes that are bisimilar in the weaker model yet must
    /// produce different outputs (Corollary 3's obstruction).
    pub bisimilar_nodes: Vec<usize>,
    /// Whether the obstruction was verified by partition refinement.
    pub obstruction_verified: bool,
}

impl SeparationEvidence {
    /// Both halves hold: the separation is established.
    pub fn holds(&self) -> bool {
        self.positive_solved && self.obstruction_verified
    }
}

impl fmt::Display for SeparationEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ⊊ {} via “{}”: positive side solved in {} rounds = {}, \
             obstruction (nodes {:?} bisimilar) = {}",
            self.weaker,
            self.stronger,
            self.problem,
            self.positive_rounds,
            self.positive_solved,
            self.bisimilar_nodes,
            self.obstruction_verified
        )
    }
}

/// Theorem 11: `VB ⊊ SV`, witnessed by leaf selection in a `k`-star.
///
/// Positive side: [`StarLeafSelect`] (class `Set`) solves it in one round
/// under every port numbering. Negative side: all leaves are bisimilar in
/// `K₊,₋(G, p)` for every `p`, so by Corollary 3(b) no `Broadcast`
/// algorithm can select exactly one.
pub fn theorem11(k: usize, trials: u64) -> SeparationEvidence {
    let g = generators::star(k);
    let sim = Simulator::new();
    let mut positive_solved = true;
    let mut positive_rounds = 0;
    let mut obstruction = true;
    let mut rng = seeded_rng(11);
    for _ in 0..trials.max(1) {
        let p = PortNumbering::random(&g, &mut rng);
        let run = sim.run(&SetAsVector(StarLeafSelect), &g, &p).expect("terminates");
        positive_solved &= LeafInStar.is_valid(&g, run.outputs());
        positive_rounds = run.rounds();
        let model = Kripke::k_pm(&g, &p);
        let classes = bisim::refine(&model, BisimStyle::Plain);
        obstruction &= (2..=k).all(|leaf| classes.bisimilar(1, leaf));
    }
    SeparationEvidence {
        weaker: ProblemClass::Vb,
        stronger: ProblemClass::Sv,
        problem: LeafInStar.name(),
        graph: g,
        positive_solved,
        positive_rounds,
        bisimilar_nodes: (1..=k).collect(),
        obstruction_verified: obstruction,
    }
}

/// Theorem 13: `SB ⊊ MB`, witnessed by the odd-odd problem on the
/// two-component witness graph.
///
/// Positive side: [`OddOddMb`] (class `MB`) solves it in one round.
/// Negative side: the white nodes are plain-bisimilar in `K₋,₋(G)` (which
/// is independent of the port numbering), yet the problem forces them to
/// answer differently — Corollary 3(c).
pub fn theorem13() -> SeparationEvidence {
    let (g, (a, b)) = generators::theorem13_witness();
    let p = PortNumbering::consistent(&g);
    let run = Simulator::new().run(&MbAsVector(OddOddMb), &g, &p).expect("terminates");
    let positive_solved = OddOdd.is_valid(&g, run.outputs());
    let model = Kripke::k_mm(&g);
    let classes = bisim::refine(&model, BisimStyle::Plain);
    // The two white nodes are bisimilar but must output differently
    // (node a: 0, node b: 1) — and graded bisimulation *does* separate
    // them, which is exactly why MB succeeds.
    let obstruction_verified = classes.bisimilar(a, b)
        && OddOdd::expected(&g, a) != OddOdd::expected(&g, b)
        && !bisim::refine(&model, BisimStyle::Graded).bisimilar(a, b);
    SeparationEvidence {
        weaker: ProblemClass::Sb,
        stronger: ProblemClass::Mb,
        problem: OddOdd.name(),
        graph: g,
        positive_solved,
        positive_rounds: run.rounds(),
        bisimilar_nodes: vec![a, b],
        obstruction_verified,
    }
}

/// Theorem 17 (with Lemmas 15–16): `VV ⊊ VVc`, witnessed by symmetry
/// breaking on a `k`-regular graph without a 1-factor.
///
/// Positive side: [`LocalTypeSymmetryBreak`] solves the problem in two
/// rounds under every *consistent* numbering. Negative side: the symmetric
/// numbering produced from a 1-factorization of the bipartite double cover
/// (Lemma 15) makes *all* nodes bisimilar in `K₊,₊(G, p)` — Corollary 3(a).
pub fn theorem17(k: usize, trials: u64) -> SeparationEvidence {
    let g = generators::no_one_factor(k);
    assert!(SymmetryBreak::in_family(&g), "witness graph must lie in the family 𝒢");
    let sim = Simulator::new();
    let mut positive_solved = true;
    let mut positive_rounds = 0;
    let mut rng = seeded_rng(17);
    for _ in 0..trials.max(1) {
        let p = PortNumbering::random_consistent(&g, &mut rng);
        let run = sim.run(&LocalTypeSymmetryBreak, &g, &p).expect("terminates");
        positive_solved &= SymmetryBreak.is_valid(&g, run.outputs());
        positive_rounds = run.rounds();
    }
    let sym = PortNumbering::symmetric_regular(&g).expect("family graphs are regular");
    let model = Kripke::k_pp(&g, &sym);
    let classes = bisim::refine(&model, BisimStyle::Plain);
    let all_bisimilar = classes.class_count(classes.depth()) == 1;
    let obstruction_verified = all_bisimilar && !sym.is_consistent();
    SeparationEvidence {
        weaker: ProblemClass::Vv,
        stronger: ProblemClass::VVc,
        problem: SymmetryBreak.name(),
        bisimilar_nodes: g.nodes().collect(),
        graph: g,
        positive_solved,
        positive_rounds,
        obstruction_verified,
    }
}

/// Derives the full linear order (Figure 5b) from executable evidence:
/// the three separations above. The three equalities are witnessed
/// statically by the wrapper types in [`crate::sim`].
pub fn derive_linear_order() -> Vec<SeparationEvidence> {
    vec![theorem13(), theorem11(5, 5), theorem17(3, 5)]
}

fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem11_holds() {
        for k in [2usize, 4, 7] {
            let e = theorem11(k, 5);
            assert!(e.holds(), "{e}");
            assert_eq!(e.positive_rounds, 1);
        }
    }

    #[test]
    fn theorem13_holds() {
        let e = theorem13();
        assert!(e.holds(), "{e}");
        assert_eq!(e.positive_rounds, 1);
    }

    #[test]
    fn theorem17_holds() {
        let e = theorem17(3, 5);
        assert!(e.holds(), "{e}");
        assert_eq!(e.positive_rounds, 2);
    }

    #[test]
    fn linear_order_derivation() {
        let evidence = derive_linear_order();
        assert_eq!(evidence.len(), 3);
        assert!(evidence.iter().all(SeparationEvidence::holds));
        // The separations, chained with the proven equalities, produce the
        // four levels of Figure 5b.
        let levels: Vec<(ProblemClass, ProblemClass)> =
            evidence.iter().map(|e| (e.weaker, e.stronger)).collect();
        assert!(levels.contains(&(ProblemClass::Sb, ProblemClass::Mb)));
        assert!(levels.contains(&(ProblemClass::Vb, ProblemClass::Sv)));
        assert!(levels.contains(&(ProblemClass::Vv, ProblemClass::VVc)));
        for e in &evidence {
            assert!(!e.to_string().is_empty());
        }
    }
}
