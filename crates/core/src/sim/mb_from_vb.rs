//! Theorem 9: `Multiset ∩ Broadcast` simulates `Broadcast` with no round
//! overhead (`MB = VB`) — the broadcast version of the history
//! construction of Theorem 8, already implicit in Åstrand–Suomela \[3\].

use portnum_machine::{
    BroadcastAlgorithm, MbAlgorithm, Multiset, Payload, Status,
};

/// Wrapper state for [`MbFromVb`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VbHistoryState<S, M: Ord> {
    inner: S,
    /// Own broadcast history.
    sent: Vec<Payload<M>>,
    /// Reconstructed full histories of the feeding neighbours as of the
    /// previous round.
    neighbors: Multiset<Vec<Payload<M>>>,
    degree: usize,
}

/// Theorem 9's wrapper: runs a [`BroadcastAlgorithm`] (class `VB`) as an
/// [`MbAlgorithm`] (class `MB`) in the same number of rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbFromVb<A> {
    inner: A,
}

impl<A> MbFromVb<A> {
    /// Wraps a `Broadcast` algorithm.
    pub fn new(inner: A) -> Self {
        MbFromVb { inner }
    }

    /// Borrows the wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: BroadcastAlgorithm> MbAlgorithm for MbFromVb<A> {
    type State = VbHistoryState<A::State, A::Msg>;
    type Msg = Vec<Payload<A::Msg>>;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        match self.inner.init(degree) {
            Status::Stopped(o) => Status::Stopped(o),
            Status::Running(inner) => {
                let mut neighbors = Multiset::new();
                neighbors.insert_n(Vec::new(), degree);
                Status::Running(VbHistoryState { inner, sent: Vec::new(), neighbors, degree })
            }
        }
    }

    fn broadcast(&self, state: &Self::State) -> Self::Msg {
        let mut history = state.sent.clone();
        history.push(Payload::Data(self.inner.broadcast(&state.inner)));
        history
    }

    fn broadcast_into(&self, state: &Self::State, slot: &mut Payload<Self::Msg>) {
        // As in `MultisetFromVector`: refill the delivered history
        // buffer in place instead of allocating one Vec per message.
        match slot.data_mut() {
            Some(history) => {
                history.clear();
                history.extend(state.sent.iter().cloned());
                history.push(Payload::Data(self.inner.broadcast(&state.inner)));
            }
            None => *slot = Payload::Data(self.broadcast(state)),
        }
    }

    fn step(
        &self,
        state: &Self::State,
        received: &Multiset<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output> {
        let round = state.sent.len() + 1;
        let mut sent = state.sent.clone();
        sent.push(Payload::Data(self.inner.broadcast(&state.inner)));

        let mut pool = state.neighbors.clone();
        let mut current: Multiset<Vec<Payload<A::Msg>>> = Multiset::new();
        let mut silent_count = 0usize;
        for (payload, count) in received.counts() {
            match payload {
                Payload::Data(history) => {
                    debug_assert_eq!(history.len(), round, "history length mismatch");
                    for _ in 0..count {
                        let prefix = history[..round - 1].to_vec();
                        let removed = pool.remove(&prefix);
                        debug_assert!(removed, "incoming history extends no known prefix");
                        current.insert(history.clone());
                    }
                }
                Payload::Silent => silent_count += count,
            }
        }
        debug_assert_eq!(pool.len(), silent_count, "frozen histories must match silence");
        for (frozen, count) in pool.counts() {
            let mut extended = frozen.clone();
            extended.push(Payload::Silent);
            current.insert_n(extended, count);
        }

        let reception: Vec<Payload<A::Msg>> = current
            .iter()
            .map(|h| h.last().expect("histories are nonempty after round 1").clone())
            .collect();
        debug_assert_eq!(reception.len(), state.degree);
        match self.inner.step(&state.inner, &reception) {
            Status::Stopped(o) => Status::Stopped(o),
            Status::Running(inner) => Status::Running(VbHistoryState {
                inner,
                sent,
                neighbors: current,
                degree: state.degree,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::{BroadcastAsVector, MbAsVector};
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// `VB` view gathering: the broadcast analogue of Yamashita–Kameda
    /// views (no outgoing port labels; children ordered by in-port).
    #[derive(Debug, Clone, Copy)]
    struct BcViewGather {
        radius: usize,
    }

    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct BcView {
        degree: usize,
        children: Vec<BcView>,
    }

    impl portnum_machine::MessageSize for BcView {
        fn size_units(&self) -> u64 {
            1 + self.children.iter().map(|c| c.size_units()).sum::<u64>()
        }
    }

    impl BroadcastAlgorithm for BcViewGather {
        type State = (usize, BcView);
        type Msg = BcView;
        type Output = BcView;

        fn init(&self, degree: usize) -> Status<(usize, BcView), BcView> {
            let leaf = BcView { degree, children: Vec::new() };
            if self.radius == 0 {
                Status::Stopped(leaf)
            } else {
                Status::Running((0, leaf))
            }
        }

        fn broadcast(&self, (_, view): &(usize, BcView)) -> BcView {
            view.clone()
        }

        fn step(
            &self,
            (round, view): &(usize, BcView),
            received: &[Payload<BcView>],
        ) -> Status<(usize, BcView), BcView> {
            let children: Vec<BcView> = received
                .iter()
                .map(|p| match p {
                    Payload::Data(v) => v.clone(),
                    Payload::Silent => unreachable!("no early stopping"),
                })
                .collect();
            let next = BcView { degree: view.degree, children };
            if round + 1 == self.radius {
                Status::Stopped(next)
            } else {
                Status::Running((round + 1, next))
            }
        }
    }

    /// In-port-order erasure: sort children recursively.
    fn canon(view: &BcView) -> BcView {
        let mut children: Vec<BcView> = view.children.iter().map(canon).collect();
        children.sort();
        BcView { degree: view.degree, children }
    }

    #[test]
    fn wrapped_bc_views_agree_up_to_in_port_order() {
        let mut rng = StdRng::seed_from_u64(77);
        let sim = Simulator::new();
        for g in [
            generators::figure1_graph(),
            generators::cycle(5),
            generators::star(4),
            generators::grid(2, 3),
        ] {
            let p = PortNumbering::random(&g, &mut rng);
            for radius in [1usize, 2, 3] {
                let algo = BcViewGather { radius };
                let direct = sim.run(&BroadcastAsVector(algo), &g, &p).unwrap();
                let wrapped = sim.run(&MbAsVector(MbFromVb::new(algo)), &g, &p).unwrap();
                assert_eq!(wrapped.rounds(), direct.rounds());
                for v in g.nodes() {
                    assert_eq!(
                        canon(&wrapped.outputs()[v]),
                        canon(&direct.outputs()[v]),
                        "{g}, node {v}, radius {radius}"
                    );
                }
            }
        }
    }

    /// Staggered-stopping broadcast algorithm with port-independent output.
    #[derive(Debug, Clone, Copy)]
    struct BcSilenceCounter;

    impl BroadcastAlgorithm for BcSilenceCounter {
        type State = (usize, usize, usize);
        type Msg = u8;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<(usize, usize, usize), usize> {
            if degree == 0 {
                Status::Stopped(0)
            } else {
                Status::Running((0, degree, 0))
            }
        }

        fn broadcast(&self, _: &(usize, usize, usize)) -> u8 {
            0
        }

        fn step(
            &self,
            &(round, degree, silents): &(usize, usize, usize),
            received: &[Payload<u8>],
        ) -> Status<(usize, usize, usize), usize> {
            let silents = silents + received.iter().filter(|p| p.is_silent()).count();
            if round + 1 == degree {
                Status::Stopped(silents)
            } else {
                Status::Running((round + 1, degree, silents))
            }
        }
    }

    #[test]
    fn broadcast_into_overwrites_any_stale_slot() {
        // Same recycling contract as `message_into`: Silent slots,
        // recycled buffers from other routes, and steady-state slots
        // must all end up holding exactly the broadcast history.
        let wrapper = MbFromVb::new(BcSilenceCounter);
        let mut neighbors = Multiset::new();
        neighbors.insert_n(vec![Payload::Data(0u8)], 3);
        let state = VbHistoryState {
            inner: (1, 3, 0),
            sent: vec![Payload::Data(0)],
            neighbors,
            degree: 3,
        };
        let expected = Payload::Data(wrapper.broadcast(&state));
        let stale_cases = [
            Payload::Silent,
            Payload::Data(Vec::new()),
            Payload::Data(vec![Payload::Data(9), Payload::Silent, Payload::Data(9)]),
            expected.clone(),
        ];
        for mut slot in stale_cases {
            wrapper.broadcast_into(&state, &mut slot);
            assert_eq!(slot, expected);
        }
    }

    #[test]
    fn staggered_broadcast_stopping_matches() {
        let mut rng = StdRng::seed_from_u64(5);
        let sim = Simulator::new();
        for g in [generators::star(3), generators::figure1_graph(), generators::path(6)] {
            let p = PortNumbering::random(&g, &mut rng);
            let direct = sim.run(&BroadcastAsVector(BcSilenceCounter), &g, &p).unwrap();
            let wrapped = sim.run(&MbAsVector(MbFromVb::new(BcSilenceCounter)), &g, &p).unwrap();
            assert_eq!(direct.outputs(), wrapped.outputs(), "{g}");
            assert_eq!(direct.rounds(), wrapped.rounds(), "{g}");
        }
    }
}
