//! The collapse theorems as executable simulations.
//!
//! * [`SetFromMultiset`] — Theorem 4: any `Multiset` algorithm runs in
//!   class `Set` after a `2Δ`-round colouring preamble
//!   (`SV = MV`, overhead `T ↦ T + 2Δ`).
//! * [`MultisetFromVector`] — Theorem 8: any `Vector` algorithm runs in
//!   class `Multiset` by shipping full per-port message histories and
//!   sorting them lexicographically into *virtual ports*
//!   (`MV = VV`, same round count, message sizes grow with `T`).
//! * [`MbFromVb`] — Theorem 9: the same history construction for
//!   `Broadcast` algorithms (`MB = VB`).
//! * [`SetFromVector`] — the composition: class `Set` simulates the full
//!   `Vector` model (`SV = VV`).
//!
//! Because the wrappers implement the *weaker* trait, the type system
//! itself witnesses the collapses: `SetFromMultiset<A>: SetAlgorithm`
//! exists for every `A: MultisetAlgorithm`.

mod mb_from_vb;
mod multiset_from_vector;
mod set_from_multiset;

pub use mb_from_vb::{MbFromVb, VbHistoryState};
pub use multiset_from_vector::{MfvState, MultisetFromVector};
pub use set_from_multiset::{Beta, SetFromMultiset, SfmMsg, SfmState};

/// Class `Set` simulates the full `Vector` model: Theorem 8 then Theorem 4.
pub type SetFromVector<A> = SetFromMultiset<MultisetFromVector<A>>;

/// Wraps a `Vector` algorithm for execution in class `Set`: runs in
/// `T + 2·delta` rounds on graphs of maximum degree at most `delta`.
pub fn set_from_vector<A>(inner: A, delta: usize) -> SetFromVector<A>
where
    A: portnum_machine::VectorAlgorithm,
{
    SetFromMultiset::new(MultisetFromVector::new(inner), delta)
}
