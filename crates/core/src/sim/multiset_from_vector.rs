//! Theorem 8: class `Multiset` simulates class `Vector` with no round
//! overhead (`MV = VV`), at the price of messages that carry full
//! histories.
//!
//! Every outgoing message is the complete history of inner messages sent
//! to that port. The receiver sorts the histories it holds
//! lexicographically and assigns them to *virtual in-ports* in that order;
//! the proof shows this reproduces the inner execution under some port
//! numbering that is compatible with the message history — and since the
//! inner algorithm must be correct under *every* port numbering, the
//! output is a valid solution.
//!
//! Stopped senders go silent; the receiver keeps last round's reconstructed
//! histories and *freezes* the ones that no incoming history extends,
//! padding them with the `m0` marker — exactly the `μ(y, i) = m0`
//! convention of the paper.

use portnum_machine::{Multiset, MultisetAlgorithm, Payload, Status, VectorAlgorithm};

/// Wrapper state: the inner state plus the bookkeeping histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MfvState<S, M: Ord> {
    inner: S,
    /// Per out-port history of inner messages sent so far.
    sent: Vec<Vec<Payload<M>>>,
    /// Reconstructed full histories of all `degree` feeding neighbours, as
    /// of the previous round.
    neighbors: Multiset<Vec<Payload<M>>>,
    degree: usize,
}

/// Theorem 8's wrapper: runs a [`VectorAlgorithm`] as a
/// [`MultisetAlgorithm`] in the same number of rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultisetFromVector<A> {
    inner: A,
}

impl<A> MultisetFromVector<A> {
    /// Wraps a `Vector` algorithm.
    pub fn new(inner: A) -> Self {
        MultisetFromVector { inner }
    }

    /// Borrows the wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: VectorAlgorithm> MultisetAlgorithm for MultisetFromVector<A> {
    type State = MfvState<A::State, A::Msg>;
    type Msg = Vec<Payload<A::Msg>>;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        match self.inner.init(degree) {
            Status::Stopped(o) => Status::Stopped(o),
            Status::Running(inner) => {
                let empty: Vec<Payload<A::Msg>> = Vec::new();
                let mut neighbors = Multiset::new();
                neighbors.insert_n(empty, degree);
                Status::Running(MfvState {
                    inner,
                    sent: vec![Vec::new(); degree],
                    neighbors,
                    degree,
                })
            }
        }
    }

    fn message(&self, state: &Self::State, port: usize) -> Self::Msg {
        let mut history = state.sent[port].clone();
        history.push(Payload::Data(self.inner.message(&state.inner, port)));
        history
    }

    fn message_into(&self, state: &Self::State, port: usize, slot: &mut Payload<Self::Msg>) {
        // History messages grow by one entry per round; refill last
        // round's buffer instead of allocating a fresh Vec per message.
        match slot.data_mut() {
            Some(history) => {
                history.clear();
                history.extend(state.sent[port].iter().cloned());
                history.push(Payload::Data(self.inner.message(&state.inner, port)));
            }
            None => *slot = Payload::Data(self.message(state, port)),
        }
    }

    fn step(
        &self,
        state: &Self::State,
        received: &Multiset<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output> {
        let round = state.sent.first().map_or(1, |h| h.len() + 1);
        // Re-derive what we sent this round (message() is pure).
        let mut sent = state.sent.clone();
        for (port, history) in sent.iter_mut().enumerate() {
            history.push(Payload::Data(self.inner.message(&state.inner, port)));
        }
        // Reconstruct the neighbours' current histories: every incoming
        // data history extends one previous history; leftovers are frozen
        // (stopped) senders, extended with the m0 marker.
        let mut pool = state.neighbors.clone();
        let mut current: Multiset<Vec<Payload<A::Msg>>> = Multiset::new();
        let mut silent_count = 0usize;
        for (payload, count) in received.counts() {
            match payload {
                Payload::Data(history) => {
                    debug_assert_eq!(history.len(), round, "history length mismatch");
                    for _ in 0..count {
                        let prefix = history[..round - 1].to_vec();
                        let removed = pool.remove(&prefix);
                        debug_assert!(removed, "incoming history extends no known prefix");
                        current.insert(history.clone());
                    }
                }
                Payload::Silent => silent_count += count,
            }
        }
        debug_assert_eq!(pool.len(), silent_count, "frozen histories must match silence");
        for (frozen, count) in pool.counts() {
            let mut extended = frozen.clone();
            extended.push(Payload::Silent);
            current.insert_n(extended, count);
        }
        // Virtual ports: histories in lexicographic order; the inner
        // reception is the vector of their last entries.
        let reception: Vec<Payload<A::Msg>> = current
            .iter()
            .map(|h| h.last().expect("histories are nonempty after round 1").clone())
            .collect();
        debug_assert_eq!(reception.len(), state.degree);
        match self.inner.step(&state.inner, &reception) {
            Status::Stopped(o) => Status::Stopped(o),
            Status::Running(inner) => Status::Running(MfvState {
                inner,
                sent,
                neighbors: current,
                degree: state.degree,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::vv::{View, ViewGather};
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::MultisetAsVector;
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Erases incoming-port information from a view, keeping outgoing port
    /// labels: the invariant a `Multiset` simulation must preserve.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct OutView {
        degree: usize,
        children: Vec<(usize, OutView)>, // sorted
    }

    fn erase(view: &View) -> OutView {
        let mut children: Vec<(usize, OutView)> =
            view.children.iter().map(|(j, v)| (*j, erase(v))).collect();
        children.sort();
        OutView { degree: view.degree, children }
    }

    #[test]
    fn wrapped_view_gather_preserves_outgoing_views() {
        let mut rng = StdRng::seed_from_u64(42);
        let sim = Simulator::new();
        for g in [
            generators::figure1_graph(),
            generators::cycle(5),
            generators::petersen(),
            generators::star(4),
        ] {
            for _ in 0..3 {
                let p = PortNumbering::random(&g, &mut rng);
                for radius in [1usize, 2, 3] {
                    let direct = sim.run(&ViewGather { radius }, &g, &p).unwrap();
                    let wrapped = sim
                        .run(
                            &MultisetAsVector(MultisetFromVector::new(ViewGather { radius })),
                            &g,
                            &p,
                        )
                        .unwrap();
                    // Same number of rounds — Theorem 8 has no overhead.
                    assert_eq!(wrapped.rounds(), direct.rounds());
                    // Outputs agree up to re-assignment of incoming ports.
                    for v in g.nodes() {
                        assert_eq!(
                            erase(&wrapped.outputs()[v]),
                            erase(&direct.outputs()[v]),
                            "{g}, node {v}, radius {radius}"
                        );
                    }
                }
            }
        }
    }

    /// A `Vector` algorithm with staggered stopping whose output is
    /// independent of incoming port numbers: stop after `degree` rounds,
    /// output the total number of silent slots observed.
    #[derive(Debug, Clone, Copy)]
    struct SilenceCounter;

    impl VectorAlgorithm for SilenceCounter {
        type State = (usize, usize, usize);
        type Msg = u8;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<(usize, usize, usize), usize> {
            if degree == 0 {
                Status::Stopped(0)
            } else {
                Status::Running((0, degree, 0))
            }
        }

        fn message(&self, _: &(usize, usize, usize), _: usize) -> u8 {
            0
        }

        fn step(
            &self,
            &(round, degree, silents): &(usize, usize, usize),
            received: &[Payload<u8>],
        ) -> Status<(usize, usize, usize), usize> {
            let silents = silents + received.iter().filter(|p| p.is_silent()).count();
            if round + 1 == degree {
                Status::Stopped(silents)
            } else {
                Status::Running((round + 1, degree, silents))
            }
        }
    }

    #[test]
    fn frozen_histories_reproduce_silence_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        let sim = Simulator::new();
        for g in [generators::star(3), generators::figure1_graph(), generators::grid(2, 3)] {
            let p = PortNumbering::random(&g, &mut rng);
            let direct = sim.run(&SilenceCounter, &g, &p).unwrap();
            let wrapped = sim
                .run(&MultisetAsVector(MultisetFromVector::new(SilenceCounter)), &g, &p)
                .unwrap();
            assert_eq!(direct.outputs(), wrapped.outputs(), "{g}");
            assert_eq!(direct.rounds(), wrapped.rounds(), "{g}");
        }
    }

    #[test]
    fn message_into_overwrites_any_stale_slot() {
        // The recycling hook receives last round's slot contents —
        // after a Data→Silent→Data transition or an inbox re-layout
        // that can be Silent, an empty recycled buffer, or a history
        // from a different route. It must always leave exactly
        // `Payload::Data(message(state, port))`.
        let wrapper = MultisetFromVector::new(SilenceCounter);
        let mut neighbors = Multiset::new();
        neighbors.insert_n(vec![Payload::Data(0u8), Payload::Data(0)], 2);
        let state = MfvState {
            inner: (2, 2, 0),
            sent: vec![
                vec![Payload::Data(0), Payload::Data(0)],
                vec![Payload::Data(0), Payload::Data(0)],
            ],
            neighbors,
            degree: 2,
        };
        for port in [0usize, 1] {
            let expected = Payload::Data(wrapper.message(&state, port));
            let stale_cases = [
                Payload::Silent,
                Payload::Data(Vec::new()),
                Payload::Data(vec![Payload::Silent; 7]),
                expected.clone(),
            ];
            for mut slot in stale_cases {
                wrapper.message_into(&state, port, &mut slot);
                assert_eq!(slot, expected, "port {port}");
            }
        }
    }

    /// Forwards an inner `Multiset` algorithm but suppresses its
    /// `message_into` override, forcing the allocate-fresh default —
    /// the reference the recycling path is pinned against.
    #[derive(Debug, Clone, Copy)]
    struct NoRecycle<A>(A);

    impl<A: MultisetAlgorithm> MultisetAlgorithm for NoRecycle<A> {
        type State = A::State;
        type Msg = A::Msg;
        type Output = A::Output;

        fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
            self.0.init(degree)
        }

        fn message(&self, state: &Self::State, port: usize) -> Self::Msg {
            self.0.message(state, port)
        }

        // message_into deliberately NOT forwarded: the default
        // allocates a fresh payload every round.

        fn step(
            &self,
            state: &Self::State,
            received: &Multiset<Payload<Self::Msg>>,
        ) -> Status<Self::State, Self::Output> {
            self.0.step(state, received)
        }
    }

    #[test]
    fn recycled_histories_match_fresh_allocation_under_staggered_stops() {
        // Staggered stopping drives every slot through Data→Silent;
        // the recycling and allocate-fresh paths must produce the same
        // executions (outputs, rounds, and message accounting).
        let mut rng = StdRng::seed_from_u64(9);
        let sim = Simulator::new();
        for g in [generators::star(3), generators::figure1_graph(), generators::grid(2, 3)] {
            let p = PortNumbering::random(&g, &mut rng);
            let recycled = sim
                .run(&MultisetAsVector(MultisetFromVector::new(SilenceCounter)), &g, &p)
                .unwrap();
            let fresh = sim
                .run(
                    &MultisetAsVector(NoRecycle(MultisetFromVector::new(SilenceCounter))),
                    &g,
                    &p,
                )
                .unwrap();
            assert_eq!(recycled.outputs(), fresh.outputs(), "{g}");
            assert_eq!(recycled.rounds(), fresh.rounds(), "{g}");
            assert_eq!(recycled.stats(), fresh.stats(), "{g}");
        }
    }

    #[test]
    fn message_sizes_grow_linearly_with_rounds() {
        // The open-problem overhead the paper discusses: history messages
        // grow with T.
        let g = generators::cycle(8);
        let p = PortNumbering::consistent(&g);
        let sim = Simulator::new();
        let run = sim
            .run(&MultisetAsVector(MultisetFromVector::new(ViewGather { radius: 4 })), &g, &p)
            .unwrap();
        let sizes: Vec<u64> = run.stats().iter().map(|s| s.max_message_units).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes must grow: {sizes:?}");
    }
}
