//! Theorem 4: class `Set` simulates class `Multiset` with a `2Δ`-round
//! preamble — the paper's central technical contribution (`SV = MV`).
//!
//! The preamble is the algorithm `C_Δ` from the proof: every node builds a
//! sequence `β_t = (β_{t-1}, B_{t-1})` where `B_t` is the *set* of
//! `(β_t(u), deg(u), i)` probes received in round `t`. Lemmas 5–6 show
//! that after `2Δ` rounds the probe `(β_{2Δ}(u), deg(u), π(u,v))` is
//! distinct for every neighbour `u` of every node `v` — outgoing port
//! numbers break symmetry even without incoming ones. Tagging the inner
//! algorithm's messages with these probes makes all received messages
//! distinct, so the receiver can reconstruct the full *multiset* from the
//! *set* it is handed (silent slots are recovered from the degree).

use portnum_machine::{Message, MessageSize, Multiset, MultisetAlgorithm, Payload, SetAlgorithm, Status};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// The history value `β_t` of the preamble `C_Δ` (`β_0 = ∅` is the
/// initial node).
///
/// `β_t` expands to a tree of `Θ(Δ^t)` nodes, so the implementation
/// hash-conses: every structurally distinct value is interned once per
/// thread and identified by a unique id. Equality, ordering, and hashing
/// all go through the id, making them `O(1)` while agreeing exactly with
/// structural equality (the ordering is some fixed total order, not the
/// lexicographic one — nothing in the simulation depends on which).
/// The *semantic* message size of the fully expanded tree is memoised at
/// construction and reported by [`MessageSize`], so the bench harness
/// still measures the paper's doubly-exponential message growth.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Beta {
    id: u64,
}

/// Interner key: ids of the parts (children are always interned first).
type BetaKey = (Option<u64>, Vec<(u64, usize, usize)>);

#[derive(Debug, Clone)]
struct BetaInfo {
    depth: usize,
    expanded_size: u64,
}

thread_local! {
    static INTERNER: RefCell<(HashMap<BetaKey, u64>, Vec<BetaInfo>)> =
        RefCell::new((HashMap::new(), Vec::new()));
}

impl Beta {
    fn intern(key: BetaKey, depth: usize, expanded_size: u64) -> Beta {
        INTERNER.with(|cell| {
            let (table, infos) = &mut *cell.borrow_mut();
            let next = infos.len() as u64;
            let id = *table.entry(key).or_insert(next);
            if id == next {
                infos.push(BetaInfo { depth, expanded_size });
            }
            Beta { id }
        })
    }

    fn info(&self) -> BetaInfo {
        INTERNER.with(|cell| cell.borrow().1[self.id as usize].clone())
    }

    /// `β_1 = (β_0, B_0) = (∅, ∅)`.
    fn initial() -> Beta {
        Beta::intern((None, Vec::new()), 1, 1)
    }

    /// `β_{t+1} = (β_t, B_t)`.
    fn extend(&self, received: BTreeSet<(Beta, usize, usize)>) -> Beta {
        let info = self.info();
        let mut expanded = 1u64.saturating_add(info.expanded_size);
        for (b, _, _) in &received {
            expanded = expanded.saturating_add(2).saturating_add(b.info().expanded_size);
        }
        let key = (
            Some(self.id),
            received.iter().map(|&(ref b, d, i)| (b.id, d, i)).collect(),
        );
        Beta::intern(key, info.depth + 1, expanded)
    }

    /// Nesting depth (the `t` of `β_t`).
    pub fn depth(&self) -> usize {
        self.info().depth
    }
}

impl MessageSize for Beta {
    /// The size of the *fully expanded* history tree — the semantic
    /// message size a non-sharing implementation would transmit.
    fn size_units(&self) -> u64 {
        self.info().expanded_size
    }
}

/// Messages of the wrapper: colouring probes during the preamble, tagged
/// inner messages afterwards.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SfmMsg<M> {
    /// Preamble round `t`: `(β_t(v), deg(v), i)` sent to port `i`.
    Probe(Beta, usize, usize),
    /// Simulation round: `(β_{2Δ}(v), deg(v), i, a)` where `a` is the
    /// inner algorithm's message for port `i`.
    Tagged(Beta, usize, usize, M),
}

impl<M: MessageSize> MessageSize for SfmMsg<M> {
    fn size_units(&self) -> u64 {
        match self {
            SfmMsg::Probe(beta, _, _) => beta.size_units() + 2,
            SfmMsg::Tagged(beta, _, _, m) => beta.size_units() + 2 + m.size_units(),
        }
    }
}

/// Wrapper state: preamble progress, then the inner state plus the tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfmState<S> {
    /// Running `C_Δ`: about to send `β_t` in round `t`.
    Phase1 {
        /// The next preamble round (1-based).
        t: usize,
        /// `β_t`.
        beta: Beta,
        /// Own degree.
        degree: usize,
    },
    /// Simulating the inner algorithm.
    Phase2 {
        /// The tag `β_{2Δ}`.
        beta: Beta,
        /// Own degree.
        degree: usize,
        /// Inner algorithm state.
        inner: S,
    },
}

/// Theorem 4's wrapper: runs a [`MultisetAlgorithm`] as a [`SetAlgorithm`]
/// in `T + 2·delta` rounds.
///
/// `delta` must be at least the maximum degree of every graph the wrapper
/// is run on (the `Δ` of the family `F(Δ)`); Lemma 6's distinctness
/// guarantee — and hence the multiset reconstruction — depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetFromMultiset<A> {
    inner: A,
    delta: usize,
}

impl<A> SetFromMultiset<A> {
    /// Wraps `inner` for graphs of maximum degree at most `delta`.
    pub fn new(inner: A, delta: usize) -> Self {
        SetFromMultiset { inner, delta }
    }

    /// The preamble length `2Δ`.
    pub fn preamble_rounds(&self) -> usize {
        2 * self.delta
    }

    /// Borrows the wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: MultisetAlgorithm> SetFromMultiset<A> {
    fn enter_phase2(
        &self,
        beta: Beta,
        degree: usize,
    ) -> Status<SfmState<A::State>, A::Output> {
        match self.inner.init(degree) {
            Status::Stopped(o) => Status::Stopped(o),
            Status::Running(inner) => Status::Running(SfmState::Phase2 { beta, degree, inner }),
        }
    }
}

impl<A: MultisetAlgorithm> SetAlgorithm for SetFromMultiset<A> {
    type State = SfmState<A::State>;
    type Msg = SfmMsg<A::Msg>;
    type Output = A::Output;

    fn init(&self, degree: usize) -> Status<Self::State, Self::Output> {
        if self.preamble_rounds() == 0 {
            // Degenerate family (Δ = 0): no communication is possible
            // anyway; hand over immediately.
            self.enter_phase2(Beta::initial(), degree)
        } else {
            Status::Running(SfmState::Phase1 { t: 1, beta: Beta::initial(), degree })
        }
    }

    fn message(&self, state: &Self::State, port: usize) -> Self::Msg {
        match state {
            SfmState::Phase1 { beta, degree, .. } => SfmMsg::Probe(beta.clone(), *degree, port),
            SfmState::Phase2 { beta, degree, inner } => {
                SfmMsg::Tagged(beta.clone(), *degree, port, self.inner.message(inner, port))
            }
        }
    }

    fn step(
        &self,
        state: &Self::State,
        received: &BTreeSet<Payload<Self::Msg>>,
    ) -> Status<Self::State, Self::Output> {
        match state {
            SfmState::Phase1 { t, beta, degree } => {
                let b_t: BTreeSet<(Beta, usize, usize)> = received
                    .iter()
                    .map(|payload| match payload {
                        Payload::Data(SfmMsg::Probe(b, d, i)) => (b.clone(), *d, *i),
                        other => unreachable!(
                            "preamble rounds carry only probes, got {other:?}"
                        ),
                    })
                    .collect();
                if *t == self.preamble_rounds() {
                    // Tag with β_{2Δ} — the value just sent (Lemma 6).
                    self.enter_phase2(beta.clone(), *degree)
                } else {
                    Status::Running(SfmState::Phase1 {
                        t: t + 1,
                        beta: beta.extend(b_t),
                        degree: *degree,
                    })
                }
            }
            SfmState::Phase2 { beta, degree, inner } => {
                // All data messages are pairwise distinct (Lemma 6), so the
                // set faithfully represents the multiset of running
                // neighbours; the rest were silent.
                let mut reception: Multiset<Payload<A::Msg>> = Multiset::new();
                let mut running = 0usize;
                for payload in received {
                    if let Payload::Data(SfmMsg::Tagged(_, _, _, a)) = payload {
                        running += 1;
                        reception.insert(Payload::Data(a.clone()));
                    }
                }
                let silent = degree.checked_sub(running).expect(
                    "more tagged messages than ports: delta too small for this graph",
                );
                reception.insert_n(Payload::Silent, silent);
                match self.inner.step(inner, &reception) {
                    Status::Stopped(o) => Status::Stopped(o),
                    Status::Running(next) => Status::Running(SfmState::Phase2 {
                        beta: beta.clone(),
                        degree: *degree,
                        inner: next,
                    }),
                }
            }
        }
    }
}

// A manual `Message`-compatibility sanity bound: SfmMsg<M> is a Message
// whenever M is (derives provide the traits; this is just documentation).
fn _assert_message<M: Message>() {
    fn is_message<T: Message>() {}
    is_message::<SfmMsg<M>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::{MultisetAsVector, SetAsVector};
    use portnum_machine::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Genuine `Multiset` algorithm: output the sorted multiset of
    /// neighbour degrees (multiplicities matter).
    #[derive(Debug, Clone, Copy)]
    struct DegreeProfile;

    impl MultisetAlgorithm for DegreeProfile {
        type State = usize;
        type Msg = usize;
        type Output = Vec<usize>;

        fn init(&self, degree: usize) -> Status<usize, Vec<usize>> {
            Status::Running(degree)
        }

        fn message(&self, state: &usize, _port: usize) -> usize {
            *state
        }

        fn step(
            &self,
            _state: &usize,
            received: &Multiset<Payload<usize>>,
        ) -> Status<usize, Vec<usize>> {
            Status::Stopped(received.iter().filter_map(Payload::data).copied().collect())
        }
    }

    /// Two-round `Multiset` algorithm with staggered stopping: stops after
    /// `min(degree, 2)` rounds, outputs the number of silent payloads seen.
    #[derive(Debug, Clone, Copy)]
    struct Staggered;

    impl MultisetAlgorithm for Staggered {
        type State = (usize, usize, usize); // (round, degree, silents)
        type Msg = u8;
        type Output = usize;

        fn init(&self, degree: usize) -> Status<(usize, usize, usize), usize> {
            if degree == 0 {
                Status::Stopped(0)
            } else {
                Status::Running((0, degree, 0))
            }
        }

        fn message(&self, _state: &(usize, usize, usize), _port: usize) -> u8 {
            1
        }

        fn step(
            &self,
            &(round, degree, silents): &(usize, usize, usize),
            received: &Multiset<Payload<u8>>,
        ) -> Status<(usize, usize, usize), usize> {
            let silents = silents + received.count(&Payload::Silent);
            if round + 1 == degree.min(2) {
                Status::Stopped(silents)
            } else {
                Status::Running((round + 1, degree, silents))
            }
        }
    }

    fn compare_on<A>(inner: A, g: &portnum_graph::Graph, p: &PortNumbering, delta: usize)
    where
        A: MultisetAlgorithm + Clone,
        A::Msg: MessageSize,
    {
        let sim = Simulator::new();
        let direct = sim.run(&MultisetAsVector(inner.clone()), g, p).unwrap();
        let wrapped = sim.run(&SetAsVector(SetFromMultiset::new(inner, delta)), g, p).unwrap();
        assert_eq!(direct.outputs(), wrapped.outputs(), "{g}");
        let expected = if direct.rounds() == 0 {
            2 * delta
        } else {
            direct.rounds() + 2 * delta
        };
        assert_eq!(wrapped.rounds(), expected, "{g}");
    }

    #[test]
    fn degree_profile_matches_direct_execution() {
        let mut rng = StdRng::seed_from_u64(7);
        for g in [
            generators::star(4),
            generators::cycle(5),
            generators::figure1_graph(),
            generators::petersen(),
            generators::grid(3, 3),
        ] {
            let delta = g.max_degree();
            for _ in 0..3 {
                let p = PortNumbering::random(&g, &mut rng);
                compare_on(DegreeProfile, &g, &p, delta);
            }
        }
    }

    #[test]
    fn works_with_slack_delta() {
        // delta larger than the true maximum degree is allowed (the family
        // parameter), just slower.
        let g = generators::cycle(4);
        let p = PortNumbering::consistent(&g);
        compare_on(DegreeProfile, &g, &p, 5);
    }

    #[test]
    fn staggered_stopping_is_reconstructed() {
        let mut rng = StdRng::seed_from_u64(13);
        for g in [generators::star(3), generators::figure1_graph(), generators::path(5)] {
            let delta = g.max_degree();
            let p = PortNumbering::random(&g, &mut rng);
            compare_on(Staggered, &g, &p, delta);
        }
    }

    #[test]
    fn symmetric_numbering_still_works() {
        // The preamble must cope with fully symmetric inputs: probes stay
        // identical across neighbours for a while (or forever on
        // vertex-transitive graphs), and the multiset reconstruction must
        // still be exact because tags are distinct *per receiving node*.
        let g = generators::cycle(6);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        compare_on(DegreeProfile, &g, &p, 2);
    }

    #[test]
    fn beta_depth_tracks_preamble() {
        let b1 = Beta::initial();
        assert_eq!(b1.depth(), 1);
        let b2 = b1.extend(BTreeSet::new());
        assert_eq!(b2.depth(), 2);
        assert!(b1 < b2 || b2 < b1);
        assert!(b1.size_units() >= 1);
    }
}
