//! The `LOCAL` model (Section 3.1, extension (a)): networks with unique
//! identifiers.
//!
//! An [`IdAlgorithm`] is a `Vector` state machine whose initial state may
//! depend on a globally unique identifier. Everything else — synchronous
//! rounds, port-numbered message routing, `m0` from stopped nodes — is
//! unchanged, so the model is a strict strengthening of `Vector`: wrap any
//! [`VectorAlgorithm`] with [`IgnoreIds`] to embed it.
//!
//! The classic benefit of identifiers is deterministic symmetry breaking:
//! [`GreedyMisById`] computes a maximal independent set on *every* graph —
//! a problem outside `VVc`
//! (see [`separation`](crate::stronger::separation)).

use portnum_graph::{Graph, Port, PortNumbering};
use portnum_machine::{Message, Payload, Status, VectorAlgorithm};
use std::collections::HashSet;
use std::fmt::Debug;

/// An algorithm in the `LOCAL` model: `Vector` plus a unique identifier at
/// initialisation.
pub trait IdAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status from the degree and the node's unique identifier.
    fn init(&self, degree: usize, id: u64) -> Status<Self::State, Self::Output>;

    /// The message sent to out-port `port`. Only called on running nodes.
    fn message(&self, state: &Self::State, port: usize) -> Self::Msg;

    /// The transition on the vector of payloads indexed by in-port.
    /// Only called on running nodes.
    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
    ) -> Status<Self::State, Self::Output>;
}

/// Embeds a [`VectorAlgorithm`] into the `LOCAL` model by ignoring the
/// identifier — the trivial containment `VV ⊆ LOCAL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IgnoreIds<A>(pub A);

impl<A: VectorAlgorithm> IdAlgorithm for IgnoreIds<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize, _id: u64) -> Status<A::State, A::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &A::State, port: usize) -> A::Msg {
        self.0.message(state, port)
    }

    fn step(
        &self,
        state: &A::State,
        received: &[Payload<A::Msg>],
    ) -> Status<A::State, A::Output> {
        self.0.step(state, received)
    }
}

/// Synchronous execution of an [`IdAlgorithm`] on `(G, p)` with the given
/// identifier assignment (semantics otherwise identical to
/// [`Simulator::run`](portnum_machine::Simulator::run)).
///
/// Returns the outputs and the number of rounds.
///
/// # Errors
///
/// Returns the number of still-running nodes if the round limit is hit.
///
/// # Panics
///
/// Panics if `ids.len() != g.len()` or the identifiers are not pairwise
/// distinct (the `LOCAL` model promises globally unique ids).
pub fn run_with_ids<A: IdAlgorithm>(
    algo: &A,
    g: &Graph,
    p: &PortNumbering,
    ids: &[u64],
    max_rounds: usize,
) -> Result<(Vec<A::Output>, usize), usize> {
    assert_eq!(ids.len(), g.len(), "one identifier per node");
    let distinct: HashSet<u64> = ids.iter().copied().collect();
    assert_eq!(distinct.len(), ids.len(), "identifiers must be unique");

    let mut states: Vec<Status<A::State, A::Output>> =
        g.nodes().map(|v| algo.init(g.degree(v), ids[v])).collect();
    let mut rounds = 0usize;
    while states.iter().any(|s| !s.is_stopped()) {
        if rounds == max_rounds {
            return Err(states.iter().filter(|s| !s.is_stopped()).count());
        }
        rounds += 1;
        let mut inboxes: Vec<Vec<Payload<A::Msg>>> =
            g.nodes().map(|v| vec![Payload::Silent; g.degree(v)]).collect();
        for v in g.nodes() {
            if let Status::Running(state) = &states[v] {
                for i in 0..g.degree(v) {
                    let target = p.forward(Port::new(v, i));
                    inboxes[target.node][target.index] =
                        Payload::Data(algo.message(state, i));
                }
            }
        }
        for v in g.nodes() {
            if let Status::Running(state) = &states[v] {
                states[v] = algo.step(state, &inboxes[v]);
            }
        }
    }
    let outputs = states
        .into_iter()
        .map(|s| match s {
            Status::Stopped(o) => o,
            Status::Running(_) => unreachable!("loop exits when all stopped"),
        })
        .collect();
    Ok((outputs, rounds))
}

/// Messages of the MIS protocols: a live competitor's priority, or a
/// decision announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MisMsg {
    /// Still undecided, competing with this priority.
    Active(u64),
    /// Joined the independent set (sender stops after this round).
    JoinedMis,
    /// Dominated by an MIS neighbour (sender stops after this round).
    WentOut,
}

/// Protocol phase of a node in the MIS protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisPhase {
    /// Competing: per-in-port liveness of the neighbours.
    Active {
        /// `alive[i]` — the neighbour feeding in-port `i` is undecided.
        alive: Vec<bool>,
    },
    /// Decided; announce once, then stop with this output.
    Announce(bool),
}

/// State of a node in [`GreedyMisById`] (and, with per-round redraws, in
/// the Luby variant): own priority plus the protocol phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisState {
    /// The current competition priority (the id; redrawn per round in the
    /// randomised variant).
    pub priority: u64,
    /// Protocol phase.
    pub phase: MisPhase,
}

/// Greedy maximal independent set by identifiers: an undecided node joins
/// the MIS as soon as its id exceeds the ids of all still-undecided
/// neighbours; neighbours of a joiner drop out. Decisions are announced
/// for one round before stopping, so silence is never ambiguous.
///
/// Runs in at most `2n` rounds and outputs `true` exactly on a maximal
/// independent set — for every graph, every port numbering, and every
/// assignment of unique ids. No such guarantee is possible in `VVc`
/// (Corollary 3a; see
/// [`mis_beyond_vvc`](crate::stronger::separation::mis_beyond_vvc)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyMisById;

impl GreedyMisById {
    /// The decision step shared with the Luby variant: updates liveness
    /// from `received`, then decides or keeps competing.
    pub(crate) fn decide(
        priority: u64,
        mut alive: Vec<bool>,
        received: &[Payload<MisMsg>],
    ) -> Status<MisState, bool> {
        let mut mis_neighbor = false;
        let mut dominated_by_live = false;
        for (i, payload) in received.iter().enumerate() {
            match payload {
                Payload::Data(MisMsg::Active(their)) => {
                    debug_assert!(alive[i], "active message on a dead port");
                    if *their > priority {
                        dominated_by_live = true;
                    }
                }
                Payload::Data(MisMsg::JoinedMis) => {
                    alive[i] = false;
                    mis_neighbor = true;
                }
                Payload::Data(MisMsg::WentOut) => alive[i] = false,
                // Stopped nodes announced before stopping, so their port
                // is already dead.
                Payload::Silent => debug_assert!(!alive[i], "silence from a live port"),
            }
        }
        if mis_neighbor {
            Status::Running(MisState { priority, phase: MisPhase::Announce(false) })
        } else if !dominated_by_live {
            Status::Running(MisState { priority, phase: MisPhase::Announce(true) })
        } else {
            Status::Running(MisState { priority, phase: MisPhase::Active { alive } })
        }
    }

    pub(crate) fn emit(state: &MisState) -> MisMsg {
        match &state.phase {
            MisPhase::Active { .. } => MisMsg::Active(state.priority),
            MisPhase::Announce(true) => MisMsg::JoinedMis,
            MisPhase::Announce(false) => MisMsg::WentOut,
        }
    }
}

impl IdAlgorithm for GreedyMisById {
    type State = MisState;
    type Msg = MisMsg;
    type Output = bool;

    fn init(&self, degree: usize, id: u64) -> Status<MisState, bool> {
        if degree == 0 {
            // Isolated nodes are in every MIS and have nobody to tell.
            Status::Stopped(true)
        } else {
            Status::Running(MisState {
                priority: id,
                phase: MisPhase::Active { alive: vec![true; degree] },
            })
        }
    }

    fn message(&self, state: &MisState, _port: usize) -> MisMsg {
        GreedyMisById::emit(state)
    }

    fn step(&self, state: &MisState, received: &[Payload<MisMsg>]) -> Status<MisState, bool> {
        match &state.phase {
            MisPhase::Announce(joined) => Status::Stopped(*joined),
            MisPhase::Active { alive } => {
                GreedyMisById::decide(state.priority, alive.clone(), received)
            }
        }
    }
}

/// Flood-max leader election in the `LOCAL` model: every node floods the
/// largest identifier it has heard for `rounds` rounds and then elects
/// itself iff its own id is the maximum.
///
/// With `rounds ≥ diameter(G)` this solves
/// [`LeaderElection`](crate::problems::LeaderElection) on every connected
/// graph — the classic payoff of identifiers for *global* problems, and a
/// problem provably outside `VVc`
/// ([`leader_election_beyond_vvc`](crate::stronger::separation::leader_election_beyond_vvc)).
/// The round budget must be supplied because anonymous-size networks
/// admit no termination detection; Linial's model assumes `n` (hence a
/// diameter bound) is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodMaxLeader {
    /// How many flooding rounds to run (`≥ diameter` for correctness).
    pub rounds: usize,
}

impl IdAlgorithm for FloodMaxLeader {
    /// `(remaining rounds, own id, max id heard)`.
    type State = (usize, u64, u64);
    type Msg = u64;
    type Output = bool;

    fn init(&self, _degree: usize, id: u64) -> Status<(usize, u64, u64), bool> {
        if self.rounds == 0 {
            Status::Stopped(true) // no information: every node claims the crown
        } else {
            Status::Running((self.rounds, id, id))
        }
    }

    fn message(&self, &(_, _, best): &(usize, u64, u64), _port: usize) -> u64 {
        best
    }

    fn step(
        &self,
        &(remaining, id, best): &(usize, u64, u64),
        received: &[Payload<u64>],
    ) -> Status<(usize, u64, u64), bool> {
        let heard = received.iter().filter_map(Payload::data).max().copied().unwrap_or(0);
        let best = best.max(heard);
        if remaining == 1 {
            Status::Stopped(id == best)
        } else {
            Status::Running((remaining - 1, id, best))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{LeaderElection, MaximalIndependentSet, Problem};
    use portnum_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_mis_on(g: &Graph, ids: &[u64], seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let p = PortNumbering::random(g, &mut rng);
            let (out, rounds) =
                run_with_ids(&GreedyMisById, g, &p, ids, 4 * g.len() + 4).unwrap();
            assert!(
                MaximalIndependentSet.is_valid(g, &out),
                "not an MIS on {g} with ids {ids:?}: {out:?}"
            );
            assert!(rounds <= 2 * g.len() + 2, "{g}: took {rounds} rounds");
        }
    }

    #[test]
    fn greedy_mis_on_classic_graphs() {
        for g in [
            generators::cycle(4),
            generators::cycle(7),
            generators::star(5),
            generators::petersen(),
            generators::complete(5),
            generators::grid(3, 4),
            generators::path(6),
        ] {
            let ids: Vec<u64> = (0..g.len() as u64).map(|v| v * 7 + 3).collect();
            check_mis_on(&g, &ids, 99);
            // Reversed ids give a (generally different) valid MIS too.
            let rev: Vec<u64> = ids.iter().rev().copied().collect();
            check_mis_on(&g, &rev, 100);
        }
    }

    #[test]
    fn greedy_mis_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let g = generators::gnp(10, 0.3, &mut rng);
            let ids: Vec<u64> = (0..g.len() as u64).map(|v| v.wrapping_mul(0x9e3779b9)).collect();
            check_mis_on(&g, &ids, 5);
        }
    }

    #[test]
    fn isolated_nodes_join_immediately() {
        let g = Graph::disjoint_union(&[&generators::path(2), &Graph::empty(1)]);
        let p = PortNumbering::consistent(&g);
        let (out, _) = run_with_ids(&GreedyMisById, &g, &p, &[10, 20, 30], 100).unwrap();
        assert!(out[2], "isolated node must be in the MIS");
        assert!(MaximalIndependentSet.is_valid(&g, &out));
    }

    #[test]
    fn higher_id_wins_on_an_edge() {
        let g = generators::path(2);
        let p = PortNumbering::consistent(&g);
        let (out, rounds) = run_with_ids(&GreedyMisById, &g, &p, &[5, 9], 100).unwrap();
        assert_eq!(out, vec![false, true]);
        assert_eq!(rounds, 3, "decide, announce, flush");
    }

    #[test]
    fn ignore_ids_embeds_vector_algorithms() {
        use crate::algorithms::vv::ViewGather;
        use portnum_machine::Simulator;
        let g = generators::petersen();
        let p = PortNumbering::consistent(&g);
        let ids: Vec<u64> = (0..10).collect();
        let (with_ids, rounds) =
            run_with_ids(&IgnoreIds(ViewGather { radius: 2 }), &g, &p, &ids, 100).unwrap();
        let direct = Simulator::new().run(&ViewGather { radius: 2 }, &g, &p).unwrap();
        assert_eq!(with_ids, direct.outputs());
        assert_eq!(rounds, direct.rounds());
    }

    #[test]
    fn flood_max_elects_the_maximum_id() {
        let mut rng = StdRng::seed_from_u64(12);
        for g in [
            generators::cycle(8),
            generators::petersen(),
            generators::path(6),
            generators::grid(3, 3),
        ] {
            let p = PortNumbering::random(&g, &mut rng);
            let ids: Vec<u64> = (0..g.len() as u64).map(|v| (v * 31 + 5) % 97).collect();
            let max_pos =
                ids.iter().enumerate().max_by_key(|(_, &id)| id).map(|(v, _)| v).unwrap();
            // Any rounds >= diameter works; n - 1 is a safe bound.
            let rounds = g.len() - 1;
            let (out, took) =
                run_with_ids(&FloodMaxLeader { rounds }, &g, &p, &ids, rounds + 1).unwrap();
            assert!(LeaderElection.is_valid(&g, &out), "{g}: {out:?}");
            assert!(out[max_pos], "{g}: the max id must win");
            assert_eq!(took, rounds);
        }
    }

    #[test]
    fn flood_max_needs_the_diameter() {
        // With too few rounds, distant nodes never hear the max id and
        // several elect themselves — the round budget is load-bearing.
        let g = generators::path(6);
        let p = PortNumbering::consistent(&g);
        let ids = vec![10, 1, 2, 3, 4, 5];
        let (out, _) = run_with_ids(&FloodMaxLeader { rounds: 2 }, &g, &p, &ids, 10).unwrap();
        assert!(!LeaderElection.is_valid(&g, &out), "2 < diameter 5 must fail: {out:?}");
    }

    #[test]
    #[should_panic(expected = "identifiers must be unique")]
    fn duplicate_ids_are_rejected() {
        let g = generators::path(3);
        let p = PortNumbering::consistent(&g);
        let _ = run_with_ids(&GreedyMisById, &g, &p, &[1, 1, 2], 10);
    }

    #[test]
    fn round_limit_reported() {
        let g = generators::cycle(4);
        let p = PortNumbering::consistent(&g);
        // One round is never enough for the 2-phase protocol.
        assert!(run_with_ids(&GreedyMisById, &g, &p, &[1, 2, 3, 4], 1).is_err());
    }

    use portnum_graph::Graph;
}
