//! The two stronger models of Section 3.1, executable: networks with
//! **unique identifiers** (Linial's / the `LOCAL` model) and **randomised**
//! distributed algorithms.
//!
//! The paper uses maximal independent set (MIS) as the problem separating
//! the weak models from both extensions: "a cycle with a symmetric port
//! numbering is a simple counterexample" for `MIS ∉ VVc`, while both
//! stronger models solve MIS easily. This module builds all three pieces:
//!
//! * [`local`] — the `LOCAL` model: [`IdAlgorithm`](local::IdAlgorithm)
//!   (initialisation sees a globally unique id) with a synchronous runner
//!   and the classic greedy-by-id MIS algorithm;
//! * [`randomized`] — randomised state machines:
//!   [`RandomizedAlgorithm`](randomized::RandomizedAlgorithm) (private
//!   random bits in `init` and `step`) with a seeded runner and a
//!   Luby-style MIS algorithm;
//! * [`separation`] — the negative side: on an even cycle there is a
//!   *consistent* port numbering under which all nodes are bisimilar in
//!   `K₊,₊`, so by Corollary 3(a) no deterministic anonymous algorithm —
//!   not even in `VVc` — computes an MIS; packaged with the two positive
//!   sides as machine-checked [`BeyondEvidence`](separation::BeyondEvidence).
//!
//! Both extensions strictly contain `VVc`: every `Vector` algorithm is an
//! [`IdAlgorithm`](local::IdAlgorithm) that ignores its id and a
//! [`RandomizedAlgorithm`](randomized::RandomizedAlgorithm) that ignores
//! its random bits (see the adapter constructors in the submodules).

pub mod local;
pub mod randomized;
pub mod separation;
