//! Randomised distributed algorithms (Section 3.1, extension (b)).
//!
//! A [`RandomizedAlgorithm`] is a `Vector` state machine whose
//! initialisation and transitions may consume private random bits. The
//! nodes remain anonymous — randomness is the *only* symmetry breaker —
//! and the execution is otherwise the synchronous semantics of
//! Section 1.3. The runner derives one independent deterministic stream
//! per node from a master seed, so every run is reproducible.
//!
//! [`LubyMis`] is the classic payoff: maximal independent set with fresh
//! random priorities per round, solving w.h.p. in `O(log n)` phases a
//! problem that no deterministic anonymous algorithm solves at all
//! (see [`separation`](crate::stronger::separation)).

use crate::stronger::local::{GreedyMisById, MisMsg, MisPhase, MisState};
use portnum_graph::{Graph, Port, PortNumbering};
use portnum_machine::{Message, Payload, Status, VectorAlgorithm};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;

/// An anonymous randomised algorithm: `Vector` plus private random bits.
pub trait RandomizedAlgorithm {
    /// Intermediate state.
    type State: Clone + Debug;
    /// Message type.
    type Msg: Message;
    /// Local output.
    type Output: Clone + Eq + Debug;

    /// Initial status from the degree, with access to the node's private
    /// random stream.
    fn init(&self, degree: usize, rng: &mut dyn RngCore) -> Status<Self::State, Self::Output>;

    /// The message sent to out-port `port`. Only called on running nodes.
    fn message(&self, state: &Self::State, port: usize) -> Self::Msg;

    /// The transition on the vector of payloads indexed by in-port, with
    /// access to the node's private random stream. Only called on running
    /// nodes.
    fn step(
        &self,
        state: &Self::State,
        received: &[Payload<Self::Msg>],
        rng: &mut dyn RngCore,
    ) -> Status<Self::State, Self::Output>;
}

/// Embeds a [`VectorAlgorithm`] into the randomised model by ignoring the
/// random bits — the trivial containment of deterministic algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IgnoreRandomness<A>(pub A);

impl<A: VectorAlgorithm> RandomizedAlgorithm for IgnoreRandomness<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn init(&self, degree: usize, _rng: &mut dyn RngCore) -> Status<A::State, A::Output> {
        self.0.init(degree)
    }

    fn message(&self, state: &A::State, port: usize) -> A::Msg {
        self.0.message(state, port)
    }

    fn step(
        &self,
        state: &A::State,
        received: &[Payload<A::Msg>],
        _rng: &mut dyn RngCore,
    ) -> Status<A::State, A::Output> {
        self.0.step(state, received)
    }
}

/// Synchronous execution of a [`RandomizedAlgorithm`] on `(G, p)`.
///
/// Each node receives an independent random stream derived
/// deterministically from `seed` and its position, so runs are exactly
/// reproducible; the position is a simulation artefact that the algorithm
/// itself never observes (nodes stay anonymous).
///
/// Returns the outputs and the number of rounds.
///
/// # Errors
///
/// Returns the number of still-running nodes if the round limit is hit
/// (randomised algorithms may have no deterministic round bound).
pub fn run_randomized<A: RandomizedAlgorithm>(
    algo: &A,
    g: &Graph,
    p: &PortNumbering,
    seed: u64,
    max_rounds: usize,
) -> Result<(Vec<A::Output>, usize), usize> {
    let mut master = StdRng::seed_from_u64(seed);
    let mut rngs: Vec<StdRng> =
        g.nodes().map(|_| StdRng::seed_from_u64(master.random())).collect();

    let mut states: Vec<Status<A::State, A::Output>> = g
        .nodes()
        .map(|v| algo.init(g.degree(v), &mut rngs[v]))
        .collect();
    let mut rounds = 0usize;
    while states.iter().any(|s| !s.is_stopped()) {
        if rounds == max_rounds {
            return Err(states.iter().filter(|s| !s.is_stopped()).count());
        }
        rounds += 1;
        let mut inboxes: Vec<Vec<Payload<A::Msg>>> =
            g.nodes().map(|v| vec![Payload::Silent; g.degree(v)]).collect();
        for v in g.nodes() {
            if let Status::Running(state) = &states[v] {
                for i in 0..g.degree(v) {
                    let target = p.forward(Port::new(v, i));
                    inboxes[target.node][target.index] =
                        Payload::Data(algo.message(state, i));
                }
            }
        }
        for v in g.nodes() {
            if let Status::Running(state) = &states[v] {
                states[v] = algo.step(state, &inboxes[v], &mut rngs[v]);
            }
        }
    }
    let outputs = states
        .into_iter()
        .map(|s| match s {
            Status::Stopped(o) => o,
            Status::Running(_) => unreachable!("loop exits when all stopped"),
        })
        .collect();
    Ok((outputs, rounds))
}

/// Luby-style randomised maximal independent set: every undecided node
/// draws a fresh random priority each round and joins the MIS when its
/// draw strictly exceeds all undecided neighbours' draws; neighbours of a
/// joiner drop out, and decisions are announced for one round before
/// stopping.
///
/// Anonymous and deterministic-round-free: only the random draws break
/// symmetry. Each phase removes every edge incident to a local maximum,
/// so the protocol finishes w.h.p. within `O(log n)` phases; ties (which
/// have negligible probability at 64-bit precision) merely cost an extra
/// round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LubyMis;

impl RandomizedAlgorithm for LubyMis {
    type State = MisState;
    type Msg = MisMsg;
    type Output = bool;

    fn init(&self, degree: usize, rng: &mut dyn RngCore) -> Status<MisState, bool> {
        if degree == 0 {
            Status::Stopped(true)
        } else {
            Status::Running(MisState {
                priority: rng.next_u64(),
                phase: MisPhase::Active { alive: vec![true; degree] },
            })
        }
    }

    fn message(&self, state: &MisState, _port: usize) -> MisMsg {
        GreedyMisById::emit(state)
    }

    fn step(
        &self,
        state: &MisState,
        received: &[Payload<MisMsg>],
        rng: &mut dyn RngCore,
    ) -> Status<MisState, bool> {
        match &state.phase {
            MisPhase::Announce(joined) => Status::Stopped(*joined),
            MisPhase::Active { alive } => {
                match GreedyMisById::decide(state.priority, alive.clone(), received) {
                    // Still competing: redraw the priority for the next
                    // phase — this is the difference to the id-based
                    // protocol.
                    Status::Running(MisState { phase: MisPhase::Active { alive }, .. }) => {
                        Status::Running(MisState {
                            priority: rng.next_u64(),
                            phase: MisPhase::Active { alive },
                        })
                    }
                    decided => decided,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::{MaximalIndependentSet, Problem};
    use portnum_graph::generators;

    #[test]
    fn luby_mis_on_classic_graphs() {
        for g in [
            generators::cycle(4),
            generators::cycle(9),
            generators::star(6),
            generators::petersen(),
            generators::complete(6),
            generators::grid(4, 4),
        ] {
            let p = PortNumbering::consistent(&g);
            for seed in [1u64, 2, 3] {
                let (out, rounds) = run_randomized(&LubyMis, &g, &p, seed, 1_000).unwrap();
                assert!(
                    MaximalIndependentSet.is_valid(&g, &out),
                    "not an MIS on {g} with seed {seed}: {out:?}"
                );
                assert!(rounds <= 200, "{g}: suspiciously many rounds ({rounds})");
            }
        }
    }

    #[test]
    fn luby_breaks_symmetric_numberings() {
        // The whole point: randomness succeeds exactly where Corollary 3
        // forbids deterministic algorithms (all nodes bisimilar in K₊,₊).
        let g = generators::cycle(6);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        for seed in 0..5u64 {
            let (out, _) = run_randomized(&LubyMis, &g, &p, seed, 1_000).unwrap();
            assert!(MaximalIndependentSet.is_valid(&g, &out), "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let g = generators::petersen();
        let p = PortNumbering::consistent(&g);
        let a = run_randomized(&LubyMis, &g, &p, 42, 1_000).unwrap();
        let b = run_randomized(&LubyMis, &g, &p, 42, 1_000).unwrap();
        assert_eq!(a, b, "same seed, same run");
        let c = run_randomized(&LubyMis, &g, &p, 44, 1_000).unwrap();
        // Different seeds give valid but (here) different sets.
        assert!(MaximalIndependentSet.is_valid(&g, &c.0));
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn ignore_randomness_embeds_deterministic_algorithms() {
        use crate::algorithms::vv::ViewGather;
        use portnum_machine::Simulator;
        let g = generators::grid(2, 3);
        let p = PortNumbering::consistent(&g);
        let (rand_out, rounds) =
            run_randomized(&IgnoreRandomness(ViewGather { radius: 2 }), &g, &p, 7, 100)
                .unwrap();
        let direct = Simulator::new().run(&ViewGather { radius: 2 }, &g, &p).unwrap();
        assert_eq!(rand_out, direct.outputs());
        assert_eq!(rounds, direct.rounds());
    }

    #[test]
    fn round_limit_reported() {
        /// Never stops.
        #[derive(Debug)]
        struct Forever;
        impl RandomizedAlgorithm for Forever {
            type State = ();
            type Msg = ();
            type Output = ();
            fn init(&self, _d: usize, _rng: &mut dyn RngCore) -> Status<(), ()> {
                Status::Running(())
            }
            fn message(&self, _: &(), _: usize) {}
            fn step(&self, _: &(), _: &[Payload<()>], _: &mut dyn RngCore) -> Status<(), ()> {
                Status::Running(())
            }
        }
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        assert_eq!(run_randomized(&Forever, &g, &p, 1, 5), Err(3));
    }

    #[test]
    fn phase_count_shrinks_with_luck_of_the_draw() {
        // Statistical sanity (not a proof): across seeds, Luby on a long
        // cycle finishes well under the deterministic 2n worst case.
        let g = generators::cycle(30);
        let p = PortNumbering::consistent(&g);
        let mut total_rounds = 0usize;
        for seed in 0..10u64 {
            let (out, rounds) = run_randomized(&LubyMis, &g, &p, seed, 10_000).unwrap();
            assert!(MaximalIndependentSet.is_valid(&g, &out));
            total_rounds += rounds;
        }
        assert!(
            total_rounds / 10 < 2 * g.len(),
            "average rounds {} should beat the 2n bound",
            total_rounds / 10
        );
    }
}
