//! `MIS ∉ VVc`, but `MIS ∈ LOCAL` and `MIS ∈` randomised — the paper's
//! Section 3.1 separation between the weak models and the two stronger
//! ones, machine-checked.
//!
//! The negative side is the paper's one-line remark made precise: "a cycle
//! with a symmetric port numbering is a simple counterexample". An even
//! cycle decomposes into two perfect matchings; wiring port `i` along
//! matching `i` gives a *consistent* port numbering (each edge uses the
//! same port index at both endpoints, so `p` is an involution) under which
//! all nodes are plain-bisimilar in `K₊,₊`. By Corollary 3(a) every
//! deterministic anonymous algorithm — the consistency promise included,
//! so all of `VVc` — produces a constant output on the cycle, and no
//! constant output is a maximal independent set.
//!
//! The positive sides are the algorithms of the sibling modules:
//! [`GreedyMisById`] (unique identifiers) and [`LubyMis`] (randomness).

use crate::problems::{LeaderElection, MaximalIndependentSet, Problem};
use crate::stronger::local::{run_with_ids, FloodMaxLeader, GreedyMisById};
use crate::stronger::randomized::{run_randomized, LubyMis};
use portnum_graph::{Graph, Port, PortNumbering};
use portnum_logic::bisim::{self, BisimStyle};
use portnum_logic::Kripke;
use std::fmt;

/// The matching-based consistent symmetric port numbering of an even
/// cycle `C_{2m}` (nodes in cycle order `0 — 1 — … — 2m-1 — 0`): port 0
/// along the edges `{2i, 2i+1}`, port 1 along the edges `{2i+1, 2i+2}`.
///
/// The numbering is consistent (each edge uses one port index at both
/// ends) and fully symmetric: every node's local type is `(0, 1)` and all
/// nodes are bisimilar in `K₊,₊`.
///
/// # Panics
///
/// Panics if `m == 0` (the construction needs a cycle on `≥ 4` nodes;
/// `m = 1` would be a multigraph).
pub fn even_cycle_matched_numbering(m: usize) -> (Graph, PortNumbering) {
    assert!(m >= 2, "need an even cycle on at least 4 nodes");
    let n = 2 * m;
    let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let g = Graph::from_edges(n, &edges).expect("cycles are simple for n >= 3");
    let mut fwd: Vec<Vec<Port>> = (0..n).map(|_| vec![Port::new(usize::MAX, 0); 2]).collect();
    for (v, ports) in fwd.iter_mut().enumerate() {
        let matched = if v % 2 == 0 { (v + 1) % n } else { v + n - 1 };
        let other = if v % 2 == 0 { (v + n - 1) % n } else { (v + 1) % n };
        ports[0] = Port::new(matched % n, 0);
        ports[1] = Port::new(other, 1);
    }
    let p = PortNumbering::from_forward_map(&g, fwd)
        .expect("matching-based wiring realises the cycle");
    debug_assert!(p.is_consistent());
    (g, p)
}

/// Evidence that a problem separates the weak models from a stronger one
/// (the Section 3.1 analogue of
/// [`SeparationEvidence`](crate::separations::SeparationEvidence), whose
/// stronger side is outside the seven-class lattice).
#[derive(Debug, Clone)]
pub struct BeyondEvidence {
    /// Name of the stronger model.
    pub stronger_model: &'static str,
    /// Name of the witness problem.
    pub problem: &'static str,
    /// The witness graph.
    pub graph: Graph,
    /// The consistent symmetric numbering certifying the negative side.
    pub numbering_consistent: bool,
    /// All nodes bisimilar in `K₊,₊` under that numbering (Corollary 3a's
    /// hypothesis).
    pub all_bisimilar: bool,
    /// No constant output solves the problem on the witness graph.
    pub constant_outputs_fail: bool,
    /// The stronger model's algorithm solved the problem on the witness.
    pub positive_solved: bool,
    /// Rounds the positive algorithm took.
    pub positive_rounds: usize,
}

impl BeyondEvidence {
    /// Both halves hold: the problem is solvable in the stronger model but
    /// in none of the paper's seven classes.
    pub fn holds(&self) -> bool {
        self.numbering_consistent
            && self.all_bisimilar
            && self.constant_outputs_fail
            && self.positive_solved
    }
}

impl fmt::Display for BeyondEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VVc ⊊ {} via “{}”: consistent symmetric numbering = {}, all nodes \
             bisimilar in K₊,₊ = {}, constants fail = {}, positive side solved \
             in {} rounds = {}",
            self.stronger_model,
            self.problem,
            self.numbering_consistent,
            self.all_bisimilar,
            self.constant_outputs_fail,
            self.positive_rounds,
            self.positive_solved,
        )
    }
}

fn negative_side<P: Problem<Output = bool>>(
    problem: &P,
    g: &Graph,
    p: &PortNumbering,
) -> (bool, bool, bool) {
    let model = Kripke::k_pp(g, p);
    let classes = bisim::refine(&model, BisimStyle::Plain);
    let all_bisimilar = classes.class_count(classes.depth()) == 1;
    let constant_outputs_fail = !problem.is_valid(g, &vec![true; g.len()])
        && !problem.is_valid(g, &vec![false; g.len()]);
    (p.is_consistent(), all_bisimilar, constant_outputs_fail)
}

/// `MIS ∈ LOCAL ∖ VVc`, on the even cycle `C_{2m}`.
pub fn mis_beyond_vvc(m: usize) -> BeyondEvidence {
    let (g, p) = even_cycle_matched_numbering(m);
    let (numbering_consistent, all_bisimilar, constant_outputs_fail) =
        negative_side(&MaximalIndependentSet, &g, &p);
    let ids: Vec<u64> = (0..g.len() as u64).map(|v| v.wrapping_mul(0x9e37_79b9) ^ 0xb7e1).collect();
    let (outputs, positive_rounds) =
        run_with_ids(&GreedyMisById, &g, &p, &ids, 4 * g.len()).expect("greedy MIS terminates");
    BeyondEvidence {
        stronger_model: "LOCAL (unique identifiers)",
        problem: MaximalIndependentSet.name(),
        positive_solved: MaximalIndependentSet.is_valid(&g, &outputs),
        graph: g,
        numbering_consistent,
        all_bisimilar,
        constant_outputs_fail,
        positive_rounds,
    }
}

/// `MIS ∈ randomised ∖ VVc`, on the even cycle `C_{2m}`.
pub fn mis_beyond_vvc_randomized(m: usize, seed: u64) -> BeyondEvidence {
    let (g, p) = even_cycle_matched_numbering(m);
    let (numbering_consistent, all_bisimilar, constant_outputs_fail) =
        negative_side(&MaximalIndependentSet, &g, &p);
    let (outputs, positive_rounds) =
        run_randomized(&LubyMis, &g, &p, seed, 100_000).expect("Luby terminates w.h.p.");
    BeyondEvidence {
        stronger_model: "randomised",
        problem: MaximalIndependentSet.name(),
        positive_solved: MaximalIndependentSet.is_valid(&g, &outputs),
        graph: g,
        numbering_consistent,
        all_bisimilar,
        constant_outputs_fail,
        positive_rounds,
    }
}

/// `Leader election ∈ LOCAL ∖ VVc`, on the even cycle `C_{2m}` — the
/// paper's Section 5.4 remark on prior work's natural *global* witness,
/// with flood-max on the positive side.
pub fn leader_election_beyond_vvc(m: usize) -> BeyondEvidence {
    let (g, p) = even_cycle_matched_numbering(m);
    let (numbering_consistent, all_bisimilar, constant_outputs_fail) =
        negative_side(&LeaderElection, &g, &p);
    let ids: Vec<u64> = (0..g.len() as u64).map(|v| (v * 13 + 7) % 251).collect();
    let diameter = m; // an even cycle C_{2m} has diameter m
    let (outputs, positive_rounds) =
        run_with_ids(&FloodMaxLeader { rounds: diameter }, &g, &p, &ids, diameter + 1)
            .expect("flood-max runs exactly `rounds` rounds");
    BeyondEvidence {
        stronger_model: "LOCAL (unique identifiers)",
        problem: LeaderElection.name(),
        positive_solved: LeaderElection.is_valid(&g, &outputs),
        graph: g,
        numbering_consistent,
        all_bisimilar,
        constant_outputs_fail,
        positive_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_machine::Simulator;

    #[test]
    fn matched_numbering_is_consistent_and_symmetric() {
        for m in [2usize, 3, 5] {
            let (g, p) = even_cycle_matched_numbering(m);
            assert_eq!(g.len(), 2 * m);
            assert!(p.is_consistent());
            let t0 = p.local_type(0);
            for v in g.nodes() {
                assert_eq!(p.local_type(v), t0, "local types must coincide");
            }
            // Port i pairs with port i across every edge.
            for (from, to) in p.pairs() {
                assert_eq!(from.index, to.index);
            }
        }
    }

    #[test]
    fn mis_beyond_vvc_holds() {
        for m in [2usize, 4, 6] {
            let e = mis_beyond_vvc(m);
            assert!(e.holds(), "{e}");
        }
    }

    #[test]
    fn mis_beyond_vvc_randomized_holds() {
        for (m, seed) in [(2usize, 7u64), (5, 8), (8, 9)] {
            let e = mis_beyond_vvc_randomized(m, seed);
            assert!(e.holds(), "{e}");
        }
    }

    #[test]
    fn leader_election_beyond_vvc_holds() {
        for m in [2usize, 3, 6] {
            let e = leader_election_beyond_vvc(m);
            assert!(e.holds(), "{e}");
            assert_eq!(e.positive_rounds, m, "flood-max runs diameter rounds");
        }
    }

    #[test]
    fn connected_covers_also_defeat_leader_election() {
        // The second impossibility mechanism: a connected 2-lift of the
        // witness carries any would-be leader to both fibre members, so
        // no algorithm correct on C_{2m} *and* its lifts can elect.
        use portnum_graph::lifts::{lift, Voltages};
        use portnum_graph::properties;
        let (g, p) = even_cycle_matched_numbering(3);
        // Swap the sheets across exactly one edge: the total voltage
        // around the cycle is odd, so the 2-lift is the connected C_24.
        let mut perms = vec![vec![0, 1]; g.edge_count()];
        perms[0] = vec![1, 0];
        let voltages = Voltages::new(&g, 2, perms).unwrap();
        let lifted = lift(&g, &p, &voltages).unwrap();
        assert_eq!(properties::component_count(lifted.graph()), 1);
        // If outputs on the lift are fibre-constant (which the lifting
        // lemma forces for every deterministic anonymous algorithm), a
        // unique leader downstairs means exactly two leaders upstairs.
        let mut fake = vec![false; g.len()];
        fake[0] = true;
        assert!(LeaderElection.is_valid(&g, &fake));
        let lifted_outputs: Vec<bool> = lifted
            .graph()
            .nodes()
            .map(|w| fake[lifted.covering_map().project(w)])
            .collect();
        assert!(!LeaderElection.is_valid(lifted.graph(), &lifted_outputs));
    }

    #[test]
    fn deterministic_anonymous_algorithms_output_constants_here() {
        // Corollary 3a in action: run an actual VVc-side algorithm on the
        // witness and watch it produce a constant (hence invalid) output.
        use crate::algorithms::vvc::LocalTypeSymmetryBreak;
        let (g, p) = even_cycle_matched_numbering(3);
        let run = Simulator::new().run(&LocalTypeSymmetryBreak, &g, &p).unwrap();
        let first = &run.outputs()[0];
        assert!(run.outputs().iter().all(|o| o == first), "output must be constant");
        assert!(!MaximalIndependentSet.is_valid(&g, run.outputs()));
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn tiny_cycles_rejected() {
        let _ = even_cycle_matched_numbering(1);
    }

    #[test]
    fn display_is_informative() {
        let e = mis_beyond_vvc(2);
        let s = e.to_string();
        assert!(s.contains("LOCAL"));
        assert!(s.contains("maximal independent set"));
    }
}
