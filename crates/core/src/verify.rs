//! Exact brute-force verifiers used by problem validity checks, tests, and
//! the reproduce harness. Exponential-time; intended for small instances.

use portnum_graph::{matching, Graph};

/// Returns `true` if `cover` (an indicator per node) is a vertex cover.
pub fn is_vertex_cover(g: &Graph, cover: &[bool]) -> bool {
    g.edges().all(|(u, v)| cover[u] || cover[v])
}

/// The size of a minimum vertex cover, by branch and bound on edges.
///
/// Runs in `O*(2^{m})` worst case but prunes aggressively; fine for graphs
/// with a few dozen nodes.
pub fn min_vertex_cover_size(g: &Graph) -> usize {
    // Lower bound from a maximum matching (König gives equality on
    // bipartite graphs, so the search closes quickly there).
    let matching_bound = matching::maximum_matching(g)
        .iter()
        .filter(|m| m.is_some())
        .count()
        / 2;
    let edges: Vec<(usize, usize)> = g.edges().collect();
    let mut best = g.len();
    let mut in_cover = vec![false; g.len()];
    fn rec(
        edges: &[(usize, usize)],
        in_cover: &mut Vec<bool>,
        size: usize,
        best: &mut usize,
        bound: usize,
    ) {
        if size >= *best {
            return;
        }
        // Find the first uncovered edge.
        let Some(&(u, v)) = edges.iter().find(|&&(u, v)| !in_cover[u] && !in_cover[v]) else {
            *best = size;
            return;
        };
        if *best == bound {
            return;
        }
        in_cover[u] = true;
        rec(edges, in_cover, size + 1, best, bound);
        in_cover[u] = false;
        in_cover[v] = true;
        rec(edges, in_cover, size + 1, best, bound);
        in_cover[v] = false;
    }
    rec(&edges, &mut in_cover, 0, &mut best, matching_bound);
    best
}

/// Returns `true` if `set` is an independent set.
pub fn is_independent_set(g: &Graph, set: &[bool]) -> bool {
    g.edges().all(|(u, v)| !(set[u] && set[v]))
}

/// Returns `true` if `set` is a *maximal* independent set.
pub fn is_maximal_independent_set(g: &Graph, set: &[bool]) -> bool {
    is_independent_set(g, set)
        && g.nodes().all(|v| set[v] || g.neighbors(v).iter().any(|&u| set[u]))
}

/// Returns `true` if `colors` is a proper colouring with values `< k`.
pub fn is_proper_coloring(g: &Graph, colors: &[usize], k: usize) -> bool {
    colors.iter().all(|&c| c < k) && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// The independence number (size of a maximum independent set), brute force.
pub fn max_independent_set_size(g: &Graph) -> usize {
    // Complement of a minimum vertex cover.
    g.len() - min_vertex_cover_size(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::generators;

    #[test]
    fn vertex_cover_checks() {
        let g = generators::cycle(5);
        assert!(is_vertex_cover(&g, &[true, false, true, false, true]));
        assert!(!is_vertex_cover(&g, &[true, false, false, false, true]));
        assert_eq!(min_vertex_cover_size(&g), 3);
        assert_eq!(min_vertex_cover_size(&generators::star(5)), 1);
        assert_eq!(min_vertex_cover_size(&generators::complete(5)), 4);
        assert_eq!(min_vertex_cover_size(&generators::petersen()), 6);
        assert_eq!(min_vertex_cover_size(&Graph::empty(4)), 0);
    }

    use portnum_graph::Graph;

    #[test]
    fn independent_set_checks() {
        let g = generators::cycle(4);
        assert!(is_maximal_independent_set(&g, &[true, false, true, false]));
        // Independent but not maximal.
        assert!(is_independent_set(&g, &[true, false, false, false]));
        assert!(!is_maximal_independent_set(&g, &[true, false, false, false]));
        // Not independent.
        assert!(!is_independent_set(&g, &[true, true, false, false]));
        assert_eq!(max_independent_set_size(&g), 2);
    }

    #[test]
    fn coloring_checks() {
        let g = generators::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1], 2));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 0], 2));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 2], 2));
        let odd = generators::cycle(5);
        assert!(is_proper_coloring(&odd, &[0, 1, 0, 1, 2], 3));
    }

    #[test]
    fn bound_matches_matching_on_bipartite() {
        // König: on bipartite graphs min VC = max matching.
        for g in [generators::grid(3, 3), generators::hypercube(3), generators::complete_bipartite(3, 4)]
        {
            let m = matching::maximum_matching(&g).iter().filter(|x| x.is_some()).count() / 2;
            assert_eq!(min_vertex_cover_size(&g), m, "{g}");
        }
    }
}
