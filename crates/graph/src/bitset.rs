//! Packed truth vectors: fixed-length bit sets over `u64` words.
//!
//! [`Bitset`] is the storage type behind `portnum-logic`'s packed model
//! checker: a set over a fixed universe `0..len`, one bit per element,
//! 64 elements per word. Boolean connectives (`and`, `or`, `not`) are
//! word-parallel loops over the backing array — 64 elements per
//! instruction instead of one — and membership is a shift and mask.
//!
//! [`BitMatrix`] packs a rectangular 0/1 matrix as one bit row per line,
//! all rows in a single flat word array. It backs the model checker's
//! *reverse-adjacency* diamond path: a relation's predecessor sets are
//! stored as bit rows, so `⟨α⟩φ` is a union of whole rows
//! ([`Bitset::or_words`]) over the worlds satisfying `φ`.
//!
//! # Tail invariant
//!
//! When `len` is not a multiple of 64, the unused high bits of the last
//! word are **always zero**. Every constructor and mutator maintains
//! this, so [`Bitset::count_ones`] and equality never see garbage and
//! `not` must (and does) re-mask the tail after complementing. The same
//! invariant holds per row of a [`BitMatrix`], so a row can be OR-ed
//! into a [`Bitset`] of the same universe without re-masking.

/// A fixed-length set of bits, packed 64 per `u64` word.
///
/// # Examples
///
/// ```
/// use portnum_graph::bitset::Bitset;
///
/// let mut a = Bitset::zeros(100);
/// a.insert(3);
/// a.insert(99);
/// let b = Bitset::ones(100);
/// assert_eq!(a.and(&b), a);
/// assert_eq!(a.count_ones(), 2);
/// assert_eq!(a.not().count_ones(), 98);
/// assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![3, 99]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bitset {
    len: usize,
    words: Vec<u64>,
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(64)
}

impl Bitset {
    /// The empty set over universe `0..len`.
    pub fn zeros(len: usize) -> Bitset {
        Bitset { len, words: vec![0; word_count(len)] }
    }

    /// The full set over universe `0..len` (tail bits kept zero).
    pub fn ones(len: usize) -> Bitset {
        let mut set = Bitset { len, words: vec![!0u64; word_count(len)] };
        set.mask_tail();
        set
    }

    /// Builds the set `{ i : bools[i] }`.
    pub fn from_bools(bools: &[bool]) -> Bitset {
        let mut set = Bitset::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                set.words[i / 64] |= 1 << (i % 64);
            }
        }
        set
    }

    /// Builds a set by evaluating `f` on every element of the universe.
    ///
    /// `f` is called exactly once per element, in increasing order, so
    /// callers may carry sequential state (e.g. a CSR row cursor) in a
    /// captured mutable. Each word is accumulated in a register and
    /// stored once, so the loop body is shift-or rather than a
    /// read-modify-write per bit — this is the hot constructor of the
    /// packed model checker.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> bool) -> Bitset {
        let mut set = Bitset { len: 0, words: Vec::with_capacity(word_count(len)) };
        set.assign_from_fn(len, f);
        set
    }

    /// Re-fills `self` as `from_fn(len, f)` would, reusing the backing
    /// allocation — the in-place counterpart of [`Bitset::from_fn`] for
    /// callers (the plan executor) that cycle a fixed pool of slots.
    ///
    /// # Invocation contract
    ///
    /// `f` is invoked **exactly once per element, in strictly
    /// increasing order** (`f(0), f(1), …, f(len - 1)`), with no skips
    /// and no repeats — the same contract as [`Bitset::from_fn`].
    /// Callers are allowed to lean on it with stateful closures: the
    /// plan executor's forward-diamond path threads a CSR row cursor
    /// through `f` and would silently miscompile under any other
    /// schedule. A range-split parallel fill must therefore go through
    /// [`fill_words_from_fn`] with per-chunk closures (each chunk
    /// re-deriving its cursor), never by sharing one closure across
    /// chunks.
    pub fn assign_from_fn(&mut self, len: usize, mut f: impl FnMut(usize) -> bool) {
        self.len = len;
        self.words.clear();
        let mut i = 0;
        while i < len {
            let end = (i + 64).min(len);
            let mut word = 0u64;
            for bit in 0..end - i {
                word |= (f(i + bit) as u64) << bit;
            }
            self.words.push(word);
            i = end;
        }
    }

    /// Overwrites `self` with a copy of `other`, reusing the backing
    /// allocation (unlike `*self = other.clone()`, which reallocates).
    pub fn copy_from(&mut self, other: &Bitset) {
        self.len = other.len;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Overwrites `self` with the empty set over `0..len`, reusing the
    /// backing allocation.
    pub fn assign_zeros(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(word_count(len), 0);
    }

    /// Overwrites `self` with the full set over `0..len`, reusing the
    /// backing allocation (tail bits kept zero).
    pub fn assign_ones(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(word_count(len), !0u64);
        self.mask_tail();
    }

    /// Unpacks into one `bool` per element.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Size of the universe (number of bits, set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range for Bitset of length {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Inserts element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range for Bitset of length {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Sets element `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range for Bitset of length {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of elements in the set (one `popcnt` per word).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn and_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "Bitset universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or_assign(&mut self, other: &Bitset) {
        assert_eq!(self.len, other.len, "Bitset universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// OR-s a raw word row (e.g. a [`BitMatrix`] row over the same
    /// universe) into `self`, restricted to `self`'s universe: the tail
    /// is re-masked afterwards, so row bits beyond `self.len()` are
    /// discarded rather than breaking the tail invariant.
    ///
    /// # Panics
    ///
    /// Panics if `words.len()` differs from `self`'s word count.
    #[inline]
    pub fn or_words(&mut self, words: &[u64]) {
        assert_eq!(self.words.len(), words.len(), "Bitset universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(words) {
            *a |= b;
        }
        self.mask_tail();
    }

    /// In-place complement (relative to the universe).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn and(&self, other: &Bitset) -> Bitset {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or(&self, other: &Bitset) -> Bitset {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Complement relative to the universe.
    pub fn not(&self) -> Bitset {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// Calls `f` with every element where `self` and `other` disagree, in
    /// increasing order — one XOR per word, then trailing-zero peeling,
    /// so the cost is one word sweep plus the number of differences (the
    /// flip-extraction primitive behind fixpoint frontier iteration and
    /// cache repair).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn for_each_difference(&self, other: &Bitset, mut f: impl FnMut(usize)) {
        assert_eq!(self.len, other.len, "Bitset universe mismatch");
        for (wi, (&a, &b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut diff = a ^ b;
            while diff != 0 {
                f(wi * 64 + diff.trailing_zeros() as usize);
                diff &= diff - 1; // clear lowest set bit
            }
        }
    }

    /// Iterates the set elements in increasing order, skipping empty words
    /// wholesale and peeling set bits with trailing-zero counts.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors(
                (word != 0).then_some(word),
                |&w| {
                    let next = w & (w - 1); // clear lowest set bit
                    (next != 0).then_some(next)
                },
            )
            .map(move |w| wi * 64 + w.trailing_zeros() as usize)
        })
    }

    /// The backing words, low element first (tail bits zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words, for bulk overwrites (the
    /// parallel plan executor splits this slice into disjoint per-chunk
    /// ranges and fills each with [`fill_words_from_fn`]).
    ///
    /// The caller must uphold the tail invariant: unused high bits of
    /// the last word stay zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Fills `words` with the bits of elements `range.start..range.end`,
/// exactly as that span of a [`Bitset::from_fn`] result would look:
/// `f` is invoked once per element in increasing order, each word is
/// accumulated in a register and stored once, and a trailing partial
/// word gets zero tail bits.
///
/// This is the chunk primitive of parallel fills: split a bitset's
/// [`Bitset::words_mut`] at element boundaries that are multiples of
/// 64 (so chunks own disjoint words), hand each chunk its own closure
/// (re-deriving any sequential state, e.g. a CSR cursor, from
/// `range.start`), and fill the chunks concurrently — the result is
/// bit-identical to one sequential [`Bitset::assign_from_fn`] pass.
///
/// # Panics
///
/// Panics (in debug builds) if `range.start` is not a multiple of 64
/// or `words` is not exactly the chunk's word count.
pub fn fill_words_from_fn(words: &mut [u64], range: std::ops::Range<usize>, mut f: impl FnMut(usize) -> bool) {
    debug_assert_eq!(range.start % 64, 0, "chunk starts must be word-aligned");
    debug_assert_eq!(
        words.len(),
        (range.end - range.start).div_ceil(64),
        "chunk word count must match its element range"
    );
    let mut i = range.start;
    let mut wi = 0;
    while i < range.end {
        let end = (i + 64).min(range.end);
        let mut word = 0u64;
        for bit in 0..end - i {
            word |= (f(i + bit) as u64) << bit;
        }
        words[wi] = word;
        wi += 1;
        i = end;
    }
}

/// A dense 0/1 matrix stored as packed bit rows in one flat word array.
///
/// Row `r` occupies `row_words()` consecutive `u64`s; unused tail bits
/// of each row are zero (the same invariant as [`Bitset`], so a row is
/// directly OR-able into a `Bitset` over universe `0..cols` via
/// [`Bitset::or_words`]). This is the storage behind the Kripke models'
/// reverse-adjacency (predecessor) rows.
///
/// # Examples
///
/// ```
/// use portnum_graph::bitset::{BitMatrix, Bitset};
///
/// let mut m = BitMatrix::zeros(3, 100);
/// m.insert(1, 99);
/// assert!(m.get(1, 99));
/// let mut acc = Bitset::zeros(100);
/// acc.or_words(m.row(1));
/// assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![99]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    row_words: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// The all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> BitMatrix {
        let row_words = word_count(cols);
        BitMatrix { rows, cols, row_words, words: vec![0; rows * row_words] }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of columns (the universe of each row).
    pub fn col_count(&self) -> usize {
        self.cols
    }

    /// Words per row (shared by every [`Bitset`] over `0..cols`).
    pub fn row_words(&self) -> usize {
        self.row_words
    }

    /// Total backing words — the matrix's memory footprint in `u64`s.
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= row_count()` or `c >= col_count()`.
    #[inline]
    pub fn insert(&mut self, r: usize, c: usize) {
        assert!(r < self.rows && c < self.cols, "BitMatrix entry ({r}, {c}) out of range");
        self.words[r * self.row_words + c / 64] |= 1 << (c % 64);
    }

    /// Sets or clears entry `(r, c)` — the delta-repair counterpart of
    /// [`BitMatrix::insert`]: patching a cached predecessor matrix
    /// after an edge removal needs to *clear* a stale bit, not only set
    /// new ones.
    ///
    /// # Panics
    ///
    /// Panics if `r >= row_count()` or `c >= col_count()`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.rows && c < self.cols, "BitMatrix entry ({r}, {c}) out of range");
        let word = &mut self.words[r * self.row_words + c / 64];
        if value {
            *word |= 1 << (c % 64);
        } else {
            *word &= !(1 << (c % 64));
        }
    }

    /// Tests entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= row_count()` or `c >= col_count()`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "BitMatrix entry ({r}, {c}) out of range");
        self.words[r * self.row_words + c / 64] >> (c % 64) & 1 == 1
    }

    /// Row `r` as a word slice (tail bits zero).
    ///
    /// # Panics
    ///
    /// Panics if `r >= row_count()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.row_words..(r + 1) * self.row_words]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_bits_stay_zero() {
        for len in [0usize, 1, 63, 64, 65, 100, 127, 128, 129] {
            let full = Bitset::ones(len);
            assert_eq!(full.count_ones(), len, "ones({len})");
            let empty = Bitset::zeros(len);
            assert_eq!(empty.not(), full, "not(zeros({len}))");
            assert_eq!(full.not(), empty, "not(ones({len}))");
            // Double complement is the identity only because the tail is
            // re-masked each time.
            assert_eq!(full.not().not(), full);
        }
    }

    #[test]
    fn for_each_difference_yields_exactly_the_xor_in_order() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let a = Bitset::from_fn(len, |i| i % 3 == 0);
            let b = Bitset::from_fn(len, |i| i % 5 == 0);
            let mut seen = Vec::new();
            a.for_each_difference(&b, |i| seen.push(i));
            let expected: Vec<usize> =
                (0..len).filter(|i| (i % 3 == 0) != (i % 5 == 0)).collect();
            assert_eq!(seen, expected, "len {len}");
            // Identical sets disagree nowhere, whatever the tail shape.
            a.for_each_difference(&a.clone(), |i| panic!("spurious difference at {i}"));
        }
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn for_each_difference_rejects_mismatched_universes() {
        Bitset::zeros(64).for_each_difference(&Bitset::zeros(65), |_| {});
    }

    #[test]
    fn roundtrips_bools() {
        let bools: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let set = Bitset::from_bools(&bools);
        assert_eq!(set.to_bools(), bools);
        assert_eq!(set.count_ones(), bools.iter().filter(|&&b| b).count());
        for (i, &b) in bools.iter().enumerate() {
            assert_eq!(set.get(i), b);
        }
    }

    #[test]
    fn bitmatrix_set_clears_and_sets() {
        let mut m = BitMatrix::zeros(2, 70);
        m.insert(1, 69);
        m.set(1, 69, false);
        assert!(!m.get(1, 69));
        m.set(1, 3, true);
        assert!(m.get(1, 3));
        // Setting an already-set bit and clearing a clear bit are no-ops.
        m.set(1, 3, true);
        m.set(0, 0, false);
        assert!(m.get(1, 3) && !m.get(0, 0));
    }

    #[test]
    fn connectives_match_boolean_semantics() {
        let n = 131;
        let a = Bitset::from_fn(n, |i| i % 2 == 0);
        let b = Bitset::from_fn(n, |i| i % 3 == 0);
        assert_eq!(a.and(&b), Bitset::from_fn(n, |i| i % 6 == 0));
        assert_eq!(a.or(&b), Bitset::from_fn(n, |i| i % 2 == 0 || i % 3 == 0));
        assert_eq!(a.not(), Bitset::from_fn(n, |i| i % 2 == 1));
    }

    #[test]
    fn iter_ones_in_order() {
        let mut set = Bitset::zeros(200);
        let members = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &members {
            set.insert(i);
        }
        assert_eq!(set.iter_ones().collect::<Vec<_>>(), members);
        assert!(Bitset::zeros(77).iter_ones().next().is_none());
    }

    #[test]
    fn set_and_insert_agree() {
        let mut a = Bitset::zeros(66);
        let mut b = Bitset::zeros(66);
        a.insert(65);
        b.set(65, true);
        assert_eq!(a, b);
        b.set(65, false);
        assert!(b.none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_len_panics() {
        let _ = Bitset::zeros(64).get(64);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_panic() {
        let mut a = Bitset::zeros(10);
        a.and_assign(&Bitset::zeros(11));
    }

    #[test]
    fn assign_variants_match_constructors() {
        let mut s = Bitset::from_fn(130, |i| i % 5 == 0);
        s.assign_zeros(70);
        assert_eq!(s, Bitset::zeros(70));
        s.assign_ones(99);
        assert_eq!(s, Bitset::ones(99));
        s.assign_from_fn(131, |i| i % 3 == 1);
        assert_eq!(s, Bitset::from_fn(131, |i| i % 3 == 1));
        let other = Bitset::from_fn(64, |i| i % 2 == 0);
        s.copy_from(&other);
        assert_eq!(s, other);
    }

    #[test]
    fn or_words_unions_rows() {
        let mut acc = Bitset::from_fn(130, |i| i == 0);
        let row = Bitset::from_fn(130, |i| i == 129);
        acc.or_words(row.words());
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    fn or_words_restricts_to_the_universe() {
        // A row from a *wider* universe with the same word count: bits
        // beyond `len` are discarded and the tail invariant holds.
        let mut acc = Bitset::zeros(70); // 2 words
        let mut m = BitMatrix::zeros(1, 128); // also 2 words per row
        m.insert(0, 3);
        m.insert(0, 100);
        acc.or_words(m.row(0));
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(acc.count_ones(), 1);
        assert_eq!(acc, Bitset::from_fn(70, |i| i == 3));
    }

    #[test]
    fn bitmatrix_rows_respect_tail_invariant() {
        let mut m = BitMatrix::zeros(4, 70);
        assert_eq!(m.row_words(), 2);
        assert_eq!(m.word_len(), 8);
        m.insert(0, 0);
        m.insert(0, 69);
        m.insert(3, 64);
        assert!(m.get(0, 69) && m.get(3, 64) && !m.get(1, 0));
        // A row ORs into a same-universe Bitset and stays canonical.
        let mut acc = Bitset::zeros(70);
        acc.or_words(m.row(0));
        acc.or_words(m.row(3));
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![0, 64, 69]);
        assert_eq!(acc.count_ones(), 3);
        // Untouched rows are all-zero.
        assert!(m.row(2).iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmatrix_bounds_checked() {
        let mut m = BitMatrix::zeros(2, 10);
        m.insert(2, 0);
    }

    #[test]
    fn chunked_fill_matches_sequential_from_fn() {
        // Splitting the universe at 64-aligned boundaries and filling
        // each chunk independently must reproduce from_fn bit for bit,
        // including partial tail words.
        let pred = |i: usize| i.is_multiple_of(7) || i % 3 == 1;
        for len in [1usize, 63, 64, 65, 130, 192, 200] {
            let reference = Bitset::from_fn(len, pred);
            for split in [64usize, 128] {
                if split >= len {
                    continue;
                }
                let mut out = Bitset::zeros(len);
                let words = out.words_mut();
                let (head, tail) = words.split_at_mut(split / 64);
                fill_words_from_fn(head, 0..split, pred);
                fill_words_from_fn(tail, split..len, pred);
                assert_eq!(out, reference, "len {len}, split {split}");
                assert_eq!(out.count_ones(), reference.count_ones());
            }
        }
    }

    #[test]
    fn chunked_fill_supports_per_chunk_cursors() {
        // Each chunk re-derives sequential state from range.start —
        // the pattern the parallel forward-diamond path uses.
        let len = 150;
        let reference = Bitset::from_fn(len, |i| i % 2 == 0);
        let mut out = Bitset::zeros(len);
        let words = out.words_mut();
        let (head, tail) = words.split_at_mut(1);
        let mut cursor = 0usize; // chunk-local state
        fill_words_from_fn(head, 0..64, |i| {
            assert_eq!(i, cursor, "strictly increasing, no skips");
            cursor += 1;
            i % 2 == 0
        });
        let mut cursor = 64usize;
        fill_words_from_fn(tail, 64..len, |i| {
            assert_eq!(i, cursor);
            cursor += 1;
            i % 2 == 0
        });
        assert_eq!(out, reference);
    }
}
