//! Cache blocking shared by the sweep-shaped hot loops.
//!
//! At 10⁶–10⁷ worlds a diamond sweep's working set (CSR row bounds,
//! source and destination [`crate::bitset::Bitset`] words) is tens of
//! megabytes — far past L2 — so an unblocked sweep streams everything
//! through DRAM once per sweep. The million-world model families are
//! locality-friendly by construction (paths, caterpillars, circulants,
//! sparse G(n,p) with mostly-local edges after CSR layout), so tiling
//! the sweep over fixed *world blocks* keeps a block's bitset words
//! and row bounds resident in L2 while its rows are walked, and lets
//! the walker prefetch the next block's row bounds while the current
//! one computes.
//!
//! One module owns the block geometry so the two consumers — the plan
//! executor's diamond sweeps/gathers (`portnum-logic`'s `plan`) and
//! the worklist refiner's frontier encode ([`crate::partition`]) —
//! cannot drift apart on tuning. Blocking is a *traversal order and
//! hint* layer only: every consumer produces bit-identical output with
//! blocking on or off, which is what lets the differential proptest
//! matrix keep pinning blocked parallel paths against the sequential
//! references.

/// Bytes of per-core L2 cache the block geometry assumes. Conservative
/// (most contemporary x86/ARM cores have 512 KiB–2 MiB): undersizing
/// blocks costs a few extra loop trips, oversizing evicts the block's
/// own words mid-sweep.
pub const L2_BYTES: usize = 256 * 1024;

/// Worlds per cache block for sweep-shaped loops.
///
/// Sized so one block's dominant streams fit in half of [`L2_BYTES`]
/// (the other half is left to the irregular row-target reads): CSR row
/// bounds at 8 bytes per world dominate, so `L2/2 / 8` = 16 Ki worlds.
/// A multiple of 64, so block boundaries are always [`crate::bitset`]
/// word boundaries and blocked writers can hand out whole words.
pub const BLOCK_WORLDS: usize = 1 << 14;

/// [`BLOCK_WORLDS`] expressed in 64-bit bitset words — the alignment
/// unit parallel word-range splitters use so chunk boundaries coincide
/// with cache-block boundaries.
pub const BLOCK_WORDS: usize = BLOCK_WORLDS / 64;

/// How many worlds ahead a sweep prefetches row bounds. Row bounds are
/// read sequentially, so a short fixed distance is enough to cover the
/// L2 miss latency without thrashing the prefetch queues.
pub const PREFETCH_AHEAD: usize = 16;

/// Iterator over the cache blocks of `0..n`: contiguous ranges of
/// [`BLOCK_WORLDS`] worlds (the last one ragged). Every boundary is a
/// multiple of 64.
pub fn blocks(n: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    (0..n).step_by(BLOCK_WORLDS).map(move |start| start..(start + BLOCK_WORLDS).min(n))
}

/// Best-effort read prefetch of `slice[index]` into the nearest cache
/// levels. Out-of-bounds indices are ignored (callers prefetch a fixed
/// distance ahead and run off the end on the last block), and on
/// targets without a prefetch intrinsic this is a no-op — it is purely
/// a latency hint and never changes observable behaviour.
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], index: usize) {
    if index >= slice.len() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        #[allow(unsafe_code)]
        // SAFETY: `_mm_prefetch` is an architectural hint with no
        // observable effect besides cache state; the pointer is
        // in-bounds (checked above) and merely hinted, never
        // dereferenced.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                slice.as_ptr().add(index).cast::<i8>(),
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = slice;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_geometry_is_word_aligned() {
        assert_eq!(BLOCK_WORLDS % 64, 0);
        assert_eq!(BLOCK_WORDS * 64, BLOCK_WORLDS);
        // The dominant stream (8-byte row bounds per world) fits half L2.
        const { assert!(BLOCK_WORLDS * 8 <= L2_BYTES / 2 + L2_BYTES % 2) }
    }

    #[test]
    fn blocks_cover_exactly_once_in_order() {
        for n in [0usize, 1, 63, 64, BLOCK_WORLDS - 1, BLOCK_WORLDS, BLOCK_WORLDS + 1, 3 * BLOCK_WORLDS + 7] {
            let ranges: Vec<_> = blocks(n).collect();
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "n = {n}");
                assert!(r.start % 64 == 0, "n = {n}");
                assert!(!r.is_empty(), "n = {n}");
                next = r.end;
            }
            assert_eq!(next, n, "n = {n}");
        }
    }

    #[test]
    fn prefetch_is_a_safe_noop_semantically() {
        let data = [1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 3); // out of bounds: ignored
        prefetch_read(&data, usize::MAX);
        assert_eq!(data, [1, 2, 3]);
    }
}
