//! Covering constructions, primarily the bipartite double cover used in the
//! proof of Lemma 15.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::matching::Bipartite;

/// The bipartite double cover `G*` of `G` as an explicit bipartite graph:
/// left worlds are `V × {1}`, right worlds are `V × {2}`, and every edge
/// `{u, v}` of `G` induces `{(u,1),(v,2)}` and `{(v,1),(u,2)}` in `G*`.
///
/// If `G` is `k`-regular, so is `G*`, which is the precondition for its
/// 1-factorization (Hall's marriage theorem / König's theorem).
///
/// # Examples
///
/// ```
/// use portnum_graph::{cover, generators};
///
/// let g = generators::cycle(5);
/// let cover = cover::bipartite_double_cover(&g);
/// assert_eq!(cover.left_len(), 5);
/// assert_eq!(cover.edge_count(), 10);
/// ```
pub fn bipartite_double_cover(g: &Graph) -> Bipartite {
    let mut cover = Bipartite::new(g.len(), g.len());
    for (u, v) in g.edges() {
        cover.add_edge(u, v);
        cover.add_edge(v, u);
    }
    cover
}

/// The bipartite double cover as an ordinary [`Graph`] on `2n` nodes:
/// node `v` maps to `(v, 1) = v` and `(v, 2) = v + n`.
pub fn double_cover_graph(g: &Graph) -> Graph {
    let n = g.len();
    let mut b = GraphBuilder::new(2 * n);
    for (u, v) in g.edges() {
        b.edge(u, v + n).expect("cover edges are simple");
        b.edge(v, u + n).expect("cover edges are simple");
    }
    b.build()
}

/// Lifts a node of the double cover graph back to `(original, sheet)`.
pub fn cover_projection(n: usize, cover_node: NodeId) -> (NodeId, u8) {
    if cover_node < n {
        (cover_node, 0)
    } else {
        (cover_node - n, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::properties;

    #[test]
    fn double_cover_is_bipartite_and_regular() {
        let g = generators::petersen();
        let c = double_cover_graph(&g);
        assert_eq!(c.len(), 20);
        assert_eq!(c.edge_count(), 2 * g.edge_count());
        assert_eq!(properties::regularity(&c), Some(3));
        assert!(properties::bipartition(&c).is_some());
    }

    #[test]
    fn double_cover_of_bipartite_graph_is_disconnected() {
        // The double cover of a connected bipartite graph is two disjoint
        // copies of it.
        let g = generators::cycle(4);
        let c = double_cover_graph(&g);
        assert_eq!(properties::component_count(&c), 2);
    }

    #[test]
    fn double_cover_of_odd_cycle_is_big_cycle() {
        let g = generators::cycle(5);
        let c = double_cover_graph(&g);
        assert_eq!(properties::component_count(&c), 1);
        assert_eq!(properties::regularity(&c), Some(2));
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn projection_round_trip() {
        assert_eq!(cover_projection(5, 3), (3, 0));
        assert_eq!(cover_projection(5, 8), (3, 1));
    }
}
