//! CSC (reverse CSR) adjacency: per-node *predecessor* lists as two
//! flat arrays.
//!
//! A forward CSR relation answers "successors of `v`" in O(row); many
//! hot paths instead need "predecessors of `w`" — the worklist
//! refinement engine propagates dirty frontiers backwards, and the
//! model checker's reverse diamond path computes `⟨α⟩φ` by gathering
//! the predecessors of every world satisfying `φ`. [`CscAdjacency`] is
//! that inverse in the same two-flat-arrays shape as the forward CSR:
//! `O(n + edges)` memory at **any** scale, where the dense
//! [`BitMatrix`](crate::bitset::BitMatrix) predecessor rows cost
//! `n²` bits and stop paying for themselves on large sparse models.
//!
//! # Construction invariant
//!
//! [`CscAdjacency::from_relations`] buckets every stored edge by
//! target with two counting-sort passes (relation-major, then source
//! ascending), so each predecessor row comes out **sorted ascending by
//! source within each relation** and an edge stored `k` times
//! contributes `k` entries — multiplicities survive inversion, which
//! is what lets graded (counting) consumers use the rows directly.

use crate::partition::RelationCsr;

/// Reverse (CSC) adjacency over `n` nodes: predecessors of node `w`
/// are `preds()[bounds()[w]..bounds()[w + 1]]`, as `u32` node ids.
///
/// Built from one relation ([`CscAdjacency::from_csr`]) or the union
/// of several ([`CscAdjacency::from_relations`], the shape the
/// worklist refinement engine's dirty propagation wants — it only asks
/// "who can see `w`", not under which relation).
///
/// # Examples
///
/// ```
/// use portnum_graph::csc::CscAdjacency;
///
/// // Two nodes: 0 → 1, 1 → 0, 1 → 1.
/// let offsets = [0usize, 1, 3];
/// let targets = [1u32, 0, 1];
/// let csc = CscAdjacency::from_csr(2, &offsets, &targets);
/// assert_eq!(csc.row(0), &[1]);
/// assert_eq!(csc.row(1), &[0, 1]);
/// assert_eq!(csc.entry_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CscAdjacency {
    /// Row bounds, length `n + 1`.
    bounds: Vec<usize>,
    /// Concatenated predecessor ids.
    preds: Vec<u32>,
}

impl CscAdjacency {
    /// Inverts the union of `relations` over `n` nodes: node `w`'s row
    /// collects every `v` with `w ∈ successors(v)` under *any* of the
    /// relations, one entry per stored edge (multiplicities preserved),
    /// ordered relation-major then source-ascending.
    ///
    /// Two linear passes, two allocations — `O(n + edges)`.
    ///
    /// # Panics
    ///
    /// Panics if a relation's `offsets` does not have `n + 1` entries
    /// or stores a target `≥ n`.
    pub fn from_relations(n: usize, relations: &[RelationCsr<'_>]) -> CscAdjacency {
        // Chaos site: the CSC stores live in `OnceLock`s, and a panic
        // injected here must leave the lock uninitialised (not torn),
        // so the next query rebuilds from scratch.
        fail::fail_point!("csc-build");
        let mut bounds = vec![0usize; n + 1];
        for rel in relations {
            assert_eq!(rel.offsets.len(), n + 1, "CSR offsets must have n + 1 entries");
            for &w in rel.targets {
                bounds[w as usize + 1] += 1;
            }
        }
        for v in 0..n {
            bounds[v + 1] += bounds[v];
        }
        let mut preds = vec![0u32; bounds[n]];
        let mut cursor = bounds.clone();
        for rel in relations {
            let mut row_start = rel.offsets[0];
            for v in 0..n {
                let row_end = rel.offsets[v + 1];
                for &w in &rel.targets[row_start..row_end] {
                    preds[cursor[w as usize]] = v as u32;
                    cursor[w as usize] += 1;
                }
                row_start = row_end;
            }
        }
        CscAdjacency { bounds, preds }
    }

    /// Inverts a single relation given as raw CSR arrays (successors of
    /// `v` are `targets[offsets[v]..offsets[v + 1]]`).
    ///
    /// # Panics
    ///
    /// As [`CscAdjacency::from_relations`].
    pub fn from_csr(n: usize, offsets: &[usize], targets: &[u32]) -> CscAdjacency {
        CscAdjacency::from_relations(n, &[RelationCsr { offsets, targets }])
    }

    /// Patches a **single-relation** store in place after a batch of
    /// forward-edge edits, instead of re-inverting the whole relation:
    /// `added` / `removed` are `(source, target)` pairs. Touched
    /// predecessor rows are recomputed and kept sorted ascending by
    /// source (the [`CscAdjacency::from_csr`] invariant, multiplicities
    /// preserved), so the patched store is `Eq`-identical to a fresh
    /// inversion of the patched forward CSR. When every touched row
    /// keeps its length the entries are overwritten in place; otherwise
    /// the entry array is spliced once, copying untouched row spans
    /// wholesale. Returns `true` when the patch was in place.
    ///
    /// Not valid for multi-relation union stores
    /// ([`CscAdjacency::from_relations`]): their rows are relation-major
    /// and a flat edit batch cannot say which relation's span to touch.
    ///
    /// # Panics
    ///
    /// Panics if an edit names a node `>= node_count()`, or if a removed
    /// edge has no stored entry (callers validate the batch against the
    /// forward CSR before patching the inverse).
    pub fn apply_edits(&mut self, added: &[(u32, u32)], removed: &[(u32, u32)]) -> bool {
        let n = self.node_count();
        for &(v, w) in added.iter().chain(removed) {
            assert!((v as usize) < n && (w as usize) < n, "CSC edit ({v}, {w}) out of range");
        }
        if added.is_empty() && removed.is_empty() {
            return true;
        }
        // Flat `(target, source)` edit lists, fully sorted — the store's
        // rows are sorted ascending by source, so each touched row's
        // removals consume by a linear two-pointer walk and its adds
        // merge in linearly. One allocation per list instead of a map
        // of per-row `Vec`s: batch apply is on the serving hot path and
        // the per-row allocations dominate the splice otherwise.
        let mut add_sorted: Vec<(u32, u32)> = added.iter().map(|&(v, w)| (w, v)).collect();
        add_sorted.sort_unstable();
        let mut rm_sorted: Vec<(u32, u32)> = removed.iter().map(|&(v, w)| (w, v)).collect();
        rm_sorted.sort_unstable();
        // Touched rows ascending, each with its edit sub-ranges.
        let mut rows: Vec<(u32, core::ops::Range<usize>, core::ops::Range<usize>)> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < add_sorted.len() || j < rm_sorted.len() {
            let row = match (add_sorted.get(i), rm_sorted.get(j)) {
                (Some(&(a, _)), Some(&(r, _))) => a.min(r),
                (Some(&(a, _)), None) => a,
                (None, Some(&(r, _))) => r,
                (None, None) => unreachable!("loop condition"),
            };
            let (ai, ri) = (i, j);
            while i < add_sorted.len() && add_sorted[i].0 == row {
                i += 1;
            }
            while j < rm_sorted.len() && rm_sorted[j].0 == row {
                j += 1;
            }
            rows.push((row, ai..i, ri..j));
        }
        // Reused scratch: the patched row = merge(old minus removals,
        // adds), all three sorted, so one linear three-way walk.
        let mut out: Vec<u32> = Vec::new();
        let patch_row = |out: &mut Vec<u32>,
                         old: &[u32],
                         row_adds: &[(u32, u32)],
                         row_rms: &[(u32, u32)],
                         w: u32| {
            out.clear();
            let (mut r, mut a) = (0usize, 0usize);
            for &p in old {
                if r < row_rms.len() && row_rms[r].1 < p {
                    panic!("removed edge ({}, {w}) has no stored CSC entry", row_rms[r].1);
                }
                if r < row_rms.len() && row_rms[r].1 == p {
                    r += 1;
                    continue;
                }
                while a < row_adds.len() && row_adds[a].1 <= p {
                    out.push(row_adds[a].1);
                    a += 1;
                }
                out.push(p);
            }
            if r < row_rms.len() {
                panic!("removed edge ({}, {w}) has no stored CSC entry", row_rms[r].1);
            }
            out.extend(row_adds[a..].iter().map(|&(_, v)| v));
        };
        let in_place = rows.iter().all(|(_, a, rm)| a.len() == rm.len());
        if in_place {
            for &(w, ref ar, ref rr) in &rows {
                let (start, end) = (self.bounds[w as usize], self.bounds[w as usize + 1]);
                let old = &self.preds[start..end];
                patch_row(&mut out, old, &add_sorted[ar.clone()], &rm_sorted[rr.clone()], w);
                self.preds[start..end].copy_from_slice(&out);
            }
            return true;
        }
        let grown = added.len().saturating_sub(removed.len());
        let mut bounds = Vec::with_capacity(n + 1);
        let mut preds = Vec::with_capacity(self.preds.len() + grown);
        bounds.push(0);
        let mut next = 0;
        let mut w = 0;
        while w < n {
            if next < rows.len() && rows[next].0 as usize == w {
                let (_, ref ar, ref rr) = rows[next];
                let old = &self.preds[self.bounds[w]..self.bounds[w + 1]];
                patch_row(&mut out, old, &add_sorted[ar.clone()], &rm_sorted[rr.clone()], w as u32);
                preds.extend_from_slice(&out);
                bounds.push(preds.len());
                next += 1;
                w += 1;
            } else {
                // Copy the whole untouched span up to the next touched
                // row in one shot; its bounds shift by a constant.
                let span_end = rows.get(next).map_or(n, |&(t, _, _)| t as usize);
                let shift = preds.len() as isize - self.bounds[w] as isize;
                preds.extend_from_slice(&self.preds[self.bounds[w]..self.bounds[span_end]]);
                for v in w..span_end {
                    bounds.push((self.bounds[v + 1] as isize + shift) as usize);
                }
                w = span_end;
            }
        }
        self.bounds = bounds;
        self.preds = preds;
        false
    }

    /// Number of nodes of the underlying universe.
    pub fn node_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total stored predecessor entries (= stored forward edges).
    pub fn entry_count(&self) -> usize {
        self.preds.len()
    }

    /// Predecessors of node `w`, one entry per stored forward edge.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.node_count()`.
    #[inline]
    pub fn row(&self, w: usize) -> &[u32] {
        &self.preds[self.bounds[w]..self.bounds[w + 1]]
    }

    /// Number of predecessors of node `w` — the unit of the model
    /// checker's CSC cost estimate, readable without touching the row.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.node_count()`.
    #[inline]
    pub fn row_len(&self, w: usize) -> usize {
        self.bounds[w + 1] - self.bounds[w]
    }

    /// Best-effort prefetch of node `w`'s row bounds and first
    /// predecessor entries. A pure latency hint with
    /// [`crate::blocking::prefetch_read`] semantics: out-of-range `w`
    /// is ignored and observable behaviour never changes. Gather loops
    /// that know which row they will visit next call this one
    /// iteration ahead to hide the pointer-chase (bounds, then
    /// entries) behind the current row's work.
    #[inline]
    pub fn prefetch_row(&self, w: usize) {
        crate::blocking::prefetch_read(&self.bounds, w);
        if let Some(&start) = self.bounds.get(w) {
            crate::blocking::prefetch_read(&self.preds, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSR of a relation from explicit rows.
    fn csr(rows: &[&[u32]]) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for row in rows {
            targets.extend_from_slice(row);
            offsets.push(targets.len());
        }
        (offsets, targets)
    }

    #[test]
    fn inverts_a_single_relation() {
        // 0 → {1, 2}, 1 → {2}, 2 → {}.
        let (offsets, targets) = csr(&[&[1, 2], &[2], &[]]);
        let csc = CscAdjacency::from_csr(3, &offsets, &targets);
        assert_eq!(csc.node_count(), 3);
        assert_eq!(csc.row(0), &[] as &[u32]);
        assert_eq!(csc.row(1), &[0]);
        assert_eq!(csc.row(2), &[0, 1]);
        assert_eq!(csc.entry_count(), 3);
        assert_eq!(csc.row_len(2), 2);
    }

    #[test]
    fn combines_relations_and_preserves_multiplicity() {
        // Relation A: 0 → 1; relation B: 0 → 1, 2 → 1. Node 1 sees the
        // duplicated edge twice (A's entry first, then B's, source
        // ascending within each).
        let (oa, ta) = csr(&[&[1], &[], &[]]);
        let (ob, tb) = csr(&[&[1], &[], &[1]]);
        let rels = [
            RelationCsr { offsets: &oa, targets: &ta },
            RelationCsr { offsets: &ob, targets: &tb },
        ];
        let csc = CscAdjacency::from_relations(3, &rels);
        assert_eq!(csc.row(1), &[0, 0, 2]);
        assert_eq!(csc.entry_count(), 3);
    }

    #[test]
    fn rows_sort_ascending_within_a_relation() {
        // Sources are visited in ascending order, so each row is sorted.
        let (offsets, targets) = csr(&[&[3], &[3], &[3], &[0, 1, 2, 3]]);
        let csc = CscAdjacency::from_csr(4, &offsets, &targets);
        assert_eq!(csc.row(3), &[0, 1, 2, 3]);
        for w in 0..3 {
            assert_eq!(csc.row(w), &[3]);
        }
    }

    #[test]
    fn apply_edits_in_place_when_row_lengths_hold() {
        // 0 → {1, 2}, 1 → {2}, 2 → {0}. Re-source the edge into node 1
        // from 0 to 2: its predecessor row keeps its length.
        let (offsets, targets) = csr(&[&[1, 2], &[2], &[0]]);
        let mut csc = CscAdjacency::from_csr(3, &offsets, &targets);
        assert!(csc.apply_edits(&[(2, 1)], &[(0, 1)]));
        let (po, pt) = csr(&[&[2], &[2], &[0, 1]]);
        assert_eq!(csc, CscAdjacency::from_csr(3, &po, &pt));
    }

    #[test]
    fn apply_edits_splices_and_matches_fresh_inversion() {
        // Grow node 1's predecessor row and shrink node 2's: the splice
        // path, pinned against re-inverting the patched CSR.
        let (offsets, targets) = csr(&[&[1, 2], &[2], &[], &[1]]);
        let mut csc = CscAdjacency::from_csr(4, &offsets, &targets);
        assert!(!csc.apply_edits(&[(2, 1), (2, 1)], &[(0, 2)]));
        let (po, pt) = csr(&[&[1], &[2], &[1, 1], &[1]]);
        assert_eq!(csc, CscAdjacency::from_csr(4, &po, &pt));
        // Rows stay sorted ascending with multiplicity.
        assert_eq!(csc.row(1), &[0, 2, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "no stored CSC entry")]
    fn apply_edits_rejects_missing_removals() {
        let (offsets, targets) = csr(&[&[1], &[]]);
        let mut csc = CscAdjacency::from_csr(2, &offsets, &targets);
        csc.apply_edits(&[], &[(1, 0)]);
    }

    #[test]
    fn degenerate_sizes() {
        let empty = CscAdjacency::from_relations(0, &[]);
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.entry_count(), 0);
        let lonely = CscAdjacency::from_csr(1, &[0, 0], &[]);
        assert_eq!(lonely.row(0), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "n + 1 entries")]
    fn malformed_offsets_panic() {
        let _ = CscAdjacency::from_csr(2, &[0, 0], &[]);
    }
}
