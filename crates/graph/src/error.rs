//! Error types for graph construction and port-numbering operations.

use std::error::Error;
use std::fmt;

/// Errors arising when constructing or validating a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The node with the self loop.
        node: usize,
    },
    /// The same undirected edge was given twice.
    DuplicateEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} is out of range for a graph on {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self loop at node {node} (graphs must be simple)")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge {{{u}, {v}}} (graphs must be simple)")
            }
        }
    }
}

impl Error for GraphError {}

/// Errors arising when constructing or validating a
/// [`PortNumbering`](crate::PortNumbering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortError {
    /// The port map was not a bijection on the ports of the graph.
    NotBijective,
    /// The port map connected two nodes that are not adjacent in the graph,
    /// or missed an adjacent pair (`A(p) != A(G)`).
    EdgeMismatch,
    /// A port index was outside `0..deg(v)`.
    PortOutOfRange {
        /// The node whose port was out of range.
        node: usize,
        /// The offending port index.
        index: usize,
        /// The degree of the node.
        degree: usize,
    },
    /// The requested construction needs a regular graph.
    NotRegular,
    /// The requested construction needs a nonempty graph.
    EmptyGraph,
}

impl fmt::Display for PortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortError::NotBijective => write!(f, "port map is not a bijection on ports"),
            PortError::EdgeMismatch => {
                write!(f, "port map does not realise the adjacency relation of the graph")
            }
            PortError::PortOutOfRange { node, index, degree } => write!(
                f,
                "port index {index} out of range at node {node} of degree {degree}"
            ),
            PortError::NotRegular => write!(f, "construction requires a regular graph"),
            PortError::EmptyGraph => write!(f, "construction requires a nonempty graph"),
        }
    }
}

impl Error for PortError {}

/// Errors arising from matching and factorization routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchingError {
    /// A perfect matching was required but does not exist.
    NoPerfectMatching,
    /// A factorization was requested on a graph that is not regular.
    NotRegular,
    /// Left and right sides of a bipartite graph have different sizes.
    UnbalancedBipartite,
}

impl fmt::Display for MatchingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MatchingError::NoPerfectMatching => write!(f, "no perfect matching exists"),
            MatchingError::NotRegular => write!(f, "graph is not regular"),
            MatchingError::UnbalancedBipartite => {
                write!(f, "bipartite graph has unbalanced sides")
            }
        }
    }
}

impl Error for MatchingError {}

/// Errors arising when constructing covering graphs (lifts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// A voltage assignment must have at least one sheet.
    NoSheets,
    /// The voltage assignment does not have one permutation per edge.
    WrongEdgeCount {
        /// Number of permutations given.
        given: usize,
        /// Number of edges of the base graph.
        expected: usize,
    },
    /// A voltage was not a permutation of the sheet set.
    NotAPermutation {
        /// The canonical index of the offending edge.
        edge: usize,
        /// The number of sheets.
        sheets: usize,
    },
    /// A projection image was not a node of the base graph.
    ProjectionOutOfRange {
        /// The offending image.
        node: usize,
        /// The number of base nodes.
        base_len: usize,
    },
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LiftError::NoSheets => write!(f, "voltage assignment needs at least one sheet"),
            LiftError::WrongEdgeCount { given, expected } => write!(
                f,
                "voltage assignment has {given} permutations but the graph has {expected} edges"
            ),
            LiftError::NotAPermutation { edge, sheets } => write!(
                f,
                "voltage on edge {edge} is not a permutation of {sheets} sheets"
            ),
            LiftError::ProjectionOutOfRange { node, base_len } => write!(
                f,
                "projection image {node} is out of range for a base graph on {base_len} nodes"
            ),
        }
    }
}

impl Error for LiftError {}
