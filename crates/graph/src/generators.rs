//! Graph generators: classic families, random models, and the witness
//! graphs used by the paper's separation proofs.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The path `P_n` on `n` nodes (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(v - 1, v).expect("path edges are simple");
    }
    b.build()
}

/// A caterpillar tree of depth ~`spine`: the path `0-1-…-(spine-1)`
/// with one extra leaf attached to every spine node (`2·spine` nodes,
/// diameter `spine + 1`).
///
/// The long-diameter, low-symmetry shape that makes partition
/// refinement take Θ(n) rounds while each round changes only O(1)
/// blocks — the worst case for full-round refinement and the best case
/// for the worklist engine (the `deep_tree` workload of
/// `BENCH_bisim.json`).
pub fn caterpillar(spine: usize) -> Graph {
    let mut b = GraphBuilder::new(2 * spine);
    for v in 1..spine {
        b.edge(v - 1, v).expect("spine edges are simple");
    }
    for v in 0..spine {
        b.edge(v, spine + v).expect("leaf edges are simple");
    }
    b.build()
}

/// The cycle `C_n` on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.edge(v, (v + 1) % n).expect("cycle edges are simple");
    }
    b.build()
}

/// The star `K_{1,k}`: node `0` is the centre, nodes `1..=k` are leaves.
pub fn star(k: usize) -> Graph {
    let mut b = GraphBuilder::new(k + 1);
    for v in 1..=k {
        b.edge(0, v).expect("star edges are simple");
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.edge(u, v).expect("complete graph edges are simple");
        }
    }
    b.build()
}

/// The circulant graph `C_n(offsets)`: node `v` is adjacent to
/// `v ± s (mod n)` for every offset `s`. Circulants are vertex-transitive
/// (hence regular), which makes them the natural stress family for
/// symmetric port numberings (Lemma 15): `circulant(n, &[1])` is the
/// cycle, `circulant(n, &[1, 2, …, ⌊n/2⌋])` the complete graph.
///
/// # Panics
///
/// Panics if an offset is `0`, exceeds `n / 2`, or is repeated (any of
/// which would create loops or multi-edges).
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::new();
    for &s in offsets {
        assert!(s > 0, "offset 0 would be a self loop");
        assert!(2 * s <= n, "offset {s} exceeds n/2 = {}", n / 2);
        assert!(seen.insert(s), "offset {s} repeated");
        for v in 0..n {
            let u = (v + s) % n;
            if !b.has_edge(v, u) {
                b.edge(v, u).expect("distinct offsets give simple edges");
            }
        }
    }
    b.build()
}

/// The wheel `W_k`: a `k`-cycle (nodes `1..=k`) plus a hub (node `0`)
/// adjacent to every rim node.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn wheel(k: usize) -> Graph {
    assert!(k >= 3, "a wheel needs a rim of at least 3 nodes");
    let mut b = GraphBuilder::new(k + 1);
    for v in 1..=k {
        b.edge(0, v).expect("spokes are simple");
        let next = if v == k { 1 } else { v + 1 };
        b.edge(v, next).expect("rim edges are simple");
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` with left side `0..a` and right
/// side `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.edge(u, v).expect("bipartite edges are simple");
        }
    }
    builder.build()
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.edge(idx(r, c), idx(r, c + 1)).expect("grid edges are simple");
            }
            if r + 1 < rows {
                b.edge(idx(r, c), idx(r + 1, c)).expect("grid edges are simple");
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.edge(v, u).expect("hypercube edges are simple");
            }
        }
    }
    b.build()
}

/// A complete binary tree with the given number of nodes (heap layout:
/// children of `v` are `2v + 1` and `2v + 2`).
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.edge(v, (v - 1) / 2).expect("tree edges are simple");
    }
    b.build()
}

/// The Petersen graph (3-regular, 10 nodes; it *does* have a 1-factor).
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for v in 0..5 {
        b.edge(v, (v + 1) % 5).expect("outer cycle");
        b.edge(v, v + 5).expect("spokes");
        b.edge(v + 5, (v + 2) % 5 + 5).expect("inner pentagram");
    }
    b.build()
}

/// The 4-node example graph of Figures 1–2 of the paper: one node of degree
/// 3 (node `0`), two of degree 2 (nodes `1`, `2`), one of degree 1 (node `3`).
pub fn figure1_graph() -> Graph {
    Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]).expect("figure 1 graph is simple")
}

/// The two-component witness for Theorem 13 (`SB ⊊ MB`).
///
/// Component 1 (nodes `0..7`): two degree-3 nodes `0` and `4` joined by a
/// degree-2 bridge node `3`, each carrying two pendant leaves. Node `0`
/// has **two** odd-degree neighbours (its leaves).
///
/// Component 2 (nodes `7..13`): two degree-3 nodes `7` and `9` joined by two
/// parallel degree-2 paths (through `11` and `12`), each carrying one
/// pendant leaf. Node `7` has **one** odd-degree neighbour (its leaf).
///
/// All degree-3 nodes are bisimilar in the Kripke model `K_{-,-}` (each sees
/// the *set* {leaf-class, bridge-class}), yet the odd-odd problem of
/// Theorem 13 forces node `0` to answer 0 and node `7` to answer 1, so the
/// problem is not in `SB`. A `Multiset ∩ Broadcast` algorithm distinguishes
/// them by counting. Returns the graph together with the pair of white
/// (bisimilar, differently-labelled) nodes `(0, 7)`.
pub fn theorem13_witness() -> (Graph, (NodeId, NodeId)) {
    let g = Graph::from_edges(
        13,
        &[
            // Component 1: v1 = 0 (leaves 1, 2), bridge b1 = 3, v1' = 4 (leaves 5, 6).
            (0, 1),
            (0, 2),
            (0, 3),
            (3, 4),
            (4, 5),
            (4, 6),
            // Component 2: v2 = 7 (leaf 8), v2' = 9 (leaf 10), bridges 11, 12.
            (7, 8),
            (7, 11),
            (7, 12),
            (9, 10),
            (9, 11),
            (9, 12),
        ],
    )
    .expect("theorem 13 witness is simple");
    (g, (0, 7))
}

/// A connected `k`-regular graph **without a 1-factor**, for odd `k ≥ 3`
/// (Figure 9a generalised; for `k = 3` this is the classic 16-vertex example
/// from Bondy–Murty, Fig. 5.10).
///
/// Construction: a centre node plus `k` copies of a gadget. The gadget is
/// `K_{k+2}` minus a near-perfect matching missing `w`, minus one more edge
/// `{w, x}`; this leaves every gadget node with degree `k` except `x` with
/// degree `k - 1`. The centre is joined to the `x`-node of every copy.
/// Removing the centre leaves `k` components of odd order `k + 2`, so by
/// Tutte's theorem there is no perfect matching.
///
/// # Panics
///
/// Panics if `k` is even or `k < 3`.
pub fn no_one_factor(k: usize) -> Graph {
    assert!(k >= 3 && k % 2 == 1, "construction needs odd k >= 3");
    let gadget_size = k + 2;
    let n = 1 + k * gadget_size;
    let centre = 0;
    let mut b = GraphBuilder::new(n);
    for copy in 0..k {
        let base = 1 + copy * gadget_size;
        let w = base;
        let x = base + 1;
        let excluded = |a: usize, c: usize| -> bool {
            let (a, c) = if a < c { (a, c) } else { (c, a) };
            // Near-perfect matching missing w: pairs (base+1, base+2),
            // (base+3, base+4), ..., (base+k, base+k+1).
            if a > base && (a - base) % 2 == 1 && c == a + 1 {
                return true;
            }
            // The extra edge {w, x}.
            a == w && c == x
        };
        for i in 0..gadget_size {
            for j in (i + 1)..gadget_size {
                if !excluded(base + i, base + j) {
                    b.edge(base + i, base + j).expect("gadget edges are simple");
                }
            }
        }
        b.edge(centre, x).expect("spoke to gadget");
    }
    b.build()
}

/// A uniformly random graph `G(n, p)` (Erdős–Rényi).
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.edge(u, v).expect("gnp edges are simple");
            }
        }
    }
    b.build()
}

/// A random `d`-regular simple graph on `n` nodes via the configuration
/// model with rejection (resampled until simple).
///
/// # Panics
///
/// Panics if `n * d` is odd, or `d >= n`, or no simple pairing is found in a
/// large number of attempts (astronomically unlikely for moderate `d`).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!(d < n, "degree must be less than n");
    'attempt: for _ in 0..10_000 {
        let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || b.has_edge(u, v) {
                continue 'attempt;
            }
            b.edge(u, v).expect("checked above");
        }
        return b.build();
    }
    panic!("failed to sample a simple {d}-regular graph on {n} nodes");
}

/// A random tree on `n` nodes (uniform Prüfer sequence for `n ≥ 2`).
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("single edge");
    }
    let prufer: Vec<NodeId> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut b = GraphBuilder::new(n);
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree always has a leaf");
        b.edge(leaf, v).expect("prufer edges are simple");
        degree[v] -= 1;
        if degree[v] == 1 {
            leaves.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(c) = leaves.pop().expect("two leaves remain");
    b.edge(a, c).expect("prufer edges are simple");
    b.build()
}

// ---------------------------------------------------------------------
// Streaming edge families
//
// The Graph constructors above materialise a Vec<Vec<NodeId>> adjacency
// — fine up to ~10⁵ nodes, hopeless at the 10⁶–10⁷-world frontier
// (pointer-chasing layout, per-row allocations, and `gnp`'s O(n²)
// Bernoulli loop). The `*_edges` functions below are their streaming
// counterparts: cheap, deterministic, restartable iterators over the
// symmetric `(source, target)` pair sequence, consumed twice by a
// counting-pass + placement-pass CSR builder (`portnum-logic`'s
// `KripkeBuilder`) so a million-world model is built without any
// intermediate edge storage. Each undirected edge {v, w} is emitted in
// both directions; within one source, pair order is deterministic.
// ---------------------------------------------------------------------

/// Streaming symmetric edge pairs of the path `P_n` — each world `v`
/// emits its neighbours `v − 1` (if any) then `v + 1` (if any).
pub fn path_edges(n: usize) -> impl Iterator<Item = (u32, u32)> + Clone {
    (0..n as u32).flat_map(move |v| {
        let left = (v > 0).then(|| (v, v - 1));
        let right = (v + 1 < n as u32).then_some((v, v + 1));
        left.into_iter().chain(right)
    })
}

/// Streaming symmetric edge pairs of the caterpillar on `2·spine`
/// worlds (same shape as [`caterpillar`]): spine path `0‥spine`, one
/// leaf `spine + v` per spine world `v`. Each world emits spine
/// neighbours first, then its leaf/anchor edge.
pub fn caterpillar_edges(spine: usize) -> impl Iterator<Item = (u32, u32)> + Clone {
    let s = spine as u32;
    let spine_part = (0..s).flat_map(move |v| {
        let left = (v > 0).then(|| (v, v - 1));
        let right = (v + 1 < s).then_some((v, v + 1));
        let leaf = Some((v, s + v));
        left.into_iter().chain(right).chain(leaf)
    });
    let leaves = (0..s).map(move |v| (s + v, v));
    spine_part.chain(leaves)
}

/// Streaming symmetric edge pairs of the circulant graph
/// `C_n(offsets)` (same family as [`circulant`], the bounded-degree
/// regular workhorse): world `v` is adjacent to `v ± o (mod n)` for
/// every offset. Offsets obey [`circulant`]'s rules — nonzero, at most
/// `n/2`, distinct — and are validated eagerly with the same panics.
///
/// # Panics
///
/// As [`circulant`]: a zero offset, an offset above `n/2`, or a
/// repeated offset.
pub fn circulant_edges(n: usize, offsets: &[usize]) -> impl Iterator<Item = (u32, u32)> + Clone {
    assert!(n >= 3, "a circulant needs at least 3 nodes");
    let mut seen = std::collections::HashSet::new();
    for &o in offsets {
        assert!(o >= 1, "circulant offsets must be nonzero");
        assert!(2 * o <= n, "circulant offset {o} exceeds n/2 = {}", n / 2);
        assert!(seen.insert(o), "repeated circulant offset {o}");
    }
    let n32 = n as u32;
    let offsets: std::sync::Arc<[u32]> = offsets.iter().map(|&o| o as u32).collect();
    (0..n32).flat_map(move |v| {
        let offsets = std::sync::Arc::clone(&offsets);
        (0..offsets.len()).flat_map(move |i| {
            let o = offsets[i];
            let fwd = (v + o) % n32;
            // The antipodal offset 2o == n collapses v+o and v−o into
            // one neighbour; emit it once to keep the graph simple.
            let back = (n32 + v - o) % n32;
            let second = (back != fwd).then_some((v, back));
            std::iter::once((v, fwd)).chain(second)
        })
    })
}

/// Streaming symmetric edge pairs of a seeded sparse `G(n, p)`: the
/// undirected pairs `{v, w}`, `v < w`, are sampled in lexicographic
/// order with geometric skips (`O(edges)` work, not [`gnp`]'s `O(n²)`
/// coin flips), and each kept pair is emitted in both directions —
/// `(v, w)` immediately followed by `(w, v)`. Deterministic in
/// `(n, p, seed)` and restartable, so the two-pass CSR builder can
/// replay it; row contents come out source-grouped by the builder
/// regardless of emission order.
///
/// # Panics
///
/// Panics unless `0 ≤ p < 1` (use [`complete`] for `p = 1`; the skip
/// recurrence needs `ln(1 − p)`).
pub fn gnp_edges(n: usize, p: f64, seed: u64) -> GnpEdges {
    assert!((0.0..1.0).contains(&p), "gnp_edges needs 0 <= p < 1, got {p}");
    GnpEdges {
        n: n as u64,
        p,
        state: seed,
        idx: 0,
        started: false,
        row: 0,
        row_start: 0,
        pending: None,
    }
}

/// Iterator state of [`gnp_edges`]: a splitmix64 stream drives
/// geometric skip lengths over a linear cursor into the
/// lexicographically ordered pairs, decoded to `(v, w)` incrementally
/// (each row boundary is crossed at most once over the whole
/// iteration, so decoding is `O(n + edges)` total).
#[derive(Debug, Clone)]
pub struct GnpEdges {
    n: u64,
    p: f64,
    state: u64,
    /// Linear index of the current kept pair among the `n(n−1)/2`
    /// pairs `{v, w}, v < w` in lexicographic order.
    idx: u64,
    started: bool,
    /// Decoding state: `row_start` is the linear index of the first
    /// pair of row `row` (i.e. of `{row, row + 1}`).
    row: u64,
    row_start: u64,
    pending: Option<(u32, u32)>,
}

impl GnpEdges {
    /// The next splitmix64 output, mapped to a uniform in `(0, 1]`
    /// (never 0, so its `ln` is finite).
    fn uniform(&mut self) -> f64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
    }
}

impl Iterator for GnpEdges {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if let Some(back) = self.pending.take() {
            return Some(back);
        }
        if self.p <= 0.0 || self.n < 2 {
            return None;
        }
        // Geometric skip to the next kept pair; saturating arithmetic
        // because a tiny p can produce skips beyond any pair count.
        let denom = (1.0 - self.p).ln();
        let u = self.uniform();
        let skip = (u.ln() / denom).floor();
        let skip = if skip >= u64::MAX as f64 { u64::MAX } else { skip as u64 };
        if self.started {
            self.idx = self.idx.saturating_add(skip).saturating_add(1);
        } else {
            self.idx = skip;
            self.started = true;
        }
        let total = self.n * (self.n - 1) / 2;
        if self.idx >= total {
            return None;
        }
        // Decode the linear index: rows shrink by one pair each, and
        // the cursor only moves forward, so walk row boundaries.
        while self.idx >= self.row_start + (self.n - 1 - self.row) {
            self.row_start += self.n - 1 - self.row;
            self.row += 1;
        }
        let v = self.row as u32;
        let w = (self.row + 1 + (self.idx - self.row_start)) as u32;
        self.pending = Some((w, v));
        Some((v, w))
    }
}

/// `k` distinct node ids sampled uniformly from `0..n` — a
/// deterministic crash-failure schedule for the live-update workloads.
/// A splitmix64 stream drives a partial Fisher–Yates shuffle, so the
/// schedule is a pure function of `(n, k, seed)` and shares no RNG
/// state with anything else.
pub fn crash_schedule(n: usize, k: usize, seed: u64) -> Vec<u32> {
    assert!(k <= n, "cannot crash {k} of {n} nodes");
    assert!(u32::try_from(n).is_ok(), "node ids are u32");
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = i + (next() % (n - i) as u64) as usize;
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::has_one_factor;
    use crate::properties;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = cycle(5);
        assert_eq!(c.edge_count(), 5);
        assert!(c.nodes().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let s = star(6);
        assert_eq!(s.degree(0), 6);
        assert!((1..=6).all(|v| s.degree(v) == 1));
    }

    #[test]
    fn complete_and_bipartite() {
        let k = complete(5);
        assert_eq!(k.edge_count(), 10);
        let kb = complete_bipartite(2, 3);
        assert_eq!(kb.edge_count(), 6);
        assert!(properties::bipartition(&kb).is_some());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn hypercube_regular() {
        let q = hypercube(3);
        assert_eq!(q.len(), 8);
        assert_eq!(properties::regularity(&q), Some(3));
    }

    #[test]
    fn binary_tree_shape() {
        let t = binary_tree(7);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.degree(0), 2);
        assert_eq!(t.degree(1), 3);
        assert_eq!(t.degree(6), 1);
    }

    #[test]
    fn petersen_is_cubic_with_one_factor() {
        let g = petersen();
        assert_eq!(properties::regularity(&g), Some(3));
        assert!(properties::is_connected(&g));
        assert!(has_one_factor(&g));
    }

    #[test]
    fn figure1_graph_degrees() {
        let g = figure1_graph();
        let mut degs = g.degrees();
        degs.sort_unstable();
        assert_eq!(degs, vec![1, 2, 2, 3]);
    }

    #[test]
    fn theorem13_witness_degrees() {
        let (g, (a, b)) = theorem13_witness();
        assert_eq!(g.degree(a), 3);
        assert_eq!(g.degree(b), 3);
        // a has two odd-degree neighbours, b has one.
        let odd = |v: usize| g.neighbors(v).iter().filter(|&&u| g.degree(u) % 2 == 1).count();
        assert_eq!(odd(a), 2);
        assert_eq!(odd(b), 1);
    }

    #[test]
    fn no_one_factor_is_regular_connected_unmatchable() {
        for k in [3usize, 5] {
            let g = no_one_factor(k);
            assert_eq!(g.len(), 1 + k * (k + 2));
            assert_eq!(properties::regularity(&g), Some(k), "k = {k}");
            assert!(properties::is_connected(&g));
            assert!(!has_one_factor(&g), "k = {k} should have no 1-factor");
        }
    }

    #[test]
    fn no_one_factor_k3_is_the_classic_16_vertex_graph() {
        let g = no_one_factor(3);
        assert_eq!(g.len(), 16);
        assert_eq!(g.edge_count(), 24);
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(42);
        for (n, d) in [(10, 3), (12, 4), (9, 2)] {
            let g = random_regular(n, d, &mut rng);
            assert_eq!(properties::regularity(&g), Some(d));
        }
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2usize, 3, 8, 20] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.edge_count(), n - 1);
            assert!(properties::is_connected(&t));
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn circulant_special_cases() {
        assert_eq!(circulant(7, &[1]), cycle(7));
        assert_eq!(circulant(5, &[1, 2]), complete(5));
        // An even n with the half offset: the "antipodal" matching makes
        // the degree odd.
        let g = circulant(6, &[1, 3]);
        assert_eq!(properties::regularity(&g), Some(3));
        assert!(properties::is_connected(&g));
        // Every circulant admits the Lemma 15 symmetric numbering.
        let p = crate::PortNumbering::symmetric_regular(&g).unwrap();
        let t0 = p.local_type(0);
        for v in g.nodes() {
            assert_eq!(p.local_type(v), t0);
        }
    }

    #[test]
    fn circulant_rejects_bad_offsets() {
        use std::panic::catch_unwind;
        assert!(catch_unwind(|| circulant(6, &[0])).is_err());
        assert!(catch_unwind(|| circulant(6, &[4])).is_err());
        assert!(catch_unwind(|| circulant(6, &[2, 2])).is_err());
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(0), 5, "hub");
        for v in 1..=5 {
            assert_eq!(g.degree(v), 3, "rim node {v}");
        }
        assert!(properties::is_connected(&g));
        assert!(catch_unwind_silent(|| wheel(2)).is_err());
    }

    fn catch_unwind_silent<R>(f: impl FnOnce() -> R + std::panic::UnwindSafe) -> std::thread::Result<R> {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = std::panic::catch_unwind(f);
        std::panic::set_hook(hook);
        out
    }

    /// Collects a symmetric edge stream into per-source rows.
    fn stream_rows(n: usize, edges: impl Iterator<Item = (u32, u32)>) -> Vec<Vec<usize>> {
        let mut rows = vec![Vec::new(); n];
        for (v, w) in edges {
            assert!((v as usize) < n && (w as usize) < n);
            rows[v as usize].push(w as usize);
        }
        rows
    }

    #[test]
    fn path_edges_match_graph_adjacency() {
        for n in [0usize, 1, 2, 3, 17] {
            let g = path(n);
            let rows = stream_rows(n, path_edges(n));
            for (v, row) in rows.iter().enumerate() {
                assert_eq!(row, g.neighbors(v), "n = {n}, v = {v}");
            }
        }
    }

    #[test]
    fn caterpillar_edges_match_graph_adjacency() {
        for spine in [1usize, 2, 9] {
            let g = caterpillar(spine);
            let rows = stream_rows(2 * spine, caterpillar_edges(spine));
            for (v, row) in rows.iter().enumerate() {
                assert_eq!(row, g.neighbors(v), "spine = {spine}, v = {v}");
            }
        }
    }

    #[test]
    fn circulant_edges_match_graph_as_sets() {
        // The stream's within-row order differs from the builder's, so
        // compare sorted rows (both sides are simple graphs).
        for (n, offsets) in [(7usize, vec![1usize]), (10, vec![1, 3]), (6, vec![1, 3]), (5, vec![1, 2])] {
            let g = circulant(n, &offsets);
            let mut rows = stream_rows(n, circulant_edges(n, &offsets));
            for (v, row) in rows.iter_mut().enumerate() {
                row.sort_unstable();
                row.dedup();
                let mut expect = g.neighbors(v).to_vec();
                expect.sort_unstable();
                assert_eq!(*row, expect, "n = {n}, offsets = {offsets:?}, v = {v}");
            }
        }
    }

    #[test]
    fn circulant_edges_reject_bad_offsets() {
        assert!(catch_unwind_silent(|| circulant_edges(6, &[0]).count()).is_err());
        assert!(catch_unwind_silent(|| circulant_edges(6, &[4]).count()).is_err());
        assert!(catch_unwind_silent(|| circulant_edges(6, &[2, 2]).count()).is_err());
    }

    #[test]
    fn gnp_edges_is_deterministic_symmetric_and_in_range() {
        let a: Vec<_> = gnp_edges(200, 0.03, 42).collect();
        let b: Vec<_> = gnp_edges(200, 0.03, 42).collect();
        assert_eq!(a, b, "the stream must replay identically");
        assert!(!a.is_empty());
        assert_eq!(a.len() % 2, 0, "pairs come in both directions");
        for pair in a.chunks_exact(2) {
            let ((v, w), (x, y)) = (pair[0], pair[1]);
            assert_eq!((v, w), (y, x), "each kept pair is emitted both ways");
            assert!(v < w, "forward direction first");
            assert!(w < 200);
        }
        // A different seed gives a different (but still valid) sample.
        let c: Vec<_> = gnp_edges(200, 0.03, 43).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_edges_degenerate_cases() {
        assert_eq!(gnp_edges(100, 0.0, 7).count(), 0);
        assert_eq!(gnp_edges(1, 0.5, 7).count(), 0);
        assert_eq!(gnp_edges(0, 0.5, 7).count(), 0);
        assert!(catch_unwind_silent(|| gnp_edges(10, 1.0, 7)).is_err());
        // Dense-ish p still visits every pair at most once.
        let edges: Vec<_> = gnp_edges(40, 0.9, 11).collect();
        let forward: Vec<_> = edges.iter().filter(|&&(v, w)| v < w).collect();
        let mut dedup = forward.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(forward.len(), dedup.len(), "no pair sampled twice");
        assert!(forward.len() as f64 >= 0.7 * (40.0 * 39.0 / 2.0));
    }

    #[test]
    fn crash_schedule_is_distinct_in_range_and_deterministic() {
        let s = crash_schedule(100, 10, 42);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&v| v < 100));
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "crashes are distinct");
        assert_eq!(s, crash_schedule(100, 10, 42));
        assert_ne!(s, crash_schedule(100, 10, 43));
        // Degenerate shapes.
        assert!(crash_schedule(5, 0, 1).is_empty());
        let mut all = crash_schedule(5, 5, 1);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gnp_edges_expected_density_is_roughly_right() {
        let n = 500usize;
        let p = 0.02;
        let kept = gnp_edges(n, p, 1).count() / 2;
        let expect = p * (n * (n - 1) / 2) as f64;
        assert!(
            (kept as f64) > 0.5 * expect && (kept as f64) < 1.5 * expect,
            "kept {kept} vs expected ~{expect}"
        );
    }
}
