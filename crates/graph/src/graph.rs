//! Simple undirected graphs with bounded degree.
//!
//! The paper works with the family `F(Δ)` of simple undirected graphs of
//! maximum degree at most `Δ`. [`Graph`] is an adjacency-list representation
//! of such a graph, with nodes identified by `0..n`.
//!
//! Adjacency lists are kept sorted, so the *neighbour position* of `u` in
//! `N(v)` is a stable, canonical notion used throughout the workspace (port
//! numberings are stored as permutations of neighbour positions).

use crate::error::GraphError;
use std::fmt;

/// A node identifier: an index in `0..n`.
pub type NodeId = usize;

/// A simple undirected graph on nodes `0..n`.
///
/// # Examples
///
/// ```
/// use portnum_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.len(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 3));
/// # Ok::<(), portnum_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn empty(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, an edge is a self
    /// loop, or an edge appears twice (in either orientation).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Returns a builder for incremental construction.
    pub fn builder(n: usize) -> GraphBuilder {
        GraphBuilder::new(n)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree `Δ` (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The sorted neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v]
    }

    /// Position of `u` in the sorted neighbour list of `v`, if adjacent.
    pub fn neighbor_position(&self, v: NodeId, u: NodeId) -> Option<usize> {
        self.adj[v].binary_search(&u).ok()
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.len() && self.adj[u].binary_search(&v).is_ok()
    }

    /// Iterates over all edges as pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.len()
    }

    /// The degree sequence, indexed by node.
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }

    /// Builds the disjoint union of the given graphs, renumbering nodes of
    /// the `i`-th graph by the total size of the preceding graphs.
    ///
    /// # Examples
    ///
    /// ```
    /// use portnum_graph::{generators, Graph};
    ///
    /// let g = Graph::disjoint_union(&[&generators::cycle(3), &generators::path(2)]);
    /// assert_eq!(g.len(), 5);
    /// assert_eq!(g.edge_count(), 4);
    /// ```
    pub fn disjoint_union(parts: &[&Graph]) -> Graph {
        let n: usize = parts.iter().map(|g| g.len()).sum();
        let mut b = GraphBuilder::new(n);
        let mut offset = 0;
        for g in parts {
            for (u, v) in g.edges() {
                b.edge(u + offset, v + offset)
                    .expect("disjoint union of valid graphs is valid");
            }
            offset += g.len();
        }
        b.build()
    }

    /// Returns the subgraph induced on `keep` (order preserved), along with
    /// the mapping from new ids to old ids.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut index = vec![usize::MAX; self.len()];
        for (new, &old) in keep.iter().enumerate() {
            index[old] = new;
        }
        let mut b = GraphBuilder::new(keep.len());
        for (u, v) in self.edges() {
            if index[u] != usize::MAX && index[v] != usize::MAX {
                b.edge(index[u], index[v]).expect("induced subgraph is simple");
            }
        }
        (b.build(), keep.to_vec())
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.len(), self.edge_count())
    }
}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use portnum_graph::Graph;
///
/// let mut b = Graph::builder(3);
/// b.edge(0, 1)?;
/// b.edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), portnum_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self loops, or duplicates.
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        let n = self.adj.len();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.adj[u].contains(&v) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.edge_count += 1;
        Ok(self)
    }

    /// Returns `true` if the edge `{u, v}` is already present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.adj.len() && self.adj[u].contains(&v)
    }

    /// Finalises the graph, sorting adjacency lists.
    pub fn build(mut self) -> Graph {
        for ns in &mut self.adj {
            ns.sort_unstable();
        }
        Graph { adj: self.adj, edge_count: self.edge_count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_empty());
        assert!(Graph::empty(0).is_empty());
    }

    #[test]
    fn from_edges_basic() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_duplicate_edges_both_orientations() {
        assert!(matches!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            Graph::from_edges(3, &[(0, 1), (0, 1)]),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::from_edges(4, &[(2, 0), (3, 1), (0, 1)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn neighbor_position_matches_sorted_order() {
        let g = Graph::from_edges(4, &[(1, 3), (1, 0), (1, 2)]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbor_position(1, 2), Some(1));
        assert_eq!(g.neighbor_position(1, 1), None);
    }

    #[test]
    fn disjoint_union_offsets() {
        let a = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Graph::from_edges(3, &[(0, 2)]).unwrap();
        let u = Graph::disjoint_union(&[&a, &b]);
        assert_eq!(u.len(), 5);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 4));
        assert!(!u.has_edge(1, 2));
    }

    #[test]
    fn induced_subgraph_keeps_inner_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let (h, map) = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.edge_count(), 2);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn display_is_nonempty() {
        let g = Graph::empty(1);
        assert!(!format!("{g}").is_empty());
        assert!(!format!("{g:?}").is_empty());
    }
}
