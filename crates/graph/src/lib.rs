//! # portnum-graph
//!
//! Graph substrate for the *port-numbering model* of distributed computing,
//! as studied in Hella et al., “Weak models of distributed computing, with
//! connections to modal logic” (PODC 2012).
//!
//! The crate provides:
//!
//! * [`Graph`] — simple undirected graphs of bounded degree (the family
//!   `F(Δ)` of the paper);
//! * [`PortNumbering`] — bijections on ports realising the adjacency
//!   relation, with consistent, random, and *symmetric* (Lemma 15)
//!   constructions;
//! * [`generators`] — classic families plus the paper's witness graphs
//!   (Figure 1, the Theorem 13 two-component witness, Figure 9's regular
//!   graphs without a 1-factor);
//! * [`matching`] — Hopcroft–Karp, 1-factorization of regular bipartite
//!   graphs, and Edmonds' blossom algorithm;
//! * [`cover`] — bipartite double covers;
//! * [`views`] — Yamashita–Kameda view equivalence;
//! * [`refinement`] — colour refinement (1-WL);
//! * [`partition`] — the partition-refinement engines (full-round
//!   interned-signature reference + incremental Paige–Tarjan-style
//!   worklist, selected by `PORTNUM_REFINE`) shared by colour
//!   refinement and `portnum-logic`'s bisimulation;
//! * [`bitset`] — packed `u64`-word truth vectors backing
//!   `portnum-logic`'s word-parallel model checker;
//! * [`blocking`] — the shared cache-block geometry (L2-sized world
//!   blocks, row-bound prefetch) tiling the plan executor's diamond
//!   sweeps and the worklist refiner's frontier encode;
//! * [`pool`] — the persistent worker pool behind every parallel phase
//!   (refinement encode rounds, parallel plan execution), tunable via
//!   `PORTNUM_POOL`;
//! * [`resilience`] — the cooperative execution control plane
//!   (`CancelToken`, `Deadline`, `ExecBudget`) threaded through every
//!   long-running engine loop here and in `portnum-logic`;
//! * [`properties`] — connectivity, regularity, bipartiteness, Eulerian
//!   tests.
//!
//! # Load-bearing invariants
//!
//! The hot paths lean on a small set of contracts, each documented and
//! test-enforced where it is defined:
//!
//! * **Masked tail** ([`bitset::Bitset`]) — when the universe size is
//!   not a multiple of 64, the unused high bits of the last word are
//!   always zero, so `count_ones`, equality, and row-wise ORs never see
//!   garbage.
//! * **Exactly-once, in-order `assign_from_fn`**
//!   ([`bitset::Bitset::assign_from_fn`]) — the generator closure is
//!   called exactly once per index, in ascending order; the CSR
//!   diamond walks carry a cursor that relies on it.
//! * **Epoch-tagged chunk queue** ([`pool::WorkerPool`]) — workers
//!   CAS-verify the call epoch before every chunk claim, so a stale
//!   worker can neither touch a new call's cursor nor run an old job
//!   after its borrow ended.
//! * **First-seen canonical block ids** ([`partition`]) — refinement
//!   levels number blocks in first-scan order, so stability detection
//!   is a `memcmp` and partitions from different front-ends (1-WL,
//!   bisimulation, either engine) are directly comparable.
//!
//! # Quick start
//!
//! ```
//! use portnum_graph::{generators, PortNumbering};
//!
//! // The classic cubic graph without a perfect matching (Figure 9a).
//! let g = generators::no_one_factor(3);
//! assert!(!portnum_graph::matching::has_one_factor(&g));
//!
//! // Lemma 15: a symmetric (inconsistent) port numbering exists because the
//! // graph is regular...
//! let p = PortNumbering::symmetric_regular(&g)?;
//! assert!(!p.is_consistent());
//!
//! // ...while the canonical consistent numbering is an involution.
//! let q = PortNumbering::consistent(&g);
//! assert!(q.is_consistent());
//! # Ok::<(), portnum_graph::PortError>(())
//! ```

// `deny` rather than `forbid`: the worker pool ([`pool`]) carries the
// crate's two `unsafe impl`s (lifetime-erased job handoff to parked
// workers, justified there) and [`blocking`] wraps the architectural
// prefetch hint; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod blocking;
pub mod cover;
pub mod csc;
mod error;
pub mod generators;
mod graph;
pub mod lifts;
pub mod matching;
pub mod partition;
pub mod pool;
mod ports;
pub mod properties;
pub mod refinement;
pub mod resilience;
pub mod views;

pub use error::{GraphError, LiftError, MatchingError, PortError};
pub use graph::{Graph, GraphBuilder, NodeId};
pub use ports::{Port, PortNumbering};
