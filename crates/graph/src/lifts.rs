//! Covering graphs (*lifts*) of port-numbered graphs, built from
//! permutation voltages.
//!
//! Covering maps are one of the classic tools behind the paper's subject
//! (Section 3.3 cites covering graphs, lifts, and universal covers as the
//! standard graph-theoretic companions of bisimulation). The *lifting
//! lemma* states that a deterministic anonymous algorithm cannot
//! distinguish a port-numbered graph `(G, p)` from any of its covers
//! `(H, q)`: the execution at a cover node `w` is identical, round for
//! round, to the execution at its projection `φ(w)`. In Kripke terms,
//! `w` and `φ(w)` are bisimilar in `K₊,₊` — the module is the
//! graph-theoretic face of the logic crate's bisimulation engine.
//!
//! This module constructs `k`-fold covers from [`Voltages`] (one
//! permutation of the `k` sheets per edge), verifies arbitrary
//! [`CoveringMap`]s, and exposes the bipartite double cover of
//! [`cover`](crate::cover) as the special case of two sheets with the
//! swap voltage on every edge.
//!
//! # Examples
//!
//! ```
//! use portnum_graph::{generators, lifts, PortNumbering};
//!
//! let g = generators::cycle(3);
//! let p = PortNumbering::consistent(&g);
//!
//! // A 2-lift of the triangle along cyclic voltages is the 6-cycle.
//! let lift = lifts::lift(&g, &p, &lifts::Voltages::cyclic(&g, 2))?;
//! assert_eq!(lift.graph().len(), 6);
//! assert!(lift.covering_map().verify(&g, &p, lift.graph(), lift.ports()));
//! # Ok::<(), portnum_graph::LiftError>(())
//! ```

use crate::error::LiftError;
use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::ports::{Port, PortNumbering};
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A permutation voltage assignment: one permutation of the sheet set
/// `{0, …, k-1}` per edge of the base graph, indexed in the canonical
/// order of [`Graph::edges`] (pairs `(u, v)` with `u < v`, ascending).
///
/// Traversing edge `{u, v}` from `u` to `v` moves sheet `s` to
/// `π(s)`; traversing it backwards applies `π⁻¹`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Voltages {
    sheets: usize,
    perms: Vec<Vec<usize>>,
}

impl Voltages {
    /// Builds a voltage assignment from explicit permutations, validating
    /// that each is a permutation of `0..sheets` and that there is exactly
    /// one per edge of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`LiftError`] if the count or any permutation is invalid.
    pub fn new(g: &Graph, sheets: usize, perms: Vec<Vec<usize>>) -> Result<Self, LiftError> {
        if sheets == 0 {
            return Err(LiftError::NoSheets);
        }
        if perms.len() != g.edge_count() {
            return Err(LiftError::WrongEdgeCount {
                given: perms.len(),
                expected: g.edge_count(),
            });
        }
        for (edge, perm) in perms.iter().enumerate() {
            if !is_permutation(perm, sheets) {
                return Err(LiftError::NotAPermutation { edge, sheets });
            }
        }
        Ok(Voltages { sheets, perms })
    }

    /// The identity voltage on every edge: the lift is `sheets` disjoint
    /// copies of the base graph.
    pub fn identity(g: &Graph, sheets: usize) -> Self {
        Voltages {
            sheets: sheets.max(1),
            perms: vec![(0..sheets.max(1)).collect(); g.edge_count()],
        }
    }

    /// The cyclic shift `s ↦ s + 1 (mod sheets)` on every edge. On an odd
    /// cycle with two sheets this produces the double cycle; in general it
    /// produces a connected lift whenever the base has an odd closed walk
    /// meeting every edge class.
    pub fn cyclic(g: &Graph, sheets: usize) -> Self {
        let sheets = sheets.max(1);
        let shift: Vec<usize> = (0..sheets).map(|s| (s + 1) % sheets).collect();
        Voltages { sheets, perms: vec![shift; g.edge_count()] }
    }

    /// The swap voltage `s ↦ 1 - s` with two sheets on every edge: this is
    /// exactly the bipartite double cover of
    /// [`cover::double_cover_graph`](crate::cover::double_cover_graph).
    pub fn double_cover(g: &Graph) -> Self {
        Voltages { sheets: 2, perms: vec![vec![1, 0]; g.edge_count()] }
    }

    /// Independent uniformly random permutations on every edge.
    pub fn random<R: Rng + ?Sized>(g: &Graph, sheets: usize, rng: &mut R) -> Self {
        let sheets = sheets.max(1);
        let perms = (0..g.edge_count())
            .map(|_| {
                let mut perm: Vec<usize> = (0..sheets).collect();
                perm.shuffle(rng);
                perm
            })
            .collect();
        Voltages { sheets, perms }
    }

    /// Number of sheets `k`.
    pub fn sheets(&self) -> usize {
        self.sheets
    }

    /// The permutation assigned to the `edge`-th canonical edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn permutation(&self, edge: usize) -> &[usize] {
        &self.perms[edge]
    }
}

impl fmt::Display for Voltages {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Voltages(sheets={}, edges={})", self.sheets, self.perms.len())
    }
}

/// A graph homomorphism `φ : H → G` claimed to be a covering map of
/// port-numbered graphs; [`CoveringMap::verify`] checks the claim.
///
/// Cover node ids are arbitrary; the map stores `φ` as a vector indexed by
/// cover node. Lifts built by [`lift`] use the convention
/// `(v, s) = s·n + v`, so sheet `0` is the base graph's own node range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveringMap {
    base_len: usize,
    map: Vec<NodeId>,
}

impl CoveringMap {
    /// Wraps an explicit projection `map[w] = φ(w)`.
    ///
    /// # Errors
    ///
    /// Returns [`LiftError::ProjectionOutOfRange`] if some image is not a
    /// base node.
    pub fn new(base_len: usize, map: Vec<NodeId>) -> Result<Self, LiftError> {
        if let Some(&bad) = map.iter().find(|&&v| v >= base_len) {
            return Err(LiftError::ProjectionOutOfRange { node: bad, base_len });
        }
        Ok(CoveringMap { base_len, map })
    }

    /// The projection `φ(w)` of a cover node.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn project(&self, w: NodeId) -> NodeId {
        self.map[w]
    }

    /// Number of nodes in the base graph.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of nodes in the cover.
    pub fn cover_len(&self) -> usize {
        self.map.len()
    }

    /// The fibre `φ⁻¹(v)` of a base node.
    pub fn fiber(&self, v: NodeId) -> Vec<NodeId> {
        self.map
            .iter()
            .enumerate()
            .filter_map(|(w, &img)| (img == v).then_some(w))
            .collect()
    }

    /// Checks that `φ` is a covering map of port-numbered graphs: for every
    /// cover port `(w, i)`, projecting the port connection of `q` yields
    /// the port connection of `p`, i.e. `q((w, i)) = (x, j)` implies
    /// `p((φ(w), i)) = (φ(x), j)`, and degrees are preserved.
    ///
    /// This local condition is exactly what makes executions commute with
    /// `φ` (the lifting lemma), so it is the soundness check for every
    /// covering-based argument in the workspace.
    pub fn verify(
        &self,
        base_g: &Graph,
        base_p: &PortNumbering,
        cover_g: &Graph,
        cover_p: &PortNumbering,
    ) -> bool {
        if self.map.len() != cover_g.len()
            || self.base_len != base_g.len()
            || base_p.len() != base_g.len()
            || cover_p.len() != cover_g.len()
        {
            return false;
        }
        for w in cover_g.nodes() {
            let v = self.map[w];
            if cover_g.degree(w) != base_g.degree(v) {
                return false;
            }
            for i in 0..cover_g.degree(w) {
                let qx = cover_p.forward(Port::new(w, i));
                let px = base_p.forward(Port::new(v, i));
                if self.map[qx.node] != px.node || qx.index != px.index {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for CoveringMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CoveringMap({} → {})", self.map.len(), self.base_len)
    }
}

/// A `k`-fold cover of a port-numbered graph, as produced by [`lift`]:
/// the lifted graph, its lifted port numbering, and the projection back
/// to the base.
#[derive(Debug, Clone)]
pub struct Lift {
    graph: Graph,
    ports: PortNumbering,
    covering_map: CoveringMap,
    sheets: usize,
}

impl Lift {
    /// The lifted graph on `k·n` nodes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The lifted port numbering.
    pub fn ports(&self) -> &PortNumbering {
        &self.ports
    }

    /// The projection `φ((v, s)) = v`.
    pub fn covering_map(&self) -> &CoveringMap {
        &self.covering_map
    }

    /// Number of sheets `k`.
    pub fn sheets(&self) -> usize {
        self.sheets
    }

    /// The cover node id of `(v, sheet)`.
    pub fn node(&self, v: NodeId, sheet: usize) -> NodeId {
        sheet * self.covering_map.base_len() + v
    }

    /// Splits a cover node id back into `(base node, sheet)`.
    pub fn split(&self, w: NodeId) -> (NodeId, usize) {
        let n = self.covering_map.base_len();
        (w % n, w / n)
    }
}

/// Builds the `k`-fold lift of `(g, p)` along `voltages`.
///
/// The lift has node set `V × {0, …, k-1}` (node `(v, s)` is `s·n + v`).
/// Edge `{u, v}` of `g` (with `u < v` and voltage `π`) lifts to the edges
/// `{(u, s), (v, π(s))}` for every sheet `s`, and the port numbering lifts
/// along: if `p((u, i)) = (v, j)`, then in the lift node `(u, s)` sends
/// from port `i` to port `j` of `v`'s copy on the sheet reached by the
/// voltage. The projection is a covering map by construction, which the
/// returned value's [`CoveringMap::verify`] re-checks in debug builds.
///
/// # Errors
///
/// Returns [`LiftError::WrongEdgeCount`] if `voltages` was built for a
/// graph with a different number of edges.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, lifts, PortNumbering};
///
/// // Identity voltages: 3 disjoint copies of the Petersen graph.
/// let g = generators::petersen();
/// let p = PortNumbering::consistent(&g);
/// let lift = lifts::lift(&g, &p, &lifts::Voltages::identity(&g, 3))?;
/// assert_eq!(lift.graph().len(), 30);
/// assert_eq!(lift.graph().edge_count(), 45);
/// # Ok::<(), portnum_graph::LiftError>(())
/// ```
pub fn lift(g: &Graph, p: &PortNumbering, voltages: &Voltages) -> Result<Lift, LiftError> {
    if voltages.perms.len() != g.edge_count() {
        return Err(LiftError::WrongEdgeCount {
            given: voltages.perms.len(),
            expected: g.edge_count(),
        });
    }
    let n = g.len();
    let k = voltages.sheets;

    // Edge index lookup and inverse permutations for backward traversal.
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let mut edge_id = std::collections::HashMap::new();
    for (e, &(u, v)) in edges.iter().enumerate() {
        edge_id.insert((u, v), e);
    }
    let inverses: Vec<Vec<usize>> = voltages
        .perms
        .iter()
        .map(|perm| {
            let mut inv = vec![0; k];
            for (s, &t) in perm.iter().enumerate() {
                inv[t] = s;
            }
            inv
        })
        .collect();

    // Sheet reached when traversing from `a` to its neighbour `b` starting
    // on sheet `s`.
    let traverse = |a: NodeId, b: NodeId, s: usize| -> usize {
        if a < b {
            voltages.perms[edge_id[&(a, b)]][s]
        } else {
            inverses[edge_id[&(b, a)]][s]
        }
    };

    let mut builder = GraphBuilder::new(k * n);
    for (e, &(u, v)) in edges.iter().enumerate() {
        for s in 0..k {
            let t = voltages.perms[e][s];
            builder
                .edge(s * n + u, t * n + v)
                .expect("lift of a simple graph is simple");
        }
    }
    let graph = builder.build();

    let mut fwd: Vec<Vec<Port>> = (0..k * n)
        .map(|w| vec![Port::new(usize::MAX, 0); g.degree(w % n)])
        .collect();
    #[allow(clippy::needless_range_loop)] // i indexes ports and rows in lockstep
    for v in g.nodes() {
        for i in 0..g.degree(v) {
            let target = p.forward(Port::new(v, i));
            for s in 0..k {
                let t = traverse(v, target.node, s);
                fwd[s * n + v][i] = Port::new(t * n + target.node, target.index);
            }
        }
    }
    let ports = PortNumbering::from_forward_map(&graph, fwd)
        .expect("lift of a valid port numbering is valid");

    let map: Vec<NodeId> = (0..k * n).map(|w| w % n).collect();
    let covering_map = CoveringMap::new(n, map).expect("projection images are base nodes");
    debug_assert!(covering_map.verify(g, p, &graph, &ports));

    Ok(Lift { graph, ports, covering_map, sheets: k })
}

fn is_permutation(perm: &[usize], k: usize) -> bool {
    if perm.len() != k {
        return false;
    }
    let mut seen = vec![false; k];
    for &s in perm {
        if s >= k || seen[s] {
            return false;
        }
        seen[s] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover;
    use crate::generators;
    use crate::properties;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_lift_is_disjoint_copies() {
        let g = generators::cycle(5);
        let p = PortNumbering::consistent(&g);
        let lift = lift(&g, &p, &Voltages::identity(&g, 3)).unwrap();
        assert_eq!(lift.graph().len(), 15);
        assert_eq!(properties::component_count(lift.graph()), 3);
        assert!(lift.covering_map().verify(&g, &p, lift.graph(), lift.ports()));
    }

    #[test]
    fn double_cover_voltage_matches_cover_module() {
        let g = generators::petersen();
        let p = PortNumbering::consistent(&g);
        let lift = lift(&g, &p, &Voltages::double_cover(&g)).unwrap();
        assert_eq!(*lift.graph(), cover::double_cover_graph(&g));
        assert!(lift.covering_map().verify(&g, &p, lift.graph(), lift.ports()));
    }

    #[test]
    fn cyclic_lift_of_triangle_is_hexagon() {
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        let lift = lift(&g, &p, &Voltages::cyclic(&g, 2)).unwrap();
        assert_eq!(lift.graph().len(), 6);
        assert_eq!(properties::component_count(lift.graph()), 1);
        assert_eq!(properties::regularity(lift.graph()), Some(2));
    }

    #[test]
    fn random_lifts_are_valid_covers() {
        let mut rng = StdRng::seed_from_u64(11);
        for g in [generators::petersen(), generators::grid(3, 3), generators::complete(5)] {
            let p = PortNumbering::random(&g, &mut rng);
            for sheets in [1, 2, 4] {
                let v = Voltages::random(&g, sheets, &mut rng);
                let lift = lift(&g, &p, &v).unwrap();
                assert_eq!(lift.graph().len(), sheets * g.len());
                assert_eq!(lift.graph().edge_count(), sheets * g.edge_count());
                assert!(lift.covering_map().verify(&g, &p, lift.graph(), lift.ports()));
                for w in lift.graph().nodes() {
                    let (v_, s) = lift.split(w);
                    assert_eq!(lift.node(v_, s), w);
                    assert_eq!(lift.covering_map().project(w), v_);
                }
            }
        }
    }

    #[test]
    fn fibers_partition_the_cover() {
        let g = generators::star(3);
        let p = PortNumbering::consistent(&g);
        let lift = lift(&g, &p, &Voltages::identity(&g, 2)).unwrap();
        let mut seen = vec![false; lift.graph().len()];
        for v in g.nodes() {
            let fiber = lift.covering_map().fiber(v);
            assert_eq!(fiber.len(), 2);
            for w in fiber {
                assert!(!seen[w]);
                seen[w] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn verify_rejects_non_covers() {
        let g = generators::cycle(4);
        let p = PortNumbering::consistent(&g);
        // A map from a graph of the wrong shape.
        let h = generators::cycle(5);
        let q = PortNumbering::consistent(&h);
        let phi = CoveringMap::new(4, vec![0, 1, 2, 3, 0]).unwrap();
        assert!(!phi.verify(&g, &p, &h, &q));
        // The identity on the same graph *is* a (1-fold) cover.
        let id = CoveringMap::new(4, vec![0, 1, 2, 3]).unwrap();
        assert!(id.verify(&g, &p, &g, &p));
        // A wrong projection on the right graph.
        let bad = CoveringMap::new(4, vec![1, 0, 2, 3]).unwrap();
        assert!(!bad.verify(&g, &p, &g, &p));
    }

    #[test]
    fn voltage_validation() {
        let g = generators::path(3);
        assert!(matches!(
            Voltages::new(&g, 0, vec![]),
            Err(LiftError::NoSheets)
        ));
        assert!(matches!(
            Voltages::new(&g, 2, vec![vec![0, 1]]),
            Err(LiftError::WrongEdgeCount { given: 1, expected: 2 })
        ));
        assert!(matches!(
            Voltages::new(&g, 2, vec![vec![0, 1], vec![0, 0]]),
            Err(LiftError::NotAPermutation { edge: 1, sheets: 2 })
        ));
        assert!(Voltages::new(&g, 2, vec![vec![0, 1], vec![1, 0]]).is_ok());
    }

    #[test]
    fn covering_map_rejects_out_of_range() {
        assert!(matches!(
            CoveringMap::new(3, vec![0, 3]),
            Err(LiftError::ProjectionOutOfRange { node: 3, base_len: 3 })
        ));
    }

    #[test]
    fn lift_preserves_local_types() {
        // The local type (Theorem 17) is a local invariant, so it must be
        // constant on fibres.
        let mut rng = StdRng::seed_from_u64(23);
        let g = generators::no_one_factor(3);
        let p = PortNumbering::random(&g, &mut rng);
        let lift = lift(&g, &p, &Voltages::random(&g, 3, &mut rng)).unwrap();
        for w in lift.graph().nodes() {
            let (v, _) = lift.split(w);
            assert_eq!(lift.ports().local_type(w), p.local_type(v));
        }
    }

    #[test]
    fn display_is_nonempty() {
        let g = generators::cycle(3);
        let v = Voltages::identity(&g, 2);
        assert!(!format!("{v}").is_empty());
        let m = CoveringMap::new(3, vec![0, 1, 2]).unwrap();
        assert!(!format!("{m}").is_empty());
    }
}
