//! Edmonds' blossom algorithm: maximum matching in general graphs, `O(V³)`.
//!
//! Used to decide whether a graph has a 1-factor (Lemma 16 / Theorem 17 need
//! regular graphs *without* one) and as the exact lower bound
//! `opt(vertex cover) ≥ |maximum matching|` in the vertex-cover harness.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

const NIL: usize = usize::MAX;

/// Computes a maximum matching; entry `v` is `v`'s partner, if matched.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, matching};
///
/// let m = matching::maximum_matching(&generators::cycle(6));
/// assert_eq!(m.iter().filter(|x| x.is_some()).count(), 6);
/// ```
pub fn maximum_matching(g: &Graph) -> Vec<Option<NodeId>> {
    let n = g.len();
    let mut mate = vec![NIL; n];

    // Greedy seed matching speeds up the augmenting phase.
    for v in 0..n {
        if mate[v] == NIL {
            for &u in g.neighbors(v) {
                if mate[u] == NIL {
                    mate[v] = u;
                    mate[u] = v;
                    break;
                }
            }
        }
    }

    for root in 0..n {
        if mate[root] == NIL {
            if let Some((leaf, parent)) = find_augmenting_path(g, &mate, root) {
                augment(&mut mate, leaf, &parent);
            }
        }
    }

    mate.iter().map(|&x| (x != NIL).then_some(x)).collect()
}

/// BFS from `root` over alternating paths, contracting blossoms on the fly.
/// Returns the free node at the end of an augmenting path together with the
/// BFS parent array needed to walk the path back, if one exists.
fn find_augmenting_path(
    g: &Graph,
    mate: &[usize],
    root: usize,
) -> Option<(usize, Vec<usize>)> {
    let n = g.len();
    let mut used = vec![false; n];
    let mut parent = vec![NIL; n];
    let mut base: Vec<usize> = (0..n).collect();
    used[root] = true;
    let mut queue = VecDeque::from([root]);

    let lca = |base: &[usize], parent: &[usize], mate: &[usize], a: usize, b: usize| -> usize {
        let mut seen = vec![false; n];
        let mut cur = a;
        loop {
            cur = base[cur];
            seen[cur] = true;
            if mate[cur] == NIL {
                break;
            }
            cur = parent[mate[cur]];
        }
        let mut cur = b;
        loop {
            cur = base[cur];
            if seen[cur] {
                return cur;
            }
            cur = parent[mate[cur]];
        }
    };

    while let Some(v) = queue.pop_front() {
        for &to in g.neighbors(v) {
            if base[v] == base[to] || mate[v] == to {
                continue;
            }
            if to == root || (mate[to] != NIL && parent[mate[to]] != NIL) {
                // Odd cycle (blossom): contract it to its base.
                let curbase = lca(&base, &parent, mate, v, to);
                let mut blossom = vec![false; n];
                mark_path(mate, &mut parent, &base, &mut blossom, v, curbase, to);
                mark_path(mate, &mut parent, &base, &mut blossom, to, curbase, v);
                for i in 0..n {
                    if blossom[base[i]] {
                        base[i] = curbase;
                        if !used[i] {
                            used[i] = true;
                            queue.push_back(i);
                        }
                    }
                }
            } else if parent[to] == NIL {
                parent[to] = v;
                if mate[to] == NIL {
                    return Some((to, parent));
                }
                used[mate[to]] = true;
                queue.push_back(mate[to]);
            }
        }
    }
    None
}

fn mark_path(
    mate: &[usize],
    parent: &mut [usize],
    base: &[usize],
    blossom: &mut [bool],
    mut v: usize,
    b: usize,
    mut child: usize,
) {
    while base[v] != b {
        blossom[base[v]] = true;
        blossom[base[mate[v]]] = true;
        parent[v] = child;
        child = mate[v];
        v = parent[mate[v]];
    }
}

/// Flips matched/unmatched edges along the augmenting path ending at `leaf`.
fn augment(mate: &mut [usize], mut leaf: usize, parent: &[usize]) {
    while leaf != NIL {
        let pv = parent[leaf];
        let ppv = mate[pv];
        mate[leaf] = pv;
        mate[pv] = leaf;
        leaf = ppv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::matching::brute_force_matching_size;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_is_matching(g: &Graph, m: &[Option<usize>]) -> usize {
        let mut size = 0;
        for (v, partner) in m.iter().enumerate() {
            if let Some(u) = partner {
                assert!(g.has_edge(v, *u), "matched pair must be an edge");
                assert_eq!(m[*u], Some(v), "matching must be symmetric");
                if v < *u {
                    size += 1;
                }
            }
        }
        size
    }

    #[test]
    fn even_cycle_perfect() {
        let g = generators::cycle(8);
        let m = maximum_matching(&g);
        assert_eq!(check_is_matching(&g, &m), 4);
    }

    #[test]
    fn odd_cycle_near_perfect() {
        let g = generators::cycle(9);
        let m = maximum_matching(&g);
        assert_eq!(check_is_matching(&g, &m), 4);
    }

    #[test]
    fn petersen_perfect() {
        let g = generators::petersen();
        let m = maximum_matching(&g);
        assert_eq!(check_is_matching(&g, &m), 5);
    }

    #[test]
    fn blossom_required_case() {
        // Two triangles joined by a path: greedy bipartite-style search
        // without blossom contraction fails here.
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 4), (6, 7)],
        )
        .unwrap();
        let m = maximum_matching(&g);
        assert_eq!(check_is_matching(&g, &m), 4);
    }

    #[test]
    fn no_one_factor_graph_deficiency() {
        let g = generators::no_one_factor(3);
        let m = maximum_matching(&g);
        // 16 nodes, max matching 7 (deficiency 2 by the Tutte argument).
        assert_eq!(check_is_matching(&g, &m), 7);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2024);
        for n in [6usize, 8, 9] {
            for _ in 0..20 {
                let g = generators::gnp(n, 0.4, &mut rng);
                let m = maximum_matching(&g);
                let size = check_is_matching(&g, &m);
                assert_eq!(size, brute_force_matching_size(&g), "graph: {g:?}");
            }
        }
    }

    #[test]
    fn empty_and_trivial() {
        let g = Graph::empty(4);
        let m = maximum_matching(&g);
        assert!(m.iter().all(|x| x.is_none()));
        let g = Graph::empty(0);
        assert!(maximum_matching(&g).is_empty());
    }
}
