//! Hopcroft–Karp maximum matching in bipartite graphs, `O(E √V)`.

use super::Bipartite;
use std::collections::VecDeque;

const NIL: usize = usize::MAX;

/// A maximum matching of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteMatching {
    /// `left_to_right[l]` is the right partner of left node `l`, if matched.
    pub left_to_right: Vec<Option<usize>>,
    /// `right_to_left[r]` is the left partner of right node `r`, if matched.
    pub right_to_left: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

/// Computes a maximum matching via Hopcroft–Karp.
///
/// # Examples
///
/// ```
/// use portnum_graph::matching::{hopcroft_karp, Bipartite};
///
/// let mut b = Bipartite::new(2, 2);
/// b.add_edge(0, 0);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0);
/// let m = hopcroft_karp(&b);
/// assert_eq!(m.size, 2);
/// ```
pub fn hopcroft_karp(b: &Bipartite) -> BipartiteMatching {
    let ln = b.left_len();
    let rn = b.right_len();
    let mut match_l = vec![NIL; ln];
    let mut match_r = vec![NIL; rn];
    let mut dist = vec![0usize; ln];
    let mut size = 0;

    loop {
        // BFS layering from free left nodes.
        let mut queue = VecDeque::new();
        for l in 0..ln {
            if match_l[l] == NIL {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = usize::MAX;
            }
        }
        let mut found_free_right = false;
        while let Some(l) = queue.pop_front() {
            for &r in b.neighbors(l) {
                let next = match_r[r];
                if next == NIL {
                    found_free_right = true;
                } else if dist[next] == usize::MAX {
                    dist[next] = dist[l] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS augmentation along layered paths.
        fn dfs(
            l: usize,
            b: &Bipartite,
            match_l: &mut [usize],
            match_r: &mut [usize],
            dist: &mut [usize],
        ) -> bool {
            for i in 0..b.neighbors(l).len() {
                let r = b.neighbors(l)[i];
                let next = match_r[r];
                if next == NIL
                    || (dist[next] == dist[l] + 1 && dfs(next, b, match_l, match_r, dist))
                {
                    match_l[l] = r;
                    match_r[r] = l;
                    return true;
                }
            }
            dist[l] = usize::MAX;
            false
        }
        for l in 0..ln {
            if match_l[l] == NIL && dfs(l, b, &mut match_l, &mut match_r, &mut dist) {
                size += 1;
            }
        }
    }

    BipartiteMatching {
        left_to_right: match_l.iter().map(|&x| (x != NIL).then_some(x)).collect(),
        right_to_left: match_r.iter().map(|&x| (x != NIL).then_some(x)).collect(),
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::bipartite_double_cover;
    use crate::generators;

    fn check_matching(b: &Bipartite, m: &BipartiteMatching) {
        let mut count = 0;
        for (l, r) in m.left_to_right.iter().enumerate() {
            if let Some(r) = r {
                assert!(b.neighbors(l).contains(r), "matched edge must exist");
                assert_eq!(m.right_to_left[*r], Some(l));
                count += 1;
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn empty_graph() {
        let b = Bipartite::new(3, 3);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size, 0);
    }

    #[test]
    fn perfect_on_complete_bipartite() {
        let mut b = Bipartite::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                b.add_edge(l, r);
            }
        }
        let m = hopcroft_karp(&b);
        assert_eq!(m.size, 4);
        check_matching(&b, &m);
    }

    #[test]
    fn augmenting_path_needed() {
        // l0-{r0,r1}, l1-{r0}: greedy l0->r0 must be undone.
        let mut b = Bipartite::new(2, 2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size, 2);
        check_matching(&b, &m);
    }

    #[test]
    fn deficient_side() {
        // Two left nodes compete for one right node.
        let mut b = Bipartite::new(2, 1);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size, 1);
        check_matching(&b, &m);
    }

    #[test]
    fn long_augmenting_chain() {
        // A path structure forcing a length-5 augmenting path.
        let mut b = Bipartite::new(3, 3);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        b.add_edge(1, 1);
        b.add_edge(2, 1);
        b.add_edge(2, 2);
        let m = hopcroft_karp(&b);
        assert_eq!(m.size, 3);
        check_matching(&b, &m);
    }

    #[test]
    fn perfect_matching_in_regular_covers() {
        for g in [generators::cycle(7), generators::petersen(), generators::no_one_factor(3)] {
            let b = bipartite_double_cover(&g);
            let m = hopcroft_karp(&b);
            assert_eq!(m.size, g.len(), "regular bipartite graphs have perfect matchings");
            check_matching(&b, &m);
        }
    }
}
