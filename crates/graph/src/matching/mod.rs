//! Matchings: bipartite maximum matching (Hopcroft–Karp), 1-factorization of
//! regular bipartite graphs, and maximum matching in general graphs
//! (Edmonds' blossom algorithm).
//!
//! These are the combinatorial engines behind Lemmas 15 and 16 of the paper:
//! symmetric port numberings of regular graphs come from 1-factorizations of
//! the bipartite double cover, and the separation `VV ⊊ VVc` (Theorem 17)
//! needs regular graphs *without* a 1-factor, certified by the blossom
//! algorithm.

mod blossom;
mod hopcroft_karp;

pub use blossom::maximum_matching;
pub use hopcroft_karp::{hopcroft_karp, BipartiteMatching};

use crate::error::MatchingError;
use crate::graph::Graph;

/// A bipartite (multi)graph with `left_len` left nodes and `right_len` right
/// nodes, stored as adjacency from the left side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartite {
    adj: Vec<Vec<usize>>,
    right_len: usize,
    edge_count: usize,
}

impl Bipartite {
    /// Creates an empty bipartite graph.
    pub fn new(left_len: usize, right_len: usize) -> Self {
        Bipartite { adj: vec![Vec::new(); left_len], right_len, edge_count: 0 }
    }

    /// Adds an edge from left node `l` to right node `r`.
    ///
    /// # Panics
    ///
    /// Panics if `l` or `r` is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len(), "left node out of range");
        assert!(r < self.right_len, "right node out of range");
        self.adj[l].push(r);
        self.edge_count += 1;
    }

    /// Number of left nodes.
    pub fn left_len(&self) -> usize {
        self.adj.len()
    }

    /// Number of right nodes.
    pub fn right_len(&self) -> usize {
        self.right_len
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Right neighbours of left node `l` (with multiplicity).
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }

    /// If every left and right node has degree exactly `k`, returns `Some(k)`.
    pub fn regularity(&self) -> Option<usize> {
        if self.left_len() == 0 {
            return (self.right_len == 0).then_some(0);
        }
        let k = self.adj[0].len();
        if self.adj.iter().any(|row| row.len() != k) {
            return None;
        }
        let mut rdeg = vec![0usize; self.right_len];
        for row in &self.adj {
            for &r in row {
                rdeg[r] += 1;
            }
        }
        rdeg.iter().all(|&d| d == k).then_some(k)
    }
}

/// Decomposes a `k`-regular bipartite graph with equal sides into `k`
/// disjoint perfect matchings (1-factors), returned as permutations:
/// `factors[i][l] = r` means factor `i` matches left `l` to right `r`.
///
/// This is the classical corollary of Hall's marriage theorem used in the
/// proof of Lemma 15.
///
/// # Errors
///
/// Returns [`MatchingError::UnbalancedBipartite`] if the sides differ and
/// [`MatchingError::NotRegular`] if the graph is not regular.
///
/// # Examples
///
/// ```
/// use portnum_graph::{cover, generators, matching};
///
/// let g = generators::petersen();
/// let factors = matching::one_factorization(&cover::bipartite_double_cover(&g))?;
/// assert_eq!(factors.len(), 3);
/// # Ok::<(), portnum_graph::MatchingError>(())
/// ```
pub fn one_factorization(b: &Bipartite) -> Result<Vec<Vec<usize>>, MatchingError> {
    if b.left_len() != b.right_len() {
        return Err(MatchingError::UnbalancedBipartite);
    }
    let k = b.regularity().ok_or(MatchingError::NotRegular)?;
    let mut remaining = b.clone();
    let mut factors = Vec::with_capacity(k);
    for _ in 0..k {
        let m = hopcroft_karp(&remaining);
        if m.size != remaining.left_len() {
            // A regular bipartite graph always has a perfect matching, so
            // this is unreachable for valid inputs.
            return Err(MatchingError::NoPerfectMatching);
        }
        let factor: Vec<usize> = m
            .left_to_right
            .iter()
            .map(|r| r.expect("perfect matching covers the left side"))
            .collect();
        // Remove one occurrence of each matched edge.
        for (l, &r) in factor.iter().enumerate() {
            let pos = remaining.adj[l]
                .iter()
                .position(|&x| x == r)
                .expect("matched edge exists");
            remaining.adj[l].swap_remove(pos);
            remaining.edge_count -= 1;
        }
        factors.push(factor);
    }
    Ok(factors)
}

/// Returns `true` if the graph has a 1-factor (perfect matching).
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, matching};
///
/// assert!(matching::has_one_factor(&generators::petersen()));
/// assert!(!matching::has_one_factor(&generators::no_one_factor(3)));
/// ```
pub fn has_one_factor(g: &Graph) -> bool {
    if !g.len().is_multiple_of(2) {
        return false;
    }
    maximum_matching(g).iter().all(|x| x.is_some())
}

/// Exhaustive maximum-matching size, for cross-checking the blossom
/// algorithm on small graphs (exponential time; keep `g` tiny).
pub fn brute_force_matching_size(g: &Graph) -> usize {
    let edges: Vec<(usize, usize)> = g.edges().collect();
    fn rec(edges: &[(usize, usize)], used: &mut Vec<bool>, i: usize) -> usize {
        if i == edges.len() {
            return 0;
        }
        let skip = rec(edges, used, i + 1);
        let (u, v) = edges[i];
        let mut best = skip;
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            best = best.max(1 + rec(edges, used, i + 1));
            used[u] = false;
            used[v] = false;
        }
        best
    }
    let mut used = vec![false; g.len()];
    rec(&edges, &mut used, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::bipartite_double_cover;
    use crate::generators;

    #[test]
    fn bipartite_accessors() {
        let mut b = Bipartite::new(2, 3);
        b.add_edge(0, 0);
        b.add_edge(0, 2);
        b.add_edge(1, 1);
        assert_eq!(b.left_len(), 2);
        assert_eq!(b.right_len(), 3);
        assert_eq!(b.edge_count(), 3);
        assert_eq!(b.neighbors(0), &[0, 2]);
        assert_eq!(b.regularity(), None);
    }

    #[test]
    fn regularity_of_double_cover() {
        let g = generators::cycle(5);
        let b = bipartite_double_cover(&g);
        assert_eq!(b.regularity(), Some(2));
    }

    #[test]
    fn factorization_of_cycle_cover() {
        let g = generators::cycle(5);
        let b = bipartite_double_cover(&g);
        let factors = one_factorization(&b).unwrap();
        assert_eq!(factors.len(), 2);
        // Factors are disjoint permutations along edges of g.
        for (l, (&r0, &r1)) in factors[0].iter().zip(&factors[1]).enumerate() {
            assert_ne!(r0, r1);
            assert!(g.has_edge(l, r0));
            assert!(g.has_edge(l, r1));
        }
        for f in &factors {
            let mut seen = [false; 5];
            for &r in f {
                assert!(!seen[r], "factor must be a permutation");
                seen[r] = true;
            }
        }
    }

    #[test]
    fn factorization_of_cubic_covers() {
        for g in [generators::petersen(), generators::no_one_factor(3)] {
            let b = bipartite_double_cover(&g);
            let factors = one_factorization(&b).unwrap();
            assert_eq!(factors.len(), 3);
            let n = g.len();
            let mut used = std::collections::HashSet::new();
            for f in &factors {
                for (l, &r) in f.iter().enumerate() {
                    assert!(g.has_edge(l, r));
                    assert!(used.insert((l, r)), "factors must be edge-disjoint");
                }
            }
            assert_eq!(used.len(), 3 * n);
        }
    }

    #[test]
    fn factorization_rejects_unbalanced_and_irregular() {
        let b = Bipartite::new(2, 3);
        assert_eq!(one_factorization(&b), Err(MatchingError::UnbalancedBipartite));
        let mut b = Bipartite::new(2, 2);
        b.add_edge(0, 0);
        assert_eq!(one_factorization(&b), Err(MatchingError::NotRegular));
    }

    #[test]
    fn has_one_factor_examples() {
        assert!(has_one_factor(&generators::cycle(4)));
        assert!(!has_one_factor(&generators::cycle(5)));
        assert!(has_one_factor(&generators::complete(6)));
        assert!(!has_one_factor(&generators::star(3)));
        assert!(has_one_factor(&generators::hypercube(3)));
    }

    #[test]
    fn brute_force_sizes() {
        assert_eq!(brute_force_matching_size(&generators::path(4)), 2);
        assert_eq!(brute_force_matching_size(&generators::cycle(5)), 2);
        assert_eq!(brute_force_matching_size(&generators::star(4)), 1);
    }
}
