//! Interned-signature partition refinement: the shared engine behind
//! colour refinement (1-WL, [`crate::refinement`]) and (graded)
//! bisimulation refinement (`portnum-logic`'s `bisim` module).
//!
//! Both algorithms are instances of one primitive: starting from an
//! initial partition, repeatedly replace each node's block with an
//! *interned signature* — the previous block plus, per relation, the
//! (multi)set of successor blocks — until the partition stops changing.
//!
//! # Design
//!
//! The engine avoids the classic performance traps of signature
//! refinement:
//!
//! * **No per-node allocation.** A signature is encoded as a run of `u64`
//!   words in a scratch buffer owned by the [`Refiner`]; interning a
//!   signature allocates only when the signature is *new* (at most once
//!   per output block per round, not once per node).
//! * **Cheap hashing.** The intern table is a `HashMap` keyed by the
//!   encoded word slice under [`FxHasher`], a multiply-xor hash that is
//!   an order of magnitude cheaper than SipHash on short integer keys and
//!   needs no DoS resistance here (inputs are our own block ids).
//! * **First-seen canonical ids.** Output block ids are assigned in first
//!   scan order, so a refinement round is a no-op exactly when
//!   `next == prev` element-wise — stability detection is a memcmp, and
//!   partitions produced by different front-ends (1-WL, bisimulation) are
//!   directly comparable.
//!
//! The scratch buffers are reused across rounds; a full refinement run
//! performs O(blocks-per-round) allocations in total.
//!
//! # Parallel rounds
//!
//! Signature *encoding* (gather successor blocks, sort, flatten to
//! words) only reads the previous partition, so it is embarrassingly
//! parallel over nodes; only the *interning* step needs the shared
//! table. [`parallel_encode`] runs the encode phase on the persistent
//! worker pool ([`crate::pool::WorkerPool`]), each chunk filling its
//! own [`SignatureBuffer`] for a contiguous node range; the caller then
//! walks the buffers in node order calling [`Refiner::commit_slice`],
//! which preserves the first-seen canonical id order of the sequential
//! engine exactly. Front-ends gate this on a size threshold — waking
//! the pool costs a few microseconds, which only pays off once a round
//! encodes a few thousand signature words. The `PORTNUM_POOL`
//! environment variable overrides the gate (see [`threads_for`]).

use crate::pool::WorkerPool;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// The Fx (Firefox/rustc) hash function: multiply-xor over input words.
///
/// Vendored because the build environment is offline; identical in spirit
/// to the `rustc-hash` crate's `FxHasher` (not guaranteed bit-identical —
/// nothing here persists hashes).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.add_word(word);
    }

    #[inline]
    fn write_usize(&mut self, word: usize) {
        self.add_word(word as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Whether successor blocks are recorded as a set or as a multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counting {
    /// Record each distinct successor block once (plain bisimulation /
    /// set-based signatures).
    Distinct,
    /// Record each distinct successor block with its multiplicity
    /// (graded bisimulation / 1-WL colour refinement).
    Multiset,
}

/// Reusable state for one partition-refinement run.
///
/// Usage per round: call [`Refiner::begin_round`], then for each node in
/// order call [`Refiner::begin_signature`], any number of
/// [`Refiner::push_blocks`] / [`Refiner::push_word`] calls, and
/// [`Refiner::commit`] to obtain the node's next block id.
#[derive(Debug, Default)]
pub struct Refiner {
    table: FxHashMap<Box<[u64]>, usize>,
    scratch: Vec<u64>,
}

impl Refiner {
    /// A fresh refiner.
    pub fn new() -> Refiner {
        Refiner::default()
    }

    /// Assigns dense first-seen ids to `keys`, producing the initial
    /// partition (one block per distinct key).
    pub fn seed_partition(&mut self, keys: impl Iterator<Item = u64>) -> Vec<usize> {
        self.table.clear();
        let table = &mut self.table;
        keys.map(|key| {
            // Probe before inserting so repeated keys (the common case)
            // allocate nothing, matching `commit`.
            if let Some(&id) = table.get([key].as_slice()) {
                return id;
            }
            let id = table.len();
            table.insert(Box::from([key]), id);
            id
        })
        .collect()
    }

    /// Starts a refinement round, forgetting the previous round's interned
    /// signatures but keeping allocated capacity where possible.
    pub fn begin_round(&mut self) {
        self.table.clear();
    }

    /// Starts a node's signature with the node's previous block id.
    pub fn begin_signature(&mut self, prev_block: usize) {
        self.scratch.clear();
        self.scratch.push(prev_block as u64);
    }

    /// Appends a raw word to the current signature (relation separators,
    /// extra valuation data, …).
    pub fn push_word(&mut self, word: u64) {
        self.scratch.push(word);
    }

    /// Appends one relation's successor blocks to the current signature.
    ///
    /// `blocks` is consumed in arbitrary order (it is sorted internally)
    /// and left cleared, ready for reuse. The encoding is prefix-free per
    /// relation: a count of entries followed by the entries, so adjacent
    /// relations cannot be confused.
    pub fn push_blocks(&mut self, blocks: &mut Vec<usize>, counting: Counting) {
        encode_blocks(&mut self.scratch, blocks, counting);
    }

    /// Interns the current signature, returning its dense block id
    /// (first-seen order within the round).
    pub fn commit(&mut self) -> usize {
        if let Some(&id) = self.table.get(self.scratch.as_slice()) {
            return id;
        }
        let id = self.table.len();
        self.table.insert(self.scratch.as_slice().into(), id);
        id
    }

    /// Interns a pre-encoded signature (as produced by a
    /// [`SignatureBuffer`]), returning its dense block id. Equivalent to
    /// encoding the same words via
    /// [`begin_signature`](Refiner::begin_signature)/…/[`commit`](Refiner::commit).
    pub fn commit_slice(&mut self, signature: &[u64]) -> usize {
        if let Some(&id) = self.table.get(signature) {
            return id;
        }
        let id = self.table.len();
        self.table.insert(signature.into(), id);
        id
    }

    /// Number of blocks interned so far this round.
    pub fn block_count(&self) -> usize {
        self.table.len()
    }
}

/// Flattens one relation's successor blocks into `out` using the shared
/// prefix-free encoding: a distinct-count slot, then `(block)` or
/// `(block, multiplicity)` runs in sorted order. `blocks` is sorted in
/// place and left cleared for reuse.
fn encode_blocks(out: &mut Vec<u64>, blocks: &mut Vec<usize>, counting: Counting) {
    blocks.sort_unstable();
    // Reserve the count slot, then append (block, multiplicity) runs.
    let count_slot = out.len();
    out.push(0);
    let mut distinct = 0u64;
    let mut i = 0;
    while i < blocks.len() {
        let b = blocks[i];
        let mut mult = 1u64;
        while i + 1 < blocks.len() && blocks[i + 1] == b {
            mult += 1;
            i += 1;
        }
        i += 1;
        distinct += 1;
        out.push(b as u64);
        if counting == Counting::Multiset {
            out.push(mult);
        }
    }
    out[count_slot] = distinct;
    blocks.clear();
}

/// A chunk-local run of encoded signatures for the parallel encode phase.
///
/// One thread fills one buffer for a contiguous node range: per node,
/// [`begin`](SignatureBuffer::begin), any number of
/// [`push_blocks`](SignatureBuffer::push_blocks) /
/// [`push_word`](SignatureBuffer::push_word) calls (the same encoding the
/// [`Refiner`] uses), then [`end`](SignatureBuffer::end). The buffer's
/// backing storage is reused across rounds.
#[derive(Debug, Default)]
pub struct SignatureBuffer {
    words: Vec<u64>,
    /// Prefix bounds: signature `i` is `words[bounds[i]..bounds[i + 1]]`.
    bounds: Vec<usize>,
    /// Scratch for gathering successor blocks, reused across nodes.
    blocks: Vec<usize>,
}

impl SignatureBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> SignatureBuffer {
        SignatureBuffer::default()
    }

    /// Drops all encoded signatures, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.bounds.clear();
    }

    /// Starts the next node's signature with its previous block id.
    pub fn begin(&mut self, prev_block: usize) {
        if self.bounds.is_empty() {
            self.bounds.push(0);
        }
        self.words.push(prev_block as u64);
    }

    /// Appends a raw word to the current signature.
    pub fn push_word(&mut self, word: u64) {
        self.words.push(word);
    }

    /// Appends one relation's successor blocks to the current signature
    /// (same encoding as [`Refiner::push_blocks`]).
    pub fn push_blocks(&mut self, blocks: &mut Vec<usize>, counting: Counting) {
        encode_blocks(&mut self.words, blocks, counting);
    }

    /// The internal successor-gather scratch vector (empty between
    /// nodes); gather into it, then pass it to
    /// [`push_blocks`](SignatureBuffer::push_blocks).
    pub fn blocks_scratch(&mut self) -> &mut Vec<usize> {
        &mut self.blocks
    }

    /// Finishes the current node's signature.
    pub fn end(&mut self) {
        self.bounds.push(self.words.len());
    }

    /// Number of complete signatures in the buffer.
    pub fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Returns `true` if the buffer holds no complete signature.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th encoded signature.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn signature(&self, i: usize) -> &[u64] {
        &self.words[self.bounds[i]..self.bounds[i + 1]]
    }
}

/// Minimum signature words of per-round encode work before refinement
/// front-ends parallelise the encode phase.
///
/// A parallel round costs one wake-up of the persistent pool
/// ([`crate::pool`]) — a few microseconds, not the ~100µs of the old
/// per-round scoped-thread spawns — so the gate sits an order of
/// magnitude lower than it used to (2¹³ words, down from 2¹⁶). Gating
/// on work rather than node count protects the worst shape —
/// long-diameter models take Θ(diameter) rounds, each individually
/// cheap.
pub const PARALLEL_THRESHOLD: usize = 1 << 13;

/// Number of worker threads the refinement front-ends use for the encode
/// phase (the host's available parallelism, 1 if unknown).
pub fn encode_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How the `PORTNUM_POOL` environment variable overrides the parallel
/// work gate, parsed once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolMode {
    /// No override: gate on [`PARALLEL_THRESHOLD`].
    Auto,
    /// Always parallel (≥ 2 threads even on single-core hosts) — lets
    /// 1-core CI runners exercise every pool-driven code path.
    Force,
    /// Never parallel.
    Off,
}

fn pool_mode() -> PoolMode {
    static MODE: OnceLock<PoolMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("PORTNUM_POOL").as_deref() {
        Ok("force") => PoolMode::Force,
        Ok("off") => PoolMode::Off,
        Ok("auto") | Err(_) => PoolMode::Auto,
        // A typo (e.g. "forced") silently falling back to Auto would
        // defeat the CI step that forces the pool on — fail loudly.
        Ok(other) => panic!("unrecognised PORTNUM_POOL value {other:?} (use force, off, or auto)"),
    })
}

/// Worker threads for a parallel phase doing `work` words of per-call
/// work (for refinement this is roughly nodes + stored successor
/// pairs): [`encode_threads`] at or above [`PARALLEL_THRESHOLD`], 1
/// (sequential) below it. The single gate shared by every parallel
/// front-end (refinement rounds *and* plan execution) so the engines
/// cannot diverge on tuning.
///
/// Setting the `PORTNUM_POOL` environment variable overrides the gate:
/// `force` always parallelises (with at least 2 threads, so single-core
/// CI runners still drive the pool), `off` never does.
pub fn threads_for(work: usize) -> usize {
    match pool_mode() {
        PoolMode::Force => encode_threads().max(2),
        PoolMode::Off => 1,
        PoolMode::Auto => {
            if work >= PARALLEL_THRESHOLD {
                encode_threads()
            } else {
                1
            }
        }
    }
}

/// Splits `0..n` into at most `threads` contiguous ranges at quantiles
/// of a cumulative work function (`cum(i)` = total work of items
/// `0..i`; nondecreasing with `cum(0) == 0`), each boundary rounded
/// down to a multiple of `align`. Empty ranges are dropped, and the
/// ranges always cover `0..n` exactly (the last boundary is pinned to
/// `n`).
///
/// This is the one work-balanced splitter behind every parallel phase:
/// the refinement encode split (`align = 1`, CSR-derived work), and
/// the plan executor's bitset fills (`align = 64`, so chunks own
/// disjoint output words) and `iter_ones` splits (popcount prefix).
/// Keeping them on one implementation keeps their rounding and
/// degenerate-input behaviour from drifting apart.
pub fn quantile_ranges(
    n: usize,
    threads: usize,
    align: usize,
    cum: impl Fn(usize) -> usize,
) -> Vec<Range<usize>> {
    let threads = threads.max(1);
    let total = cum(n);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 0..threads {
        let end = if i + 1 == threads {
            n
        } else {
            // First boundary whose cumulative work reaches this
            // chunk's quantile, rounded down to the alignment.
            let target = (total * (i + 1)).div_ceil(threads);
            let (mut lo, mut hi) = (start, n);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if cum(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            (lo / align * align).clamp(start, n)
        };
        if end > start {
            ranges.push(start..end);
            start = end;
        }
    }
    ranges
}

/// Runs one round's encode phase in parallel: splits `0..n` into up to
/// `threads` contiguous chunks **of equal node count** and calls
/// `encode(range, buffer)` for each on the worker pool. `buffers`
/// is resized to the chunk count and cleared; storage persists across
/// calls so repeated rounds reuse capacity.
///
/// On degree-skewed inputs equal node ranges are a poor split — one hub
/// world's signature can dominate a round and serialise it behind a
/// single thread. When per-node work is known, prefer
/// [`parallel_encode_weighted`], which splits at work quantiles.
///
/// The caller completes the round by interning every buffered signature
/// **in node order** via [`Refiner::commit_slice`]; since ids are
/// first-seen, the result is bit-identical to the sequential path.
pub fn parallel_encode<F>(n: usize, threads: usize, buffers: &mut Vec<SignatureBuffer>, encode: F)
where
    F: Fn(Range<usize>, &mut SignatureBuffer) + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    encode_ranges(quantile_ranges(n, threads, 1, |i| i), buffers, encode);
}

/// Work-balanced variant of [`parallel_encode`]: `work` is the
/// prefix-sum array of per-node encode work (`work[v + 1] - work[v]` ≈
/// signature words node `v` will emit; `work.len() == n + 1`), and
/// chunk boundaries are placed at work quantiles instead of equal node
/// counts, so a hub node no longer serialises the round behind one
/// thread. Refinement front-ends derive `work` from the CSR offsets
/// they already hold.
///
/// Chunks remain contiguous and in node order, so the sequential intern
/// phase — and therefore every block id — is unchanged.
///
/// # Panics
///
/// Panics if `work` is empty (it must have an entry per node plus the
/// leading zero).
pub fn parallel_encode_weighted<F>(
    work: &[usize],
    threads: usize,
    buffers: &mut Vec<SignatureBuffer>,
    encode: F,
) where
    F: Fn(Range<usize>, &mut SignatureBuffer) + Sync,
{
    let n = work.len().checked_sub(1).expect("work must be a prefix-sum array of length n + 1");
    let threads = threads.clamp(1, n.max(1));
    encode_ranges(quantile_ranges(n, threads, 1, |i| work[i]), buffers, encode);
}

/// Shared pool fan-out over precomputed contiguous ranges: chunk `i`
/// encodes `ranges[i]` into `buffers[i]`, whichever pool thread picks
/// it up — the buffer↔range pairing (and therefore the intern order)
/// is fixed up front, so the output is deterministic.
fn encode_ranges<F>(ranges: Vec<Range<usize>>, buffers: &mut Vec<SignatureBuffer>, encode: F)
where
    F: Fn(Range<usize>, &mut SignatureBuffer) + Sync,
{
    buffers.resize_with(ranges.len(), SignatureBuffer::default);
    if ranges.len() == 1 {
        // One chunk needs no pool round-trip.
        buffers[0].clear();
        if !ranges[0].is_empty() {
            encode(ranges[0].clone(), &mut buffers[0]);
        }
        return;
    }
    let slots: Vec<Mutex<&mut SignatureBuffer>> = buffers.iter_mut().map(Mutex::new).collect();
    WorkerPool::global().run(ranges.len(), &|i| {
        let mut buffer = slots[i].lock().expect("pool chunks panicked");
        buffer.clear();
        if !ranges[i].is_empty() {
            encode(ranges[i].clone(), &mut buffer);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_assigns_first_seen_ids() {
        let mut r = Refiner::new();
        let part = r.seed_partition([3u64, 1, 3, 2, 1].into_iter());
        assert_eq!(part, vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn identical_signatures_share_a_block() {
        let mut r = Refiner::new();
        r.begin_round();
        let mut blocks = vec![2, 1, 1];
        r.begin_signature(0);
        r.push_blocks(&mut blocks, Counting::Multiset);
        let a = r.commit();
        let mut blocks = vec![1, 2, 1]; // same multiset, different order
        r.begin_signature(0);
        r.push_blocks(&mut blocks, Counting::Multiset);
        let b = r.commit();
        assert_eq!(a, b);
        assert_eq!(r.block_count(), 1);
    }

    #[test]
    fn counting_mode_distinguishes_multiplicity() {
        let mut r = Refiner::new();
        r.begin_round();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1, 1], Counting::Multiset);
        let a = r.commit();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1], Counting::Multiset);
        let b = r.commit();
        assert_ne!(a, b, "multisets count");

        r.begin_round();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1, 1], Counting::Distinct);
        let c = r.commit();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1], Counting::Distinct);
        let d = r.commit();
        assert_eq!(c, d, "sets do not count");
    }

    #[test]
    fn relation_boundaries_are_unambiguous() {
        // {1},{} vs {},{1} across two relations must differ.
        let mut r = Refiner::new();
        r.begin_round();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1], Counting::Multiset);
        r.push_blocks(&mut Vec::new(), Counting::Multiset);
        let a = r.commit();
        r.begin_signature(0);
        r.push_blocks(&mut Vec::new(), Counting::Multiset);
        r.push_blocks(&mut vec![1], Counting::Multiset);
        let b = r.commit();
        assert_ne!(a, b);
    }

    #[test]
    fn buffers_are_returned_cleared() {
        let mut r = Refiner::new();
        r.begin_round();
        let mut blocks = vec![5, 4];
        r.begin_signature(1);
        r.push_blocks(&mut blocks, Counting::Multiset);
        assert!(blocks.is_empty());
        let _ = r.commit();
    }

    #[test]
    fn commit_slice_matches_incremental_commit() {
        let mut r = Refiner::new();
        r.begin_round();
        r.begin_signature(3);
        r.push_blocks(&mut vec![7, 7, 2], Counting::Multiset);
        let incremental = r.commit();

        let mut buf = SignatureBuffer::new();
        buf.begin(3);
        buf.push_blocks(&mut vec![2, 7, 7], Counting::Multiset);
        buf.end();
        assert_eq!(r.commit_slice(buf.signature(0)), incremental);
        assert_eq!(r.block_count(), 1);
    }

    #[test]
    fn signature_buffer_bounds() {
        let mut buf = SignatureBuffer::new();
        assert!(buf.is_empty());
        buf.begin(0);
        buf.push_word(9);
        buf.end();
        buf.begin(1);
        buf.end();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.signature(0), &[0, 9]);
        assert_eq!(buf.signature(1), &[1]);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn parallel_encode_covers_all_nodes_in_order() {
        // Encode node ids over 3 threads; walking the buffers in order
        // must reproduce 0..n exactly once each.
        let n = 17;
        let mut buffers = Vec::new();
        parallel_encode(n, 3, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let flat: Vec<u64> = buffers
            .iter()
            .flat_map(|b| (0..b.len()).map(|i| b.signature(i)[0]))
            .collect();
        assert_eq!(flat, (0..n as u64).collect::<Vec<_>>());
        // Re-running with fewer nodes reuses and re-clears the buffers.
        parallel_encode(5, 3, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let total: usize = buffers.iter().map(SignatureBuffer::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn weighted_encode_covers_all_nodes_in_order() {
        // Hub-heavy work: node 0 carries almost everything. The split
        // must still cover 0..n exactly once, in order.
        let n = 16usize;
        let mut work = vec![0usize; n + 1];
        for v in 0..n {
            work[v + 1] = work[v] + if v == 0 { 1000 } else { 1 };
        }
        let mut buffers = Vec::new();
        parallel_encode_weighted(&work, 4, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let flat: Vec<u64> = buffers
            .iter()
            .flat_map(|b| (0..b.len()).map(|i| b.signature(i)[0]))
            .collect();
        assert_eq!(flat, (0..n as u64).collect::<Vec<_>>());
        // The hub is isolated in its own chunk instead of dragging a
        // quarter of the nodes with it.
        assert_eq!(buffers[0].len(), 1, "hub chunk holds only the hub");
    }

    #[test]
    fn weighted_encode_balances_uniform_work_like_equal_ranges() {
        let n = 24usize;
        let work: Vec<usize> = (0..=n).collect(); // unit work per node
        let mut weighted = Vec::new();
        parallel_encode_weighted(&work, 3, &mut weighted, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        assert!(weighted.iter().all(|b| b.len() == 8), "uniform work splits evenly");
        // Zero-work arrays degenerate gracefully (everything in the
        // last chunk, nothing lost).
        let zeros = vec![0usize; n + 1];
        let mut buffers = Vec::new();
        parallel_encode_weighted(&zeros, 3, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let total: usize = buffers.iter().map(SignatureBuffer::len).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn fxhash_is_stable_and_spreads() {
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            i.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000, "no collisions on small consecutive keys");
    }
}
