//! Partition refinement engines: the shared machinery behind colour
//! refinement (1-WL, [`crate::refinement`]) and (graded) bisimulation
//! refinement (`portnum-logic`'s `bisim` module).
//!
//! Both algorithms are instances of one primitive: starting from an
//! initial partition, repeatedly replace each node's block with an
//! *interned signature* — the previous block plus, per relation, the
//! (multi)set of successor blocks — until the partition stops changing.
//! Two engines implement it, selected by the `PORTNUM_REFINE`
//! environment variable (see [`refine_engine_choice`]) and pinned
//! against each other by differential tests:
//!
//! * [`WorklistRefiner`] (default) — incremental, Paige–Tarjan-style:
//!   per round only the *dirty frontier* (predecessors of nodes that
//!   split off last round) is re-signed, so near-stable rounds cost
//!   O(changed) instead of O(n). Long-diameter models drop from
//!   Θ(n·rounds) total work to O(n + edges)-ish.
//! * [`Refiner`] driven by a front-end loop — the full-round reference:
//!   every node re-signed every round. Simpler, marginally faster on
//!   models that stabilise in O(1) rounds, and the differential-testing
//!   baseline.
//!
//! # Design
//!
//! The engine avoids the classic performance traps of signature
//! refinement:
//!
//! * **No per-node allocation.** A signature is encoded as a run of `u64`
//!   words in a scratch buffer owned by the [`Refiner`]; interning a
//!   signature allocates only when the signature is *new* (at most once
//!   per output block per round, not once per node).
//! * **Cheap hashing.** The intern table is a `HashMap` keyed by the
//!   encoded word slice under [`FxHasher`], a multiply-xor hash that is
//!   an order of magnitude cheaper than SipHash on short integer keys and
//!   needs no DoS resistance here (inputs are our own block ids).
//! * **First-seen canonical ids.** Output block ids are assigned in first
//!   scan order, so a refinement round is a no-op exactly when
//!   `next == prev` element-wise — stability detection is a memcmp, and
//!   partitions produced by different front-ends (1-WL, bisimulation) are
//!   directly comparable.
//!
//! The scratch buffers are reused across rounds; a full refinement run
//! performs O(blocks-per-round) allocations in total.
//!
//! # Parallel rounds
//!
//! Signature *encoding* (gather successor blocks, sort, flatten to
//! words) only reads the previous partition, so it is embarrassingly
//! parallel over nodes; only the *interning* step needs the shared
//! table. [`parallel_encode`] runs the encode phase on the persistent
//! worker pool ([`crate::pool::WorkerPool`]), each chunk filling its
//! own [`SignatureBuffer`] for a contiguous node range; the caller then
//! walks the buffers in node order calling [`Refiner::commit_slice`],
//! which preserves the first-seen canonical id order of the sequential
//! engine exactly. Front-ends gate this on a size threshold — waking
//! the pool costs a few microseconds, which only pays off once a round
//! encodes a few thousand signature words. The `PORTNUM_POOL`
//! environment variable overrides the gate (see [`threads_for`]).
//!
//! # Environment variables
//!
//! | variable | values | read by |
//! |----------|--------|---------|
//! | `PORTNUM_POOL` | `auto` (default) / `force` / `off` | [`threads_for`] — the parallel work gate shared by refinement rounds and plan execution |
//! | `PORTNUM_REFINE` | `worklist` (default) / `rounds` | [`refine_engine_choice`] — which engine drives `bisim::refine*`, 1-WL, and the quotient cache |
//!
//! Both are parsed once per process and panic on unrecognised values,
//! so a typo cannot silently select the default in a CI job that pins
//! a mode. See `ARCHITECTURE.md` for the full reference.

use crate::csc::CscAdjacency;
use crate::pool::WorkerPool;
use crate::resilience::{ExecControl, Interrupted};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// The Fx (Firefox/rustc) hash function: multiply-xor over input words.
///
/// Vendored because the build environment is offline; identical in spirit
/// to the `rustc-hash` crate's `FxHasher` (not guaranteed bit-identical —
/// nothing here persists hashes).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, word: u64) {
        self.add_word(word);
    }

    #[inline]
    fn write_usize(&mut self, word: usize) {
        self.add_word(word as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Whether successor blocks are recorded as a set or as a multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counting {
    /// Record each distinct successor block once (plain bisimulation /
    /// set-based signatures).
    Distinct,
    /// Record each distinct successor block with its multiplicity
    /// (graded bisimulation / 1-WL colour refinement).
    Multiset,
}

/// Reusable state for one partition-refinement run.
///
/// Usage per round: call [`Refiner::begin_round`], then for each node in
/// order call [`Refiner::begin_signature`], any number of
/// [`Refiner::push_blocks`] / [`Refiner::push_word`] calls, and
/// [`Refiner::commit`] to obtain the node's next block id.
#[derive(Debug, Default)]
pub struct Refiner {
    table: FxHashMap<Box<[u64]>, usize>,
    scratch: Vec<u64>,
}

impl Refiner {
    /// A fresh refiner.
    pub fn new() -> Refiner {
        Refiner::default()
    }

    /// Assigns dense first-seen ids to `keys`, producing the initial
    /// partition (one block per distinct key).
    pub fn seed_partition(&mut self, keys: impl Iterator<Item = u64>) -> Vec<usize> {
        self.table.clear();
        let table = &mut self.table;
        keys.map(|key| {
            // Probe before inserting so repeated keys (the common case)
            // allocate nothing, matching `commit`.
            if let Some(&id) = table.get([key].as_slice()) {
                return id;
            }
            let id = table.len();
            table.insert(Box::from([key]), id);
            id
        })
        .collect()
    }

    /// Starts a refinement round, forgetting the previous round's interned
    /// signatures but keeping allocated capacity where possible.
    pub fn begin_round(&mut self) {
        self.table.clear();
    }

    /// Starts a node's signature with the node's previous block id.
    pub fn begin_signature(&mut self, prev_block: usize) {
        self.scratch.clear();
        self.scratch.push(prev_block as u64);
    }

    /// Appends a raw word to the current signature (relation separators,
    /// extra valuation data, …).
    pub fn push_word(&mut self, word: u64) {
        self.scratch.push(word);
    }

    /// Appends one relation's successor blocks to the current signature.
    ///
    /// `blocks` is consumed in arbitrary order (it is sorted internally)
    /// and left cleared, ready for reuse. The encoding is prefix-free per
    /// relation: a count of entries followed by the entries, so adjacent
    /// relations cannot be confused.
    pub fn push_blocks(&mut self, blocks: &mut Vec<usize>, counting: Counting) {
        encode_blocks(&mut self.scratch, blocks, counting);
    }

    /// Interns the current signature, returning its dense block id
    /// (first-seen order within the round).
    pub fn commit(&mut self) -> usize {
        if let Some(&id) = self.table.get(self.scratch.as_slice()) {
            return id;
        }
        let id = self.table.len();
        self.table.insert(self.scratch.as_slice().into(), id);
        id
    }

    /// Interns a pre-encoded signature (as produced by a
    /// [`SignatureBuffer`]), returning its dense block id. Equivalent to
    /// encoding the same words via
    /// [`begin_signature`](Refiner::begin_signature)/…/[`commit`](Refiner::commit).
    pub fn commit_slice(&mut self, signature: &[u64]) -> usize {
        if let Some(&id) = self.table.get(signature) {
            return id;
        }
        let id = self.table.len();
        self.table.insert(signature.into(), id);
        id
    }

    /// Number of blocks interned so far this round.
    pub fn block_count(&self) -> usize {
        self.table.len()
    }
}

/// Flattens one relation's successor blocks into `out` using the shared
/// prefix-free encoding: a distinct-count slot, then `(block)` or
/// `(block, multiplicity)` runs in sorted order. `blocks` is sorted in
/// place and left cleared for reuse.
fn encode_blocks(out: &mut Vec<u64>, blocks: &mut Vec<usize>, counting: Counting) {
    blocks.sort_unstable();
    // Reserve the count slot, then append (block, multiplicity) runs.
    let count_slot = out.len();
    out.push(0);
    let mut distinct = 0u64;
    let mut i = 0;
    while i < blocks.len() {
        let b = blocks[i];
        let mut mult = 1u64;
        while i + 1 < blocks.len() && blocks[i + 1] == b {
            mult += 1;
            i += 1;
        }
        i += 1;
        distinct += 1;
        out.push(b as u64);
        if counting == Counting::Multiset {
            out.push(mult);
        }
    }
    out[count_slot] = distinct;
    blocks.clear();
}

/// A chunk-local run of encoded signatures for the parallel encode phase.
///
/// One thread fills one buffer for a contiguous node range: per node,
/// [`begin`](SignatureBuffer::begin), any number of
/// [`push_blocks`](SignatureBuffer::push_blocks) /
/// [`push_word`](SignatureBuffer::push_word) calls (the same encoding the
/// [`Refiner`] uses), then [`end`](SignatureBuffer::end). The buffer's
/// backing storage is reused across rounds.
#[derive(Debug, Default)]
pub struct SignatureBuffer {
    words: Vec<u64>,
    /// Prefix bounds: signature `i` is `words[bounds[i]..bounds[i + 1]]`.
    bounds: Vec<usize>,
    /// Scratch for gathering successor blocks, reused across nodes.
    blocks: Vec<usize>,
}

impl SignatureBuffer {
    /// A fresh, empty buffer.
    pub fn new() -> SignatureBuffer {
        SignatureBuffer::default()
    }

    /// Drops all encoded signatures, keeping capacity.
    pub fn clear(&mut self) {
        self.words.clear();
        self.bounds.clear();
    }

    /// Starts the next node's signature with its previous block id.
    pub fn begin(&mut self, prev_block: usize) {
        if self.bounds.is_empty() {
            self.bounds.push(0);
        }
        self.words.push(prev_block as u64);
    }

    /// Appends a raw word to the current signature.
    pub fn push_word(&mut self, word: u64) {
        self.words.push(word);
    }

    /// Appends one relation's successor blocks to the current signature
    /// (same encoding as [`Refiner::push_blocks`]).
    pub fn push_blocks(&mut self, blocks: &mut Vec<usize>, counting: Counting) {
        encode_blocks(&mut self.words, blocks, counting);
    }

    /// The internal successor-gather scratch vector (empty between
    /// nodes); gather into it, then pass it to
    /// [`push_blocks`](SignatureBuffer::push_blocks).
    pub fn blocks_scratch(&mut self) -> &mut Vec<usize> {
        &mut self.blocks
    }

    /// Finishes the current node's signature.
    pub fn end(&mut self) {
        self.bounds.push(self.words.len());
    }

    /// Number of complete signatures in the buffer.
    pub fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Returns `true` if the buffer holds no complete signature.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th encoded signature.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn signature(&self, i: usize) -> &[u64] {
        &self.words[self.bounds[i]..self.bounds[i + 1]]
    }
}

/// Minimum signature words of per-round encode work before refinement
/// front-ends parallelise the encode phase.
///
/// A parallel round costs one wake-up of the persistent pool
/// ([`crate::pool`]) — a few microseconds, not the ~100µs of the old
/// per-round scoped-thread spawns — so the gate sits an order of
/// magnitude lower than it used to (2¹³ words, down from 2¹⁶). Gating
/// on work rather than node count protects the worst shape —
/// long-diameter models take Θ(diameter) rounds, each individually
/// cheap.
pub const PARALLEL_THRESHOLD: usize = 1 << 13;

/// Number of worker threads the refinement front-ends use for the encode
/// phase (the host's available parallelism, 1 if unknown).
///
/// Cached for the life of the process: on Linux
/// [`std::thread::available_parallelism`] re-reads the cgroup CPU quota
/// files on every call (several microseconds of file I/O), and this
/// function sits on the per-instruction path of the plan executor —
/// uncached it costs more than the pool dispatch it is sizing.
pub fn encode_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// How the `PORTNUM_POOL` environment variable overrides the parallel
/// work gate, parsed once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolMode {
    /// No override: gate on [`PARALLEL_THRESHOLD`].
    Auto,
    /// Always parallel (≥ 2 threads even on single-core hosts) — lets
    /// 1-core CI runners exercise every pool-driven code path.
    Force,
    /// Never parallel.
    Off,
}

fn pool_mode() -> PoolMode {
    static MODE: OnceLock<PoolMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("PORTNUM_POOL").as_deref() {
        Ok("force") => PoolMode::Force,
        Ok("off") => PoolMode::Off,
        Ok("auto") | Err(_) => PoolMode::Auto,
        // A typo (e.g. "forced") silently falling back to Auto would
        // defeat the CI step that forces the pool on — fail loudly.
        Ok(other) => panic!("unrecognised PORTNUM_POOL value {other:?} (use force, off, or auto)"),
    })
}

/// Words of sweep/encode work one core retires per microsecond — a
/// deliberately conservative estimate used only to convert the pool's
/// *measured* dispatch cost ([`crate::pool::WorkerPool::dispatch_cost_ns`],
/// nanoseconds) into the same unit as [`PARALLEL_THRESHOLD`] (words).
/// Underestimating throughput overestimates the break-even floor,
/// which errs on the safe (sequential) side for borderline calls.
const WORDS_PER_US: u64 = 1024;

/// The calibrated minimum work (in words) at which a pool fan-out can
/// pay for its own dispatch: parallelising saves at most the whole
/// sequential runtime, so the work must be worth at least ~2× the
/// measured per-call coordination cost before going parallel wins.
/// Never below the static [`PARALLEL_THRESHOLD`], which remains the
/// cheap first gate (checking it does not touch — or lazily create —
/// the global pool).
pub fn parallel_floor_words() -> usize {
    let cost_ns = crate::pool::WorkerPool::global().dispatch_cost_ns();
    let floor = (2 * cost_ns * WORDS_PER_US / 1000) as usize;
    PARALLEL_THRESHOLD.max(floor)
}

/// Worker threads for a parallel phase doing `work` words of per-call
/// work (for refinement this is roughly nodes + stored successor
/// pairs): [`encode_threads`] at or above the parallel floor, 1
/// (sequential) below it. The floor is the static
/// [`PARALLEL_THRESHOLD`] raised to the *measured* break-even point of
/// the pool's calibrated dispatch cost ([`parallel_floor_words`]) —
/// work that cannot amortise one real pool round-trip stays
/// sequential. The single gate shared by every parallel front-end
/// (refinement rounds *and* plan execution) so the engines cannot
/// diverge on tuning.
///
/// Setting the `PORTNUM_POOL` environment variable overrides the gate:
/// `force` always parallelises (with at least 2 threads, so single-core
/// CI runners still drive the pool), `off` never does.
pub fn threads_for(work: usize) -> usize {
    match pool_mode() {
        PoolMode::Force => encode_threads().max(2),
        PoolMode::Off => 1,
        PoolMode::Auto => {
            // Static gate first (short-circuit): below it we return
            // without touching — or lazily constructing — the global
            // pool that the calibrated floor would consult.
            if work >= PARALLEL_THRESHOLD && work >= parallel_floor_words() {
                encode_threads()
            } else {
                1
            }
        }
    }
}

/// Splits `0..n` into at most `threads` contiguous ranges at quantiles
/// of a cumulative work function (`cum(i)` = total work of items
/// `0..i`; nondecreasing with `cum(0) == 0`), each boundary rounded
/// down to a multiple of `align`. Empty ranges are dropped, and the
/// ranges always cover `0..n` exactly (the last boundary is pinned to
/// `n`).
///
/// This is the one work-balanced splitter behind every parallel phase:
/// the refinement encode split (`align = 1`, CSR-derived work), and
/// the plan executor's bitset fills (`align = 64`, so chunks own
/// disjoint output words) and `iter_ones` splits (popcount prefix).
/// Keeping them on one implementation keeps their rounding and
/// degenerate-input behaviour from drifting apart.
pub fn quantile_ranges(
    n: usize,
    threads: usize,
    align: usize,
    cum: impl Fn(usize) -> usize,
) -> Vec<Range<usize>> {
    let threads = threads.max(1);
    let total = cum(n);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 0..threads {
        let end = if i + 1 == threads {
            n
        } else {
            // First boundary whose cumulative work reaches this
            // chunk's quantile, rounded down to the alignment.
            let target = (total * (i + 1)).div_ceil(threads);
            let (mut lo, mut hi) = (start, n);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if cum(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            (lo / align * align).clamp(start, n)
        };
        if end > start {
            ranges.push(start..end);
            start = end;
        }
    }
    ranges
}

/// Runs one round's encode phase in parallel: splits `0..n` into up to
/// `threads` contiguous chunks **of equal node count** and calls
/// `encode(range, buffer)` for each on the worker pool. `buffers`
/// is resized to the chunk count and cleared; storage persists across
/// calls so repeated rounds reuse capacity.
///
/// On degree-skewed inputs equal node ranges are a poor split — one hub
/// world's signature can dominate a round and serialise it behind a
/// single thread. When per-node work is known, prefer
/// [`parallel_encode_weighted`], which splits at work quantiles.
///
/// The caller completes the round by interning every buffered signature
/// **in node order** via [`Refiner::commit_slice`]; since ids are
/// first-seen, the result is bit-identical to the sequential path.
pub fn parallel_encode<F>(n: usize, threads: usize, buffers: &mut Vec<SignatureBuffer>, encode: F)
where
    F: Fn(Range<usize>, &mut SignatureBuffer) + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    encode_ranges(quantile_ranges(n, threads, 1, |i| i), buffers, encode);
}

/// Work-balanced variant of [`parallel_encode`]: `work` is the
/// prefix-sum array of per-node encode work (`work[v + 1] - work[v]` ≈
/// signature words node `v` will emit; `work.len() == n + 1`), and
/// chunk boundaries are placed at work quantiles instead of equal node
/// counts, so a hub node no longer serialises the round behind one
/// thread. Refinement front-ends derive `work` from the CSR offsets
/// they already hold.
///
/// Chunks remain contiguous and in node order, so the sequential intern
/// phase — and therefore every block id — is unchanged.
///
/// # Panics
///
/// Panics if `work` is empty (it must have an entry per node plus the
/// leading zero).
pub fn parallel_encode_weighted<F>(
    work: &[usize],
    threads: usize,
    buffers: &mut Vec<SignatureBuffer>,
    encode: F,
) where
    F: Fn(Range<usize>, &mut SignatureBuffer) + Sync,
{
    let n = work.len().checked_sub(1).expect("work must be a prefix-sum array of length n + 1");
    let threads = threads.clamp(1, n.max(1));
    encode_ranges(quantile_ranges(n, threads, 1, |i| work[i]), buffers, encode);
}

/// Shared pool fan-out over precomputed contiguous ranges: chunk `i`
/// encodes `ranges[i]` into `buffers[i]`, whichever pool thread picks
/// it up — the buffer↔range pairing (and therefore the intern order)
/// is fixed up front, so the output is deterministic.
fn encode_ranges<F>(ranges: Vec<Range<usize>>, buffers: &mut Vec<SignatureBuffer>, encode: F)
where
    F: Fn(Range<usize>, &mut SignatureBuffer) + Sync,
{
    buffers.resize_with(ranges.len(), SignatureBuffer::default);
    if ranges.len() == 1 {
        // One chunk needs no pool round-trip.
        buffers[0].clear();
        if !ranges[0].is_empty() {
            encode(ranges[0].clone(), &mut buffers[0]);
        }
        return;
    }
    let slots: Vec<Mutex<&mut SignatureBuffer>> = buffers.iter_mut().map(Mutex::new).collect();
    WorkerPool::global().run(ranges.len(), &|i| {
        let mut buffer = slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        buffer.clear();
        if !ranges[i].is_empty() {
            encode(ranges[i].clone(), &mut buffer);
        }
    });
}

/// Which refinement engine drives the high-level front-ends
/// (`bisim::refine*`, 1-WL [`crate::refinement::color_refinement`]).
///
/// Selected once per process via the `PORTNUM_REFINE` environment
/// variable (`worklist` — the default — or `rounds`); see
/// [`refine_engine_choice`]. The two engines produce identical
/// partitions at every depth (proptest-pinned), so the knob is a
/// performance/debugging switch, not a semantic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineEngine {
    /// Incremental worklist refinement ([`WorklistRefiner`]): each round
    /// re-encodes only the dirty frontier. The default.
    Worklist,
    /// The full-round engine: every node re-signed every round. Kept as
    /// the differential-testing reference.
    Rounds,
}

/// How the `PORTNUM_REFINE` environment variable selects the refinement
/// engine, parsed once per process: `worklist` (default) or `rounds`.
///
/// Like `PORTNUM_POOL`, a typo fails loudly instead of silently falling
/// back — a CI job pinning one engine must not quietly run the other.
pub fn refine_engine_choice() -> RefineEngine {
    static CHOICE: OnceLock<RefineEngine> = OnceLock::new();
    *CHOICE.get_or_init(|| match std::env::var("PORTNUM_REFINE").as_deref() {
        Ok("rounds") => RefineEngine::Rounds,
        Ok("worklist") | Err(_) => RefineEngine::Worklist,
        Ok(other) => {
            panic!("unrecognised PORTNUM_REFINE value {other:?} (use worklist or rounds)")
        }
    })
}

/// Borrowed CSR rows of one relation: successors of node `v` are
/// `targets[offsets[v]..offsets[v + 1]]`, as `u32` node ids.
///
/// The input shape of the [`WorklistRefiner`]; `portnum-logic` hands in
/// its `Kripke::relation_rows` slices directly, and colour refinement
/// packs the adjacency lists of a `Graph` into one relation.
#[derive(Debug, Clone, Copy)]
pub struct RelationCsr<'a> {
    /// Row offsets, length `n + 1`.
    pub offsets: &'a [usize],
    /// Concatenated successor ids.
    pub targets: &'a [u32],
}

/// Builds the nonempty-row index of a set of CSR relations: node `v`'s
/// nonempty rows are `index[bounds[v]..bounds[v + 1]]`, each entry the
/// relation id (the word pushed into signatures) plus the row slice,
/// ascending by relation.
///
/// Empty rows never enter a signature — on many-relation models (K₊,₊
/// stores O(Δ²) relations, almost all rows empty) this shrinks
/// per-round encode work from O(nodes × relations) to O(edges). The
/// index is itself CSR-shaped: two flat passes, two allocations, no
/// per-node `Vec`s. Shared by the full-round front-ends and the
/// [`WorklistRefiner`] so their row enumeration (and therefore their
/// signatures) cannot drift apart.
///
/// # Panics
///
/// Panics if a relation's `offsets` does not have `n + 1` entries.
pub fn nonempty_row_index<'a>(
    n: usize,
    relations: &[RelationCsr<'a>],
) -> (Vec<usize>, Vec<(u64, &'a [u32])>) {
    let mut bounds = vec![0usize; n + 1];
    for rel in relations {
        assert_eq!(rel.offsets.len(), n + 1, "CSR offsets must have n + 1 entries");
        let mut start = rel.offsets[0];
        for v in 0..n {
            let end = rel.offsets[v + 1];
            bounds[v + 1] += (end > start) as usize;
            start = end;
        }
    }
    for v in 0..n {
        bounds[v + 1] += bounds[v];
    }
    const EMPTY_ROW: (u64, &[u32]) = (0, &[]);
    let mut index = vec![EMPTY_ROW; bounds[n]];
    let mut cursor = bounds.clone();
    for (r, rel) in relations.iter().enumerate() {
        let mut start = rel.offsets[0];
        for v in 0..n {
            let end = rel.offsets[v + 1];
            if end > start {
                index[cursor[v]] = (r as u64, &rel.targets[start..end]);
                cursor[v] += 1;
            }
            start = end;
        }
    }
    (bounds, index)
}

/// Signature words node `v` emits when encoded against a
/// [`nonempty_row_index`]: the previous-block word plus, per nonempty
/// row, the relation id, the count slot, and the successor entries.
/// Only *relative* weights matter for the work-quantile splits, so
/// multiplicity words are not modelled. One definition for both
/// engines keeps their parallel-gate accounting identical.
pub fn encode_work(bounds: &[usize], index: &[(u64, &[u32])], v: usize) -> usize {
    1 + index[bounds[v]..bounds[v + 1]].iter().map(|&(_, row)| 2 + row.len()).sum::<usize>()
}

/// Observability counters of a [`WorklistRefiner`] run.
///
/// `encoded` is the *touched-world* counter: the total number of
/// signature encodes across all rounds. The full-round engine would
/// count exactly `n · rounds`; the point of the worklist engine is that
/// on long-diameter models `encoded` stays O(n + edges) — a unit test
/// pins `encoded = o(n · rounds)` on path graphs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Refinement rounds run (including the final no-change round).
    pub rounds: usize,
    /// Signatures encoded (worlds touched) across all rounds.
    pub encoded: usize,
    /// Block reassignments (worlds moved to a freshly split block).
    pub moved: usize,
    /// Rounds whose encode phase ran on the worker pool.
    pub parallel_rounds: usize,
}

/// Sentinel: a block whose stored signature has not been established yet
/// (seed blocks before their first refinement round).
const SIG_UNSET: usize = usize::MAX;
/// Sentinel group/block link terminator.
const NONE_U32: u32 = u32::MAX;

/// One signature-equal group of dirty nodes within a block, built per
/// round by [`WorklistRefiner::round`].
#[derive(Debug, Clone, Copy)]
struct Group {
    /// The block the members currently belong to.
    block: u32,
    /// The group's row text: `sig_words[sig_start..][..sig_len]` in the
    /// block store (copied once at group creation; matched groups alias
    /// the block's stored span instead).
    sig_start: usize,
    sig_len: u32,
    /// Member count.
    size: u32,
    /// Next group of the same block this round (`NONE_U32` terminates).
    next: u32,
    /// Whether the group's row text equals the block's stored signature.
    matched: bool,
    /// Decision: the block id members move to (`NONE_U32` = stay).
    new_id: u32,
}

/// Per-block partition state of a [`WorklistRefiner`]: sizes, stored
/// signature spans, and the per-round split bookkeeping (epoch marks,
/// group-list heads, dirty counts), all indexed by stable block id.
#[derive(Debug, Default)]
struct Blocks {
    size: Vec<usize>,
    /// Stored row text per block:
    /// `sig_words[sig_start[b]..][..sig_len[b]]`; `SIG_UNSET` start =
    /// not yet established (seed blocks before their first round).
    sig_start: Vec<usize>,
    sig_len: Vec<usize>,
    sig_words: Vec<u64>,
    /// Round stamp of the last round that saw a dirty member.
    mark: Vec<u32>,
    /// Head of this round's group list (`NONE_U32` = none).
    head: Vec<u32>,
    /// Dirty members seen this round.
    dirty_count: Vec<u32>,
}

impl Blocks {
    fn count(&self) -> usize {
        self.size.len()
    }

    fn push(&mut self, size: usize, sig_start: usize, sig_len: usize) {
        self.size.push(size);
        self.sig_start.push(sig_start);
        self.sig_len.push(sig_len);
        self.mark.push(0);
        self.head.push(NONE_U32);
        self.dirty_count.push(0);
    }
}

/// Per-round grouping scratch of a [`WorklistRefiner`], reused across
/// rounds (the table keeps its capacity, groups their backing storage).
#[derive(Debug, Default)]
struct RoundScratch {
    table: FxHashMap<Box<[u64]>, u32>,
    groups: Vec<Group>,
    /// Group of the `i`-th dirty node, parallel to the dirty list.
    group_of: Vec<u32>,
    /// Blocks with at least one dirty member this round.
    touched: Vec<u32>,
}

/// Files one encoded signature (`[block, row text…]`) into its
/// signature-equal group, creating the group — and copying its row text
/// into the block store unless it matches the stored signature — on
/// first sight. Free function so the sequential and pooled encode paths
/// can share it under disjoint field borrows.
fn group_one(sig: &[u64], stamp: u32, blocks: &mut Blocks, round: &mut RoundScratch) {
    let b = sig[0] as usize;
    if blocks.mark[b] != stamp {
        blocks.mark[b] = stamp;
        blocks.head[b] = NONE_U32;
        blocks.dirty_count[b] = 0;
        round.touched.push(b as u32);
    }
    blocks.dirty_count[b] += 1;
    file_into_group(sig, b, blocks, round);
}

/// [`group_one`] for the all-fresh rounds ([`WorklistRefiner::round`]'s
/// "every block fresh" fast path): the caller pre-stamped every block
/// and pre-listed them all as touched before grouping began, so the
/// per-node stamp check and touched push are skipped — on a
/// fast-stabilising model whose dense frontier re-dirties the whole
/// universe each round, that branch runs `n` times per round for no
/// information. Same filing semantics otherwise (the `stamp` parameter
/// only exists so both variants share one function-pointer type).
fn group_one_fresh(sig: &[u64], _stamp: u32, blocks: &mut Blocks, round: &mut RoundScratch) {
    let b = sig[0] as usize;
    blocks.dirty_count[b] += 1;
    file_into_group(sig, b, blocks, round);
}

/// The shared tail of [`group_one`]/[`group_one_fresh`]: files the
/// signature into its signature-equal group, creating the group on
/// first sight.
#[inline]
fn file_into_group(sig: &[u64], b: usize, blocks: &mut Blocks, round: &mut RoundScratch) {
    // Probe before inserting: repeated signatures (the common case)
    // must not allocate a key.
    let gid = match round.table.get(sig) {
        Some(&g) => {
            round.groups[g as usize].size += 1;
            g
        }
        None => {
            let g = round.groups.len() as u32;
            round.table.insert(sig.into(), g);
            let rows = &sig[1..];
            let stored = blocks.sig_start[b];
            let matched = stored != SIG_UNSET
                && blocks.sig_words[stored..stored + blocks.sig_len[b]] == *rows;
            // Matched groups alias the stored span; only genuinely new
            // texts are copied (once — new blocks reuse the span).
            let sig_start = if matched {
                stored
            } else {
                let start = blocks.sig_words.len();
                blocks.sig_words.extend_from_slice(rows);
                start
            };
            round.groups.push(Group {
                block: b as u32,
                sig_start,
                sig_len: rows.len() as u32,
                size: 1,
                next: blocks.head[b],
                matched,
                new_id: NONE_U32,
            });
            blocks.head[b] = g;
            g
        }
    };
    round.group_of.push(gid);
}

/// The built form of the refiner's reverse adjacency: one combined
/// [`CscAdjacency`] owned here, or a caller-cached combined store
/// borrowed through [`WorklistRefiner::share_reverse_adjacency`] (the
/// Kripke models' `OnceLock`-cached CSC, shared so the evaluator's
/// reverse diamonds and the refiner's dirty propagation build the
/// inverse once between them). One store either way — the hot
/// propagation loop does a single bounds lookup per moved node
/// regardless of how many relations the model carries.
#[derive(Debug)]
enum PredRows<'a> {
    Owned(CscAdjacency),
    Shared(&'a CscAdjacency),
}

/// A deferred supplier of the shared combined reverse adjacency,
/// registered via [`WorklistRefiner::share_reverse_adjacency`]. The
/// closure is only invoked if a sparse round actually needs
/// predecessors, so a caller with a lazily-cached store pays for its
/// construction exactly when the owned build would have run.
struct SharedPreds<'a> {
    source: Box<dyn Fn() -> &'a CscAdjacency + 'a>,
}

impl std::fmt::Debug for SharedPreds<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPreds").finish_non_exhaustive()
    }
}

/// Incremental (Paige–Tarjan style) partition refinement over a
/// worklist of *dirty* nodes.
///
/// The classic full-round engine ([`Refiner`] driven by a front-end
/// loop) re-encodes **every** node's signature **every** round, which on
/// long-diameter inputs costs Θ(n) work for Θ(n) rounds even though a
/// near-stable round changes almost nothing. This engine keeps the
/// round-synchronous semantics — the partition after round `t` is
/// exactly the full-round engine's depth-`t` partition, so `t`-step
/// equivalence queries stay meaningful — but does per round only
/// O(dirty frontier) work:
///
/// * **Splitter worklist.** Blocks that split in round `t` are the
///   splitters of round `t + 1`: only a node with a successor that
///   *moved* into a freshly split block can change its signature. The
///   dirty frontier is computed by walking the moved nodes' predecessors
///   over a reverse CSR (built once per run, O(edges)).
/// * **Per-block stored signatures.** Every block stores the signature
///   text its members currently share (the invariant re-established each
///   round). A dirty node is re-encoded and compared against its block's
///   stored text: equal ⇒ it stays, different ⇒ it is grouped with
///   equal-signature peers into a new block (counting-based split: the
///   group key is the full counted successor-block multiset, so plain
///   and graded styles share one mechanism).
/// * **One group keeps the id.** When a block splits, the group matching
///   the stored signature (or, if no member matches and no clean member
///   remains, the largest group) keeps the block id — Paige–Tarjan's
///   "process the smaller half" in worklist form. Only the *other*
///   groups count as moved and seed the next frontier, so a stable
///   majority never re-propagates.
///
/// Block ids are therefore **stable** (a block keeps its id across
/// rounds) rather than first-seen canonical per round;
/// [`WorklistRefiner::canonical_level_into`] renumbers the current
/// partition into the canonical dense form the full-round engine
/// produces, so the two engines' levels are bit-identical.
///
/// # Parallel rounds
///
/// When a round's encode work (signature words over the dirty frontier)
/// reaches [`PARALLEL_THRESHOLD`], the encode phase fans the dirty list
/// out over the persistent worker pool exactly like the full-round
/// engine does (chunked at work quantiles into [`SignatureBuffer`]s,
/// grouped sequentially in node order afterwards) — independent
/// splitters' dirty ranges encode in parallel. `PORTNUM_POOL=force|off`
/// overrides the gate (see [`threads_for`]), and
/// [`WorklistRefiner::force_parallel`] pins it for differential tests.
///
/// # Usage
///
/// ```
/// use portnum_graph::partition::{Counting, RelationCsr, WorklistRefiner};
///
/// // A 4-path: nodes 0-1-2-3, one symmetric relation in CSR form.
/// let offsets = [0usize, 1, 3, 5, 6];
/// let targets = [1u32, 0, 2, 1, 3, 2];
/// let rel = RelationCsr { offsets: &offsets, targets: &targets };
/// let mut r = WorklistRefiner::new(4, &[rel], Counting::Multiset, (0..4).map(|v| {
///     [1u64, 2, 2, 1][v] // seed by degree
/// }));
/// while r.round() {}
/// let mut level = Vec::new();
/// r.canonical_level_into(&mut level);
/// assert_eq!(level, vec![0, 1, 1, 0]); // ends vs middle
/// assert!(r.stats().encoded <= 4 * r.stats().rounds.max(1) * 2);
/// ```
#[derive(Debug)]
pub struct WorklistRefiner<'a> {
    n: usize,
    counting: Counting,
    force_parallel: bool,
    /// Whether per-round level semantics are observed (default). When
    /// off, the next frontier is left in discovery order instead of
    /// being sorted into node order — see
    /// [`WorklistRefiner::observe_levels`].
    observe_levels: bool,
    /// The input relations, kept for the lazy reverse-CSR build.
    relations: Vec<RelationCsr<'a>>,
    /// Nonempty forward rows of node `v`:
    /// `row_index[row_bounds[v]..row_bounds[v + 1]]`, each entry the
    /// relation id (as pushed into the signature) plus the row slice.
    row_bounds: Vec<usize>,
    row_index: Vec<(u64, &'a [u32])>,
    /// Signature words node `v` emits when encoded (the parallel-gate
    /// work unit), precomputed once.
    node_work: Vec<usize>,
    /// Reverse adjacency (CSC) used for dirty propagation — built
    /// lazily on the first round whose moved set is small enough for
    /// precise frontier propagation to beat re-encoding everyone
    /// (fast-stabilising models never pay for it). Either a combined
    /// [`CscAdjacency`] over all relations built here, or the caller's
    /// own per-relation stores obtained through
    /// [`WorklistRefiner::share_reverse_adjacency`].
    preds: Option<PredRows<'a>>,
    /// Deferred source of shared per-relation reverse adjacency;
    /// consulted (once) by [`Self::ensure_preds`] so sharing keeps the
    /// same laziness as the owned build.
    shared_preds: Option<SharedPreds<'a>>,
    /// Current block of each node (stable ids, not canonical).
    assign: Vec<usize>,
    blocks: Blocks,
    round: RoundScratch,
    /// Dirty frontier for the next round, sorted ascending.
    dirty: Vec<u32>,
    /// Epoch marks deduplicating the dirty set (`mark[v] == epoch`).
    mark: Vec<u32>,
    epoch: u32,
    /// Round stamps for the per-block split bookkeeping.
    round_stamp: u32,
    /// Encode buffers (pooled path) and scratch (sequential path).
    buffers: Vec<SignatureBuffer>,
    work: Vec<usize>,
    scratch_sig: Vec<u64>,
    scratch_blocks: Vec<usize>,
    moved: Vec<u32>,
    /// First-seen renumbering scratch for [`Self::canonical_level_into`].
    canon: Vec<u32>,
    canon_stamp: Vec<u32>,
    canon_round: u32,
    stats: RefineStats,
}

impl<'a> WorklistRefiner<'a> {
    /// Builds the engine over `n` nodes and the given relations, seeding
    /// the initial partition by first-seen `seed` keys (one per node —
    /// the valuation/degree partition at depth 0).
    ///
    /// Construction walks every relation twice: once for the
    /// nonempty-row index (empty rows never enter a signature — on
    /// many-relation models almost all rows are empty) and once for the
    /// combined reverse CSR that drives dirty propagation. Both passes
    /// are O(n · relations + edges) with O(1) allocations each.
    ///
    /// # Panics
    ///
    /// Panics if a relation's `offsets` does not have `n + 1` entries.
    pub fn new(
        n: usize,
        relations: &[RelationCsr<'a>],
        counting: Counting,
        seeds: impl Iterator<Item = u64>,
    ) -> WorklistRefiner<'a> {
        // Seed partition: dense first-seen ids per distinct key.
        let mut table: FxHashMap<Box<[u64]>, u32> = FxHashMap::default();
        let mut assign = Vec::with_capacity(n);
        let mut blocks = Blocks::default();
        for key in seeds {
            let next = table.len() as u32;
            let id = *table.entry(Box::from([key])).or_insert(next) as usize;
            if id == blocks.count() {
                blocks.push(0, SIG_UNSET, 0);
            }
            assign.push(id);
            blocks.size[id] += 1;
        }
        assert_eq!(assign.len(), n, "seed keys must cover every node");
        table.clear();

        // Round 1 re-encodes everything: every block is new.
        let dirty = (0..n as u32).collect();
        Self::assemble(n, relations, counting, table, assign, blocks, dirty)
    }

    /// Resumes refinement from a previously **stable** partition after a
    /// model delta, instead of re-refining from scratch.
    ///
    /// `prior[v]` is the old stable block of `v` (any labelling); the
    /// initial partition is the intersection of `prior` with the current
    /// seed keys, every stored block signature unknown. `dirty` must
    /// contain every node whose seed key or forward rows changed, **plus
    /// every current predecessor of such a node** — the worklist
    /// contract: a node outside the initial frontier is only re-encoded
    /// once a successor moves.
    ///
    /// Soundness contract: `prior` was stable for the *pre-delta*
    /// relations and refined the pre-delta seed keys (any fixpoint this
    /// engine produced qualifies). The resumed fixpoint is then a stable
    /// partition of the *current* model refining the current seed keys —
    /// possibly **finer** than the coarsest one, since refinement only
    /// splits and never re-merges blocks the old model separated.
    /// Consumers needing the coarsest partition (minimum bases) must
    /// re-refine from scratch; consumers needing *a* stable partition
    /// (quotient-based model checking) can use the resumed one directly.
    ///
    /// # Panics
    ///
    /// Panics if `prior` does not have `n` entries, a dirty node is
    /// `>= n`, or a relation's `offsets` does not have `n + 1` entries.
    pub fn resume(
        n: usize,
        relations: &[RelationCsr<'a>],
        counting: Counting,
        seeds: impl Iterator<Item = u64>,
        prior: &[usize],
        dirty: &[u32],
    ) -> WorklistRefiner<'a> {
        assert_eq!(prior.len(), n, "prior partition must cover every node");
        let mut table: FxHashMap<Box<[u64]>, u32> = FxHashMap::default();
        let mut assign = Vec::with_capacity(n);
        let mut blocks = Blocks::default();
        for (v, key) in seeds.enumerate() {
            let next = table.len() as u32;
            let id = *table.entry(Box::from([prior[v] as u64, key])).or_insert(next) as usize;
            if id == blocks.count() {
                blocks.push(0, SIG_UNSET, 0);
            }
            assign.push(id);
            blocks.size[id] += 1;
        }
        assert_eq!(assign.len(), n, "seed keys must cover every node");
        table.clear();
        let mut dirty = dirty.to_vec();
        dirty.sort_unstable();
        dirty.dedup();
        assert!(dirty.last().is_none_or(|&w| (w as usize) < n), "dirty node out of range");
        Self::assemble(n, relations, counting, table, assign, blocks, dirty)
    }

    /// Common tail of [`Self::new`] and [`Self::resume`]: the row index,
    /// work table, and scratch state around a seeded assignment.
    fn assemble(
        n: usize,
        relations: &[RelationCsr<'a>],
        counting: Counting,
        table: FxHashMap<Box<[u64]>, u32>,
        assign: Vec<usize>,
        blocks: Blocks,
        dirty: Vec<u32>,
    ) -> WorklistRefiner<'a> {
        let (row_bounds, row_index) = nonempty_row_index(n, relations);
        let node_work: Vec<usize> =
            (0..n).map(|v| encode_work(&row_bounds, &row_index, v)).collect();

        WorklistRefiner {
            n,
            counting,
            force_parallel: false,
            observe_levels: true,
            relations: relations.to_vec(),
            row_bounds,
            row_index,
            node_work,
            preds: None,
            shared_preds: None,
            assign,
            blocks,
            round: RoundScratch { table, ..RoundScratch::default() },
            dirty,
            mark: vec![0; n],
            epoch: 0,
            round_stamp: 0,
            buffers: Vec::new(),
            work: Vec::new(),
            scratch_sig: Vec::new(),
            scratch_blocks: Vec::new(),
            moved: Vec::new(),
            canon: Vec::new(),
            canon_stamp: Vec::new(),
            canon_round: 0,
            stats: RefineStats::default(),
        }
    }

    /// Materialises the reverse adjacency on first use: either the
    /// caller's shared combined store (if
    /// [`Self::share_reverse_adjacency`] registered a source) or a
    /// combined [`CscAdjacency`] over all relations built here (the
    /// dirty set only needs "who can see `w`", not under which
    /// relation).
    fn ensure_preds(&mut self) {
        if self.preds.is_none() {
            self.preds = Some(match self.shared_preds.take() {
                Some(shared) => PredRows::Shared((shared.source)()),
                None => PredRows::Owned(CscAdjacency::from_relations(self.n, &self.relations)),
            });
        }
    }

    /// Registers a source for the **combined** reverse adjacency (the
    /// union of all relations, as [`CscAdjacency::from_relations`]
    /// builds it over the constructor's `relations` slice) to be used
    /// instead of building one here. The source is consulted lazily —
    /// only if a sparse round needs predecessors — so callers whose
    /// store is itself lazily cached (the Kripke models' `OnceLock`
    /// CSC) build the inverse at most once *across* refinement runs
    /// and, on single-relation models, the model checker's reverse
    /// diamond path.
    ///
    /// # Panics
    ///
    /// Panics if the reverse adjacency was already built (call this
    /// right after [`WorklistRefiner::new`], before any round).
    pub fn share_reverse_adjacency(&mut self, source: impl Fn() -> &'a CscAdjacency + 'a) {
        assert!(
            self.preds.is_none(),
            "share_reverse_adjacency must be called before the reverse adjacency is built"
        );
        self.shared_preds = Some(SharedPreds { source: Box::new(source) });
    }

    /// Forces every round's encode phase onto the worker pool regardless
    /// of frontier size — the differential-test knob pinning the
    /// pool-driven path bit-identical to the sequential one.
    pub fn force_parallel(&mut self, on: bool) {
        self.force_parallel = on;
    }

    /// Switches per-round level bookkeeping off (or back on) for
    /// fixpoint-only callers. When off, the sparse next frontier is left
    /// in predecessor-discovery order instead of being sorted into node
    /// order — skipping an O(frontier·log frontier) sort per round on
    /// exactly the long-diameter inputs that take Θ(n) rounds.
    ///
    /// Grouping, keeper choice, and the moved set are all decided by
    /// label-invariant data and [`Self::canonical_level_into`] renumbers
    /// in node order, so the **fixpoint** partition (and each round's
    /// partition *as a partition*) is unchanged and still deterministic;
    /// only freshly split block labels — never observed by fixpoint
    /// callers — can come out permuted. Leave bookkeeping on (the
    /// default) when intermediate canonical levels are compared
    /// round-for-round against the full-round engine's history.
    pub fn observe_levels(&mut self, on: bool) {
        self.observe_levels = on;
    }

    /// The current partition under **stable** block ids (not dense, not
    /// canonical — blocks keep their id across rounds). Use
    /// [`Self::canonical_level_into`] for the canonical form.
    pub fn partition(&self) -> &[usize] {
        &self.assign
    }

    /// Writes the current partition into `out` under dense first-seen
    /// canonical ids — bit-identical to the level the full-round engine
    /// produces at the same depth.
    pub fn canonical_level_into(&mut self, out: &mut Vec<usize>) {
        self.canon_round += 1;
        let stamp = self.canon_round;
        self.canon.resize(self.blocks.count(), 0);
        self.canon_stamp.resize(self.blocks.count(), 0);
        out.clear();
        out.reserve(self.n);
        let mut fresh = 0u32;
        for &b in &self.assign {
            if self.canon_stamp[b] != stamp {
                self.canon_stamp[b] = stamp;
                self.canon[b] = fresh;
                fresh += 1;
            }
            out.push(self.canon[b] as usize);
        }
    }

    /// Counters accumulated so far (see [`RefineStats`]).
    pub fn stats(&self) -> RefineStats {
        self.stats
    }

    /// Control-aware [`round`](Self::round): polls `ctl` at the round
    /// boundary — cancel/deadline plus the touched-work ceiling, priced
    /// in cumulative encoded signatures (`RefineStats::encoded`, the
    /// same counter the perf trajectory reports). On `Err` the refiner
    /// is left exactly as the previous round left it: the caller can
    /// resume with further rounds or drop the refiner, and no partial
    /// round is ever observable.
    ///
    /// # Errors
    ///
    /// The [`Interrupted`] reported by [`ExecControl::check_work`].
    pub fn round_controlled(&mut self, ctl: &ExecControl) -> Result<bool, Interrupted> {
        ctl.check_work(self.stats.encoded)?;
        Ok(self.round())
    }

    /// Runs one refinement round over the dirty frontier. Returns `true`
    /// if any node moved to a new block (i.e. the partition changed); a
    /// `false` round is exactly the full-round engine's stabilising
    /// `next == prev` round.
    pub fn round(&mut self) -> bool {
        // Chaos site at the round boundary, before any state mutation:
        // an injected panic here leaves the refiner exactly as the
        // previous round left it, so a retry continues correctly.
        fail::fail_point!("refine-round");
        self.stats.rounds += 1;
        self.stats.encoded += self.dirty.len();
        if self.dirty.is_empty() {
            // Past the fixpoint: nothing can change.
            return false;
        }

        // Phases 1–2: encode every dirty node's signature against the
        // frozen partition — `[block, (rel id, count, successor blocks
        // [, multiplicities])*]`, the Refiner's exact encoding — and
        // group it within its block. The sequential path fuses both
        // phases through one scratch buffer; above the work gate the
        // encode fans out over the pool into chunk buffers and the
        // grouping walks them in node order, so group creation order —
        // and therefore every downstream id — is identical either way.
        let total_work: usize = self.dirty.iter().map(|&w| self.node_work[w as usize]).sum();
        let threads = if self.force_parallel {
            encode_threads().max(2)
        } else {
            threads_for(total_work)
        };
        let threads = threads.clamp(1, self.dirty.len());
        self.round.groups.clear();
        self.round.table.clear();
        self.round.touched.clear();
        self.round.group_of.clear();
        self.round_stamp += 1;
        let stamp = self.round_stamp;
        // "Every block fresh" fast path: on round 1 (and after every
        // dense `moved*4 >= n` frontier — the steady state of dense
        // fast-stabilising models) the dirty list is the whole
        // universe, so every block is touched and has zero clean
        // members. Pre-stamping all blocks once here lets the per-node
        // filing skip the stamp check and touched push entirely. The
        // touched order (block-id order instead of first-dirty-member
        // order) only permutes *labels* of freshly split blocks —
        // grouping, keeper choice, and the moved set are all decided
        // by label-invariant data, and ids are canonicalised at every
        // observation point ([`Self::canonical_level_into`]).
        let fresh = self.dirty.len() == self.n;
        if fresh {
            self.round.touched.extend(0..self.blocks.count() as u32);
            for b in 0..self.blocks.count() {
                self.blocks.mark[b] = stamp;
                self.blocks.head[b] = NONE_U32;
                self.blocks.dirty_count[b] = 0;
            }
        }
        let file: fn(&[u64], u32, &mut Blocks, &mut RoundScratch) =
            if fresh { group_one_fresh } else { group_one };
        if threads > 1 {
            self.stats.parallel_rounds += 1;
            self.work.clear();
            self.work.reserve(self.dirty.len() + 1);
            self.work.push(0);
            let mut acc = 0usize;
            for &w in &self.dirty {
                acc += self.node_work[w as usize];
                self.work.push(acc);
            }
            let (dirty, assign, row_bounds, row_index, counting) =
                (&self.dirty, &self.assign, &self.row_bounds, &self.row_index, self.counting);
            parallel_encode_weighted(&self.work, threads, &mut self.buffers, |range, buf| {
                let mut blocks = std::mem::take(buf.blocks_scratch());
                for i in range {
                    let v = dirty[i] as usize;
                    // Row-bound lookahead, shared cache-block geometry
                    // with the plan executor's sweeps (crate::blocking).
                    if let Some(&ahead) = dirty.get(i + crate::blocking::PREFETCH_AHEAD) {
                        crate::blocking::prefetch_read(row_bounds, ahead as usize);
                    }
                    buf.begin(assign[v]);
                    for &(r, row) in &row_index[row_bounds[v]..row_bounds[v + 1]] {
                        buf.push_word(r);
                        blocks.extend(row.iter().map(|&w| assign[w as usize]));
                        buf.push_blocks(&mut blocks, counting);
                    }
                    buf.end();
                }
                *buf.blocks_scratch() = blocks;
            });
            for ci in 0..self.buffers.len() {
                for local in 0..self.buffers[ci].len() {
                    let sig = self.buffers[ci].signature(local);
                    file(sig, stamp, &mut self.blocks, &mut self.round);
                }
            }
        } else {
            let mut sig = std::mem::take(&mut self.scratch_sig);
            let mut gather = std::mem::take(&mut self.scratch_blocks);
            for (i, &w) in self.dirty.iter().enumerate() {
                let v = w as usize;
                if let Some(&ahead) = self.dirty.get(i + crate::blocking::PREFETCH_AHEAD) {
                    crate::blocking::prefetch_read(&self.row_bounds, ahead as usize);
                }
                sig.clear();
                sig.push(self.assign[v] as u64);
                for &(r, row) in &self.row_index[self.row_bounds[v]..self.row_bounds[v + 1]] {
                    sig.push(r);
                    gather.extend(row.iter().map(|&u| self.assign[u as usize]));
                    encode_blocks(&mut sig, &mut gather, self.counting);
                }
                file(&sig, stamp, &mut self.blocks, &mut self.round);
            }
            self.scratch_sig = sig;
            self.scratch_blocks = gather;
        }
        debug_assert_eq!(self.round.group_of.len(), self.dirty.len());

        // Phase 3: per touched block, pick the group that keeps the
        // block id and allocate new blocks for the rest.
        for ti in 0..self.round.touched.len() {
            let b = self.round.touched[ti] as usize;
            let clean = self.blocks.size[b] - self.blocks.dirty_count[b] as usize;
            // Keeper: the group matching the stored signature — it is
            // indistinguishable from the clean members. With no clean
            // members and no match, the largest group keeps the id
            // (fewest moves; ties to the earliest-seen group).
            let mut keeper = NONE_U32;
            let mut largest = NONE_U32;
            let mut largest_size = 0u32;
            let mut g = self.blocks.head[b];
            while g != NONE_U32 {
                let group = &self.round.groups[g as usize];
                if group.matched {
                    keeper = g;
                }
                // Walking head-first visits groups in reverse creation
                // order; `>=` therefore ties toward the earlier group.
                if group.size >= largest_size {
                    largest = g;
                    largest_size = group.size;
                }
                g = group.next;
            }
            if keeper == NONE_U32 && clean == 0 {
                keeper = largest;
            }
            let mut g = self.blocks.head[b];
            while g != NONE_U32 {
                let group = self.round.groups[g as usize];
                debug_assert_eq!(group.block as usize, b);
                if g == keeper {
                    if !group.matched {
                        // The keeper's text becomes the block's stored
                        // signature (all remaining members share it:
                        // there are no clean members in this branch).
                        debug_assert_eq!(clean, 0);
                        self.blocks.sig_start[b] = group.sig_start;
                        self.blocks.sig_len[b] = group.sig_len as usize;
                    }
                } else {
                    // Split: members move to a fresh block id, reusing
                    // the row text copied at group creation.
                    let new_id = self.blocks.count();
                    self.blocks.size[b] -= group.size as usize;
                    self.blocks.push(group.size as usize, group.sig_start, group.sig_len as usize);
                    self.round.groups[g as usize].new_id = new_id as u32;
                }
                g = self.round.groups[g as usize].next;
            }
        }

        // Phase 4: reassign moved nodes and build the next frontier.
        self.moved.clear();
        for (i, &w) in self.dirty.iter().enumerate() {
            let new_id = self.round.groups[self.round.group_of[i] as usize].new_id;
            if new_id != NONE_U32 {
                self.assign[w as usize] = new_id as usize;
                self.moved.push(w);
            }
        }
        self.stats.moved += self.moved.len();
        self.dirty.clear();
        if self.moved.is_empty() {
            return false;
        }
        if self.moved.len() * 4 >= self.n {
            // Most nodes moved: precise predecessor propagation would
            // visit nearly every edge anyway, so mark everything dirty
            // (a superset frontier is always safe — extra nodes
            // re-encode, match their block's stored signature, and
            // stay). Fast-stabilising models take only this branch and
            // never build the reverse CSR.
            self.dirty.extend(0..self.n as u32);
        } else {
            // Sparse frontier: every predecessor of a moved node,
            // deduplicated by epoch mark and — when level bookkeeping is
            // observed — sorted so encode order (hence group order) is
            // node order.
            self.ensure_preds();
            self.epoch += 1;
            let epoch = self.epoch;
            let csc = match self.preds.as_ref().expect("just built") {
                PredRows::Owned(csc) => csc,
                PredRows::Shared(csc) => csc,
            };
            let (mark, dirty) = (&mut self.mark, &mut self.dirty);
            for &w in &self.moved {
                for &p in csc.row(w as usize) {
                    if mark[p as usize] != epoch {
                        mark[p as usize] = epoch;
                        dirty.push(p);
                    }
                }
            }
            if self.observe_levels {
                self.dirty.sort_unstable();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_assigns_first_seen_ids() {
        let mut r = Refiner::new();
        let part = r.seed_partition([3u64, 1, 3, 2, 1].into_iter());
        assert_eq!(part, vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn identical_signatures_share_a_block() {
        let mut r = Refiner::new();
        r.begin_round();
        let mut blocks = vec![2, 1, 1];
        r.begin_signature(0);
        r.push_blocks(&mut blocks, Counting::Multiset);
        let a = r.commit();
        let mut blocks = vec![1, 2, 1]; // same multiset, different order
        r.begin_signature(0);
        r.push_blocks(&mut blocks, Counting::Multiset);
        let b = r.commit();
        assert_eq!(a, b);
        assert_eq!(r.block_count(), 1);
    }

    #[test]
    fn counting_mode_distinguishes_multiplicity() {
        let mut r = Refiner::new();
        r.begin_round();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1, 1], Counting::Multiset);
        let a = r.commit();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1], Counting::Multiset);
        let b = r.commit();
        assert_ne!(a, b, "multisets count");

        r.begin_round();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1, 1], Counting::Distinct);
        let c = r.commit();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1], Counting::Distinct);
        let d = r.commit();
        assert_eq!(c, d, "sets do not count");
    }

    #[test]
    fn relation_boundaries_are_unambiguous() {
        // {1},{} vs {},{1} across two relations must differ.
        let mut r = Refiner::new();
        r.begin_round();
        r.begin_signature(0);
        r.push_blocks(&mut vec![1], Counting::Multiset);
        r.push_blocks(&mut Vec::new(), Counting::Multiset);
        let a = r.commit();
        r.begin_signature(0);
        r.push_blocks(&mut Vec::new(), Counting::Multiset);
        r.push_blocks(&mut vec![1], Counting::Multiset);
        let b = r.commit();
        assert_ne!(a, b);
    }

    #[test]
    fn buffers_are_returned_cleared() {
        let mut r = Refiner::new();
        r.begin_round();
        let mut blocks = vec![5, 4];
        r.begin_signature(1);
        r.push_blocks(&mut blocks, Counting::Multiset);
        assert!(blocks.is_empty());
        let _ = r.commit();
    }

    #[test]
    fn commit_slice_matches_incremental_commit() {
        let mut r = Refiner::new();
        r.begin_round();
        r.begin_signature(3);
        r.push_blocks(&mut vec![7, 7, 2], Counting::Multiset);
        let incremental = r.commit();

        let mut buf = SignatureBuffer::new();
        buf.begin(3);
        buf.push_blocks(&mut vec![2, 7, 7], Counting::Multiset);
        buf.end();
        assert_eq!(r.commit_slice(buf.signature(0)), incremental);
        assert_eq!(r.block_count(), 1);
    }

    #[test]
    fn signature_buffer_bounds() {
        let mut buf = SignatureBuffer::new();
        assert!(buf.is_empty());
        buf.begin(0);
        buf.push_word(9);
        buf.end();
        buf.begin(1);
        buf.end();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.signature(0), &[0, 9]);
        assert_eq!(buf.signature(1), &[1]);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn parallel_encode_covers_all_nodes_in_order() {
        // Encode node ids over 3 threads; walking the buffers in order
        // must reproduce 0..n exactly once each.
        let n = 17;
        let mut buffers = Vec::new();
        parallel_encode(n, 3, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let flat: Vec<u64> = buffers
            .iter()
            .flat_map(|b| (0..b.len()).map(|i| b.signature(i)[0]))
            .collect();
        assert_eq!(flat, (0..n as u64).collect::<Vec<_>>());
        // Re-running with fewer nodes reuses and re-clears the buffers.
        parallel_encode(5, 3, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let total: usize = buffers.iter().map(SignatureBuffer::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn weighted_encode_covers_all_nodes_in_order() {
        // Hub-heavy work: node 0 carries almost everything. The split
        // must still cover 0..n exactly once, in order.
        let n = 16usize;
        let mut work = vec![0usize; n + 1];
        for v in 0..n {
            work[v + 1] = work[v] + if v == 0 { 1000 } else { 1 };
        }
        let mut buffers = Vec::new();
        parallel_encode_weighted(&work, 4, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let flat: Vec<u64> = buffers
            .iter()
            .flat_map(|b| (0..b.len()).map(|i| b.signature(i)[0]))
            .collect();
        assert_eq!(flat, (0..n as u64).collect::<Vec<_>>());
        // The hub is isolated in its own chunk instead of dragging a
        // quarter of the nodes with it.
        assert_eq!(buffers[0].len(), 1, "hub chunk holds only the hub");
    }

    #[test]
    fn weighted_encode_balances_uniform_work_like_equal_ranges() {
        let n = 24usize;
        let work: Vec<usize> = (0..=n).collect(); // unit work per node
        let mut weighted = Vec::new();
        parallel_encode_weighted(&work, 3, &mut weighted, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        assert!(weighted.iter().all(|b| b.len() == 8), "uniform work splits evenly");
        // Zero-work arrays degenerate gracefully (everything in the
        // last chunk, nothing lost).
        let zeros = vec![0usize; n + 1];
        let mut buffers = Vec::new();
        parallel_encode_weighted(&zeros, 3, &mut buffers, |range, buf| {
            for v in range {
                buf.begin(v);
                buf.end();
            }
        });
        let total: usize = buffers.iter().map(SignatureBuffer::len).sum();
        assert_eq!(total, n);
    }

    /// Symmetric CSR of an n-node path (0-1-…-(n-1)), one relation.
    fn path_csr(n: usize) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::new();
        for v in 0..n {
            if v > 0 {
                targets.push(v as u32 - 1);
            }
            if v + 1 < n {
                targets.push(v as u32 + 1);
            }
            offsets[v + 1] = targets.len();
        }
        (offsets, targets)
    }

    fn path_degrees(n: usize) -> impl Iterator<Item = u64> {
        (0..n).map(move |v| if v == 0 || v + 1 == n { 1 } else { 2 })
    }

    fn run_to_fixpoint(r: &mut WorklistRefiner) -> Vec<usize> {
        while r.round() {}
        let mut level = Vec::new();
        r.canonical_level_into(&mut level);
        level
    }

    #[test]
    fn worklist_path_refines_by_distance_to_ends() {
        let n = 9;
        let (offsets, targets) = path_csr(n);
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let mut r = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        let level = run_to_fixpoint(&mut r);
        // Distance-to-nearest-end classes, mirror-symmetric.
        for v in 0..n {
            assert_eq!(level[v], level[n - 1 - v], "mirror symmetry at {v}");
        }
        assert_eq!(level.iter().max(), Some(&4), "⌈n/2⌉ distance classes");
    }

    #[test]
    fn worklist_touched_counter_is_o_of_n_rounds_on_paths() {
        // The headline property: on a long-diameter model the frontier
        // stays O(1) per round, so total encodes are O(n) even though
        // the refinement takes Θ(n) rounds. The full-round engine would
        // encode exactly n · rounds signatures.
        let n = 256;
        let (offsets, targets) = path_csr(n);
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let mut r = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        while r.round() {}
        let stats = r.stats();
        assert!(stats.rounds >= n / 2 - 2, "a path takes Θ(n) rounds, got {}", stats.rounds);
        let full_round_cost = n * stats.rounds;
        assert!(
            stats.encoded <= 8 * n,
            "worklist touched {} worlds; expected O(n), full-round cost is {}",
            stats.encoded,
            full_round_cost
        );
    }

    #[test]
    fn worklist_forced_parallel_matches_sequential() {
        // A pseudo-random sparse relation (deterministic LCG) plus the
        // path: pooled encode must produce identical canonical levels
        // round by round.
        let n = 60;
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for _ in 0..2 * n {
            let (u, w) = (rand() % n, rand() % n);
            rows[u].push(w as u32);
        }
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::new();
        for (v, row) in rows.iter().enumerate() {
            targets.extend_from_slice(row);
            offsets[v + 1] = targets.len();
        }
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let seeds: Vec<u64> = (0..n).map(|v| (v % 3) as u64).collect();
        for counting in [Counting::Distinct, Counting::Multiset] {
            let mut seq = WorklistRefiner::new(n, &[rel], counting, seeds.iter().copied());
            let mut par = WorklistRefiner::new(n, &[rel], counting, seeds.iter().copied());
            par.force_parallel(true);
            let (mut ls, mut lp) = (Vec::new(), Vec::new());
            loop {
                let (cs, cp) = (seq.round(), par.round());
                assert_eq!(cs, cp, "round outcomes diverged");
                seq.canonical_level_into(&mut ls);
                par.canonical_level_into(&mut lp);
                assert_eq!(ls, lp, "levels diverged at round {}", seq.stats().rounds);
                if !cs {
                    break;
                }
            }
            assert_eq!(seq.stats().encoded, par.stats().encoded);
        }
    }

    #[test]
    fn worklist_shared_reverse_adjacency_matches_owned_build() {
        // Splitting the path relation into two half-relations and
        // handing a caller-built combined CSC store to the refiner
        // must reproduce the owned build's levels exactly, invoking
        // the source lazily (at most once).
        let n = 40;
        let (offsets, targets) = path_csr(n);
        // Two relations: forward edges (v → v+1) and backward edges.
        let mut fwd_off = vec![0usize; n + 1];
        let mut fwd = Vec::new();
        let mut bwd_off = vec![0usize; n + 1];
        let mut bwd = Vec::new();
        for v in 0..n {
            if v + 1 < n {
                fwd.push(v as u32 + 1);
            }
            fwd_off[v + 1] = fwd.len();
            if v > 0 {
                bwd.push(v as u32 - 1);
            }
            bwd_off[v + 1] = bwd.len();
        }
        let rels = [
            RelationCsr { offsets: &fwd_off, targets: &fwd },
            RelationCsr { offsets: &bwd_off, targets: &bwd },
        ];
        let store = CscAdjacency::from_relations(n, &rels);
        let calls = std::cell::Cell::new(0usize);
        let mut owned = WorklistRefiner::new(n, &rels, Counting::Multiset, path_degrees(n));
        let mut shared = WorklistRefiner::new(n, &rels, Counting::Multiset, path_degrees(n));
        shared.share_reverse_adjacency(|| {
            calls.set(calls.get() + 1);
            &store
        });
        let (mut lo, mut ls) = (Vec::new(), Vec::new());
        loop {
            let (co, cs) = (owned.round(), shared.round());
            assert_eq!(co, cs, "round outcomes diverged");
            owned.canonical_level_into(&mut lo);
            shared.canonical_level_into(&mut ls);
            assert_eq!(lo, ls, "levels diverged at round {}", owned.stats().rounds);
            if !co {
                break;
            }
        }
        assert_eq!(owned.stats(), shared.stats());
        assert_eq!(calls.get(), 1, "the shared source is consulted exactly once");
        // The path relation itself inverts back to the adjacency.
        let csc = CscAdjacency::from_csr(n, &offsets, &targets);
        for w in 0..n {
            let mut expect: Vec<u32> = Vec::new();
            if w > 0 {
                expect.push(w as u32 - 1);
            }
            if w + 1 < n {
                expect.push(w as u32 + 1);
            }
            assert_eq!(csc.row(w), expect.as_slice());
        }
    }

    #[test]
    fn env_knobs_parse_or_panic() {
        // CI's knob matrix relies on unknown values failing loudly at
        // first use: force every parser to run under whatever this
        // process's environment carries, so a typo in a matrix entry
        // fails the suite here instead of silently testing the default.
        let _ = threads_for(0);
        let _ = refine_engine_choice();
        // Resilience knobs: PORTNUM_DEADLINE_MS / PORTNUM_MAX_*_WORDS
        // (panic on non-integer values) and PORTNUM_FAILPOINTS (panics
        // on malformed site=action specs).
        let _ = ExecControl::from_env();
        fail::setup_from_env();
    }

    #[test]
    fn worklist_degenerate_sizes() {
        let rel = RelationCsr { offsets: &[0], targets: &[] };
        let mut r = WorklistRefiner::new(0, &[rel], Counting::Multiset, std::iter::empty());
        assert!(!r.round(), "no nodes: first round is the stable round");
        assert_eq!(run_to_fixpoint(&mut r), Vec::<usize>::new());

        let rel = RelationCsr { offsets: &[0, 0], targets: &[] };
        let mut r = WorklistRefiner::new(1, &[rel], Counting::Multiset, std::iter::once(7));
        assert!(!r.round(), "single isolated node never splits");
        assert_eq!(run_to_fixpoint(&mut r), vec![0]);
    }

    #[test]
    fn worklist_stable_rounds_are_free() {
        let n = 16;
        let (offsets, targets) = path_csr(n);
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let mut r = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        while r.round() {}
        let encoded = r.stats().encoded;
        // Rounds past the fixpoint touch nothing.
        assert!(!r.round());
        assert!(!r.round());
        assert_eq!(r.stats().encoded, encoded);
    }

    /// `a` refines `b` as a partition: `a`-equal nodes are `b`-equal.
    fn refines(a: &[usize], b: &[usize]) -> bool {
        let mut image: Vec<Option<usize>> = vec![None; a.len()];
        a.iter().zip(b).all(|(&ba, &bb)| match image[ba] {
            None => {
                image[ba] = Some(bb);
                true
            }
            Some(prev) => prev == bb,
        })
    }

    /// Signature-uniformity of every block: the fixpoint property.
    fn is_stable(level: &[usize], rel: &RelationCsr, seeds: &[u64]) -> bool {
        let n = level.len();
        let mut sig: Vec<Option<(u64, Vec<usize>)>> = vec![None; n];
        (0..n).all(|v| {
            let mut succ: Vec<usize> = rel.targets[rel.offsets[v]..rel.offsets[v + 1]]
                .iter()
                .map(|&w| level[w as usize])
                .collect();
            succ.sort_unstable();
            match &sig[level[v]] {
                None => {
                    sig[level[v]] = Some((seeds[v], succ));
                    true
                }
                Some((s, blocks)) => *s == seeds[v] && *blocks == succ,
            }
        })
    }

    #[test]
    fn worklist_observe_levels_off_matches_fixpoint() {
        // The sub-round fast path: skipping the per-round frontier sort
        // must not change the fixpoint partition or the work counters.
        let n = 64;
        let (offsets, targets) = path_csr(n);
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let mut on = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        let mut off = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        off.observe_levels(false);
        assert_eq!(run_to_fixpoint(&mut on), run_to_fixpoint(&mut off));
        assert_eq!(on.stats().encoded, off.stats().encoded);
        assert_eq!(on.stats().rounds, off.stats().rounds);
    }

    #[test]
    fn worklist_resume_reaches_a_stable_refinement() {
        // Refine a 12-path to its fixpoint, cut the middle edge (3-4),
        // and resume from the old partition with only the cut's endpoints
        // and their current predecessors dirty. The resumed fixpoint must
        // be a stable partition of the new model refining the current
        // seeds — possibly finer than the from-scratch coarsest, never
        // coarser.
        let n = 12;
        let (offsets, targets) = path_csr(n);
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let mut orig = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        run_to_fixpoint(&mut orig);
        let prior = orig.partition().to_vec();

        // New model: the path with edge 3-4 removed (two components).
        let mut cut_off = vec![0usize; n + 1];
        let mut cut_tgt = Vec::new();
        for v in 0..n {
            for &w in &targets[offsets[v]..offsets[v + 1]] {
                if !matches!((v, w), (3, 4) | (4, 3)) {
                    cut_tgt.push(w);
                }
            }
            cut_off[v + 1] = cut_tgt.len();
        }
        let cut = RelationCsr { offsets: &cut_off, targets: &cut_tgt };
        let seeds: Vec<u64> =
            (0..n).map(|v| (cut_off[v + 1] - cut_off[v]) as u64).collect();

        // Touched worlds {3, 4} plus their current predecessors.
        let dirty = [2u32, 3, 4, 5];
        let mut resumed = WorklistRefiner::resume(
            n,
            &[cut],
            Counting::Multiset,
            seeds.iter().copied(),
            &prior,
            &dirty,
        );
        resumed.observe_levels(false);
        let level = run_to_fixpoint(&mut resumed);
        assert!(is_stable(&level, &cut, &seeds), "resumed fixpoint must be stable: {level:?}");

        let mut fresh = WorklistRefiner::new(n, &[cut], Counting::Multiset, seeds.iter().copied());
        let fresh_level = run_to_fixpoint(&mut fresh);
        assert!(refines(&level, &fresh_level), "resumed {level:?} vs fresh {fresh_level:?}");
        // The frontier never grew past the cut's influence: far fewer
        // encodes than a from-scratch run of this shape.
        assert!(resumed.stats().encoded < fresh.stats().encoded);
    }

    #[test]
    fn worklist_resume_with_nothing_dirty_is_already_stable() {
        let n = 10;
        let (offsets, targets) = path_csr(n);
        let rel = RelationCsr { offsets: &offsets, targets: &targets };
        let mut orig = WorklistRefiner::new(n, &[rel], Counting::Multiset, path_degrees(n));
        let level = run_to_fixpoint(&mut orig);
        let mut resumed = WorklistRefiner::resume(
            n,
            &[rel],
            Counting::Multiset,
            path_degrees(n),
            orig.partition(),
            &[],
        );
        assert!(!resumed.round(), "an unchanged model needs no rounds");
        let mut out = Vec::new();
        resumed.canonical_level_into(&mut out);
        assert_eq!(out, level);
    }

    #[test]
    fn fxhash_is_stable_and_spreads() {
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            let mut h = FxHasher::default();
            i.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000, "no collisions on small consecutive keys");
    }
}
