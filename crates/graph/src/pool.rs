//! A persistent worker pool for data-parallel chunk jobs.
//!
//! The refinement engines ([`crate::partition`], [`crate::refinement`],
//! `portnum-logic`'s bisimulation) and the compiled-plan executor all
//! fan the same shape of work out over threads: a call-scoped list of
//! independent *chunks* (contiguous node ranges, plan instructions,
//! bitset word ranges), each writing into its own pre-assigned output
//! slot. Spawning fresh scoped threads per call costs ~100µs — more
//! than an entire refinement round on a mid-size model — which is why
//! the old scoped-thread fan-out had to hide behind a large work gate.
//!
//! [`WorkerPool`] keeps the threads alive instead, and keeps the
//! per-call *submit path* light enough that back-to-back small calls
//! (a plan executor walking a DAG level by level issues dozens) do not
//! drown in coordination:
//!
//! * **Spin-then-park workers.** Between calls a worker first spins on
//!   the epoch-tagged cursor for a few microseconds before parking on
//!   the condvar. A burst of calls therefore pays the condvar wake
//!   (two syscalls and a scheduler round-trip, the dominant cost of
//!   the old per-call handshake) only for its *first* call; subsequent
//!   dispatches are picked up by spinning workers at the cost of one
//!   atomic store.
//! * **Parked-count-gated wake.** The submit path calls `notify_all`
//!   only when the parked-worker counter is nonzero, so a hot loop
//!   never issues the wake syscall at all.
//! * **Atomic completion counter.** Chunk completion is one
//!   `fetch_sub` on a remaining-chunks atomic; only the *last* chunk
//!   takes the done lock to wake a parked caller (the caller, too,
//!   spins briefly before parking). The old protocol locked a mutex
//!   and signalled a condvar once per chunk.
//! * **Lock-free heal fast path.** Worker liveness is tracked by an
//!   atomic counter (decremented by a drop guard on worker exit), so
//!   the all-alive case of [`WorkerPool::heal`] — every call's entry
//!   check — is one relaxed load instead of a mutex acquisition and a
//!   handle scan.
//!
//! Per-call overhead drops from a handful of microseconds to well under
//! one for warm (spinning) workers, so the shared work gate
//! ([`crate::partition::PARALLEL_THRESHOLD`]) can sit an order of
//! magnitude lower and small/medium models go parallel too.
//!
//! # Oversubscribed hosts
//!
//! When pool threads (workers plus the participating caller) outnumber
//! the host's cores — the single-core CI shape — spinning inverts from
//! latency hiding into sabotage: a caller burning its spin budget
//! occupies the only core the straggling worker needs to finish the
//! call (a ~100µs scheduler round-trip per stolen chunk), and a
//! spinning worker steals the core from the caller producing the next
//! call. An oversubscribed pool therefore (a) never wakes parked
//! workers — the caller completes every call itself at inline speed,
//! which is the throughput optimum when there is no spare core —
//! (b) shrinks the worker spin window to a token budget, and (c) has
//! the caller *yield* to a straggler rather than spin against it. The
//! protocol (epoch claims, the remaining-chunks barrier, panic
//! containment, healing) is identical in both regimes; only the
//! waiting strategy changes.
//!
//! # Calibrated dispatch cost
//!
//! Construction of a pool with workers measures the real cost of one
//! no-op `run` round-trip (median of a short burst, so a stray
//! scheduling hiccup or an armed chaos failpoint cannot skew it) and
//! exposes it as [`WorkerPool::dispatch_cost_ns`]. The parallel work
//! gate ([`crate::partition::threads_for`]) prices this measured cost
//! into its Auto decision — work below the *measured* break-even floor
//! stays sequential even above the static [`crate::partition::PARALLEL_THRESHOLD`]
//! — and the plan executor surfaces the same number in its `ExecStats`
//! so a bench row records the coordination cost it actually paid.
//!
//! # Tuning (`PORTNUM_POOL`)
//!
//! Whether a phase actually fans out is decided by the caller through
//! the shared work gate [`crate::partition::threads_for`], which the
//! `PORTNUM_POOL` environment variable overrides: `force` always
//! parallelises (≥ 2 threads even on single-core hosts, so CI can
//! drive every pool path), `off` never does, `auto` (default) gates on
//! [`crate::partition::PARALLEL_THRESHOLD`] and the calibrated floor.
//! The pool itself is sized `cores − 1` workers (minimum 1) plus the
//! participating caller.
//!
//! # Execution model
//!
//! [`WorkerPool::run`]`(chunks, job)` executes `job(i)` exactly once
//! for every `i in 0..chunks` and returns when all invocations have
//! finished. Chunks are claimed from a shared epoch-tagged cursor
//! (range stealing): whichever thread is free takes the next index, so
//! a straggler chunk cannot idle the rest of the pool. The **caller
//! participates** — with zero workers (single-core hosts) `run` simply
//! executes every chunk inline, so callers never need a sequential
//! fallback path for correctness.
//!
//! # Determinism
//!
//! Which *thread* runs a chunk is scheduling-dependent, but chunk
//! indices are handed out exactly once, so a job that writes only to
//! per-chunk slots (`buffers[i]`, disjoint word ranges of one bitset)
//! produces output independent of the interleaving. The refinement
//! front-ends rely on this: encode buffers are filled per chunk and
//! interned *in chunk order* afterwards, which keeps first-seen block
//! ids bit-identical to the sequential engine.
//!
//! # Safety
//!
//! `run` lends the job reference to worker threads for the duration of
//! the call, erasing its lifetime (the one `unsafe` impl in this
//! crate). This is sound because `run` does not return until every
//! claimed chunk has completed and no further chunk can be claimed for
//! that epoch: workers verify the epoch with a compare-and-swap before
//! every claim, so a stale worker can neither touch a new call's
//! cursor nor run an old call's job after its borrow ended. The
//! remaining-chunks counter only reaches zero after every claimed
//! chunk's job invocation has returned, and the caller blocks until it
//! does. Panics in a chunk are caught, remaining chunks are drained
//! without running the job, and the panic is re-raised on the caller
//! once the call's barrier is reached — the borrow again outlives
//! every use.
//!
//! # Self-healing contract
//!
//! The pool guarantees it stays serviceable across the three fault
//! classes a shared, process-wide resource must survive:
//!
//! 1. **Job panics** — caught per chunk; the remaining chunks drain
//!    without running the job, the barrier completes, and the original
//!    payload is re-raised on the caller. The *next* call starts from a
//!    clean epoch (pinned by `panicking_chunk_propagates…` below and
//!    the cross-crate reuse tests in `portnum-logic`).
//! 2. **Worker death** — a worker thread that exits (injected via the
//!    `pool-worker` failpoint, or killed by an unhandled panic outside
//!    the chunk guard) drops its liveness guard, which the next
//!    [`WorkerPool::run`] entry detects (one atomic load) and repairs.
//!    In-flight calls are unaffected because the caller participates
//!    and drains every chunk itself if need be.
//! 3. **Poisoned locks** — every mutex/condvar acquisition recovers
//!    the guard from a `PoisonError`; the pool's state machine is
//!    valid at every step that can unwind, so the poison flag carries
//!    no information here.
//!
//! # Cancellation
//!
//! [`WorkerPool::run_controlled`] threads an
//! [`crate::resilience::ExecControl`] through the chunk loop: each
//! claimed chunk polls the control before running the job, so after a
//! cancel/deadline trip the remaining chunks drain at a cost of one
//! atomic load each and the call returns a typed
//! [`crate::resilience::Interrupted`] — latency is bounded by the one
//! chunk that was already executing.
//!
//! # Failpoints
//!
//! Chaos sites (no-ops unless activated, see the `fail` shim):
//! `pool-dispatch` (entry of [`WorkerPool::run`]), `pool-chunk` (just
//! before a claimed chunk's job runs, inside the panic guard), and
//! `pool-worker` (worker loop head; a `return` action makes the worker
//! thread exit, exercising the respawn path).

use crate::resilience::{ExecControl, Interrupted};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// The job view a worker holds while a call is active: a raw,
/// lifetime-erased pointer to the caller's `Fn(usize)` closure.
///
/// Sending the raw pointer across threads is safe under the pool's
/// protocol: the pointer is only dereferenced between job installation
/// and the completion barrier of the same epoch, and
/// [`WorkerPool::run`] blocks until that barrier — so the pointee (and
/// everything it borrows) is alive for every dereference.
#[derive(Clone, Copy)]
struct Job {
    ptr: *const (dyn Fn(usize) + Sync),
}

#[allow(unsafe_code)]
// SAFETY: see the `Job` doc comment — the pointer is only dereferenced
// while the caller of `run` is blocked inside the call that installed it.
unsafe impl Send for Job {}
#[allow(unsafe_code)]
// SAFETY: as above; the pointee is `Sync`, so shared dereferences from
// several workers at once are fine.
unsafe impl Sync for Job {}

/// Iterations a worker spins on the cursor before parking on the
/// condvar. Each iteration is a load plus a `spin_loop` hint (~a few
/// ns), so the spin window is in the tens of microseconds — enough to
/// bridge the gaps of a plan executor walking DAG levels, short enough
/// that an idle pool parks (and stops burning cores) almost at once.
const WORKER_SPIN: u32 = 8_192;

/// Worker spin budget when the pool is **oversubscribed** (more pool
/// threads than cores, the single-core CI shape): every spin iteration
/// then steals cycles from the caller that is trying to produce the
/// next call, so workers give the core back almost immediately.
const OVERSUBSCRIBED_WORKER_SPIN: u32 = 64;

/// Iterations the caller spins on the remaining-chunks counter before
/// escalating. The caller participates in the call, so by the time it
/// starts waiting the stragglers are usually one in-flight chunk away;
/// a short spin covers that without a syscall.
const CALLER_SPIN: u32 = 256;

/// `yield_now` rounds the caller inserts between spinning and parking.
/// The straggler usually holds the call's last chunk; on an
/// oversubscribed host it cannot *run* while the caller occupies the
/// core, so burning the full spin budget first (the old protocol) cost
/// a ~100µs scheduler round-trip per stolen chunk. Yielding hands the
/// core straight to the straggler instead — the stall collapses to a
/// context switch — while on idle multicore hosts a yield is a cheap
/// syscall and the re-check loop stays tight.
const CALLER_YIELDS: u32 = 512;

/// No-op `run` calls timed by the construction-time calibration. The
/// median of the burst is stored as the pool's dispatch cost, so a
/// single scheduling hiccup (or an armed chaos failpoint delaying one
/// dispatch) cannot skew the figure.
const CALIBRATION_ROUNDS: usize = 17;

/// Pool state guarded by the control mutex.
struct Control {
    /// Bumped once per call; 0 means "no job has ever been installed",
    /// so workers initialise their seen-epoch to 0. Wraps (skipping 0)
    /// after 2³² calls, which a worker would only confuse after
    /// sleeping through the entire wrap — not a realistic schedule.
    epoch: u32,
    /// Chunk count of the current call.
    chunks: u32,
    /// The current call's job, `None` between calls.
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    /// Serialises whole `run` calls: the epoch/cursor/remaining
    /// protocol supports one active call at a time, so a second caller
    /// waits here until the first call's barrier completes.
    call: Mutex<()>,
    control: Mutex<Control>,
    /// Workers park here after their spin window expires.
    work_ready: Condvar,
    /// Call-finished flag for a *parked* caller (spinning callers
    /// never touch it); reset during job installation, set by the
    /// thread that completes the call's last chunk.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// `(epoch << 32) | next_chunk`: the range-stealing cursor. The
    /// epoch tag makes claims from finished calls fail their CAS
    /// instead of corrupting the next call's queue — and doubles as
    /// the value spinning workers watch for new work without taking
    /// any lock.
    cursor: AtomicU64,
    /// Chunks of the current call not yet completed; the call's
    /// barrier is this counter reaching zero. Replaces the old
    /// mutex-guarded per-chunk done count: completion is one
    /// `fetch_sub` per chunk, and only the last chunk takes a lock.
    remaining: AtomicU32,
    /// Workers currently parked on `work_ready`; the submit path skips
    /// the `notify_all` syscall entirely while this is zero (spinning
    /// workers see the cursor store directly).
    parked: AtomicUsize,
    /// Shutdown mirror readable from the spin loop (the authoritative
    /// flag lives in `Control` for the parked path's predicate).
    shutdown: AtomicBool,
    /// Live worker threads, maintained by a drop guard in the worker
    /// loop — [`WorkerPool::heal`]'s all-alive fast path is one load.
    live: AtomicUsize,
    /// Whether pool threads (workers + the participating caller)
    /// outnumber the host's cores — fixed at construction. Waiting
    /// threads then yield instead of spinning, because every spin
    /// iteration would steal the core from the thread being waited on.
    oversubscribed: bool,
    /// Set when a chunk panics; remaining chunks are drained without
    /// running the job and the caller re-raises after the barrier.
    panicked: AtomicBool,
    /// The first panicking chunk's payload, resumed on the caller so
    /// the original message/location is not lost.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Decrements the live-worker counter however the worker loop exits
/// (normal shutdown, a `pool-worker` failpoint `return`, or a panic
/// escaping the chunk guard), so heal's liveness view cannot leak.
struct LiveGuard<'a>(&'a AtomicUsize);

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

std::thread_local! {
    /// Set while the current thread is executing a pool chunk; a
    /// nested [`WorkerPool::run`] from inside a job would deadlock on
    /// the call mutex, so it is detected and rejected instead.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Snapshot of a [`WorkerPool`]'s observable state, taken by
/// [`WorkerPool::stats`]. Plain data — safe to ship across threads or
/// serialize onto a monitoring wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Dedicated worker threads ([`WorkerPool::worker_count`]).
    pub workers: usize,
    /// Measured per-dispatch coordination cost in nanoseconds
    /// ([`WorkerPool::dispatch_cost_ns`]).
    pub dispatch_cost_ns: u64,
    /// Workers respawned by [`WorkerPool::heal`] over the pool's
    /// lifetime ([`WorkerPool::respawn_count`]).
    pub respawn_count: usize,
}

/// A persistent pool of parked worker threads; see the module docs.
///
/// Most callers want the process-wide [`WorkerPool::global`] instance.
/// Dedicated pools (tests, isolation experiments) shut their workers
/// down on drop.
///
/// # Examples
///
/// ```
/// use portnum_graph::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits = AtomicUsize::new(0);
/// WorkerPool::global().run(16, &|i| {
///     hits.fetch_add(i + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), (1..=16).sum());
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Live worker handles, interior-mutable so [`heal`](Self::heal)
    /// can replace dead workers from a `&self` call path.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The worker count the pool maintains (healing respawns up to it).
    target_workers: usize,
    /// Monotonic id for worker thread names, so respawned workers are
    /// distinguishable in stack traces from the ones they replaced.
    next_worker_id: AtomicUsize,
    /// Total workers ever respawned by [`heal`](Self::heal);
    /// observable so tests can pin the self-healing contract.
    respawned: AtomicUsize,
    /// Measured cost of one no-op `run` round-trip, in nanoseconds
    /// (median of [`CALIBRATION_ROUNDS`] calls at construction; 0 for
    /// zero-worker pools, whose calls are plain inline loops).
    dispatch_cost_ns: AtomicU64,
}

impl WorkerPool {
    /// A pool with `workers` dedicated threads (the caller of
    /// [`run`](WorkerPool::run) always participates as one more).
    /// `workers == 0` is valid: every call then runs inline.
    ///
    /// Construction with workers also times a short burst of no-op
    /// calls and stores the median as the pool's measured dispatch
    /// cost (see [`dispatch_cost_ns`](Self::dispatch_cost_ns)).
    ///
    /// Pool construction also arms any failpoints named in the
    /// `PORTNUM_FAILPOINTS` environment variable (parsed once per
    /// process, panicking on a malformed spec like every other knob):
    /// every engine path crosses the pool module, so this is the one
    /// production hook that makes env-driven chaos work without test
    /// scaffolding.
    pub fn new(workers: usize) -> WorkerPool {
        fail::setup_from_env();
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let shared = Arc::new(Shared {
            call: Mutex::new(()),
            control: Mutex::new(Control { epoch: 0, chunks: 0, job: None, shutdown: false }),
            work_ready: Condvar::new(),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            cursor: AtomicU64::new(0),
            remaining: AtomicU32::new(0),
            parked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            oversubscribed: workers + 1 > cores,
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        });
        let handles = (0..workers).map(|i| spawn_worker(&shared, i)).collect();
        let pool = WorkerPool {
            shared,
            workers: Mutex::new(handles),
            target_workers: workers,
            next_worker_id: AtomicUsize::new(workers),
            respawned: AtomicUsize::new(0),
            dispatch_cost_ns: AtomicU64::new(0),
        };
        if workers > 0 {
            pool.calibrate();
        }
        pool
    }

    /// The process-wide pool, created on first use with
    /// `available_parallelism - 1` workers (at least one, so the pool
    /// machinery is exercised even on single-core hosts; the caller is
    /// the remaining thread).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            WorkerPool::new(threads.max(2) - 1)
        })
    }

    /// Number of dedicated worker threads (the caller adds one more).
    pub fn worker_count(&self) -> usize {
        self.target_workers
    }

    /// The measured cost of one no-op [`run`](Self::run) round-trip in
    /// nanoseconds: the median of a short burst timed at construction.
    /// This is the honest per-call coordination price the parallel
    /// work gate ([`crate::partition::threads_for`]) charges against a
    /// prospective fan-out, and the figure the plan executor surfaces
    /// in its `ExecStats`. Zero for zero-worker pools (inline calls).
    pub fn dispatch_cost_ns(&self) -> u64 {
        self.dispatch_cost_ns.load(Ordering::Relaxed)
    }

    /// Times [`CALIBRATION_ROUNDS`] no-op calls and stores the median.
    /// Each call is guarded against panics so an armed chaos failpoint
    /// (`pool-dispatch=panic`) degrades the sample instead of aborting
    /// pool construction; with no usable sample the cost stays 0 (the
    /// gate then falls back to the static threshold alone).
    fn calibrate(&self) {
        let chunks = self.target_workers + 1;
        let mut samples = Vec::with_capacity(CALIBRATION_ROUNDS);
        for _ in 0..CALIBRATION_ROUNDS {
            let start = std::time::Instant::now();
            if catch_unwind(AssertUnwindSafe(|| self.run(chunks, &|_| {}))).is_ok() {
                samples.push(start.elapsed().as_nanos() as u64);
            }
        }
        samples.sort_unstable();
        if !samples.is_empty() {
            self.dispatch_cost_ns.store(samples[samples.len() / 2], Ordering::Relaxed);
        }
    }

    /// Total workers respawned by [`heal`](Self::heal) over the pool's
    /// lifetime — the observable half of the self-healing contract.
    pub fn respawn_count(&self) -> usize {
        self.respawned.load(Ordering::Relaxed)
    }

    /// One-shot snapshot of the pool's observable state — worker
    /// count, measured dispatch cost, and respawn total — for
    /// monitoring surfaces (the serving layer's stats endpoint reports
    /// this verbatim). Cheap: three atomic loads.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.worker_count(),
            dispatch_cost_ns: self.dispatch_cost_ns(),
            respawn_count: self.respawn_count(),
        }
    }

    /// Detects and replaces dead worker threads. Called at every
    /// [`run`](Self::run) entry; the all-alive fast path is a single
    /// atomic load of the live-worker counter (each worker holds a
    /// drop guard that decrements it on any exit). A worker can die
    /// only by exiting its loop (the `pool-worker` failpoint's
    /// `return` action) or by a panic escaping the chunk guard —
    /// either way the epoch protocol is unaffected, so a fresh worker
    /// can join mid-stream. Public so callers can repair eagerly
    /// between calls.
    pub fn heal(&self) {
        if self.shared.live.load(Ordering::Acquire) >= self.target_workers {
            return;
        }
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        let dead: Vec<JoinHandle<()>> = {
            let mut alive = Vec::with_capacity(workers.len());
            let mut dead = Vec::new();
            for handle in workers.drain(..) {
                if handle.is_finished() {
                    dead.push(handle);
                } else {
                    alive.push(handle);
                }
            }
            *workers = alive;
            dead
        };
        for handle in dead {
            // A dead worker's exit status carries nothing the pool can
            // act on (job panics never escape the chunk guard), so the
            // join result is deliberately dropped.
            let _ = handle.join();
            let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
            workers.push(spawn_worker(&self.shared, id));
            self.respawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs `job(i)` exactly once for every `i in 0..chunks`, on the
    /// pool's workers and the calling thread, returning once all
    /// invocations have completed. Concurrent `run` calls on the same
    /// pool are serialised: the second caller blocks until the first
    /// call's barrier completes, then gets the whole pool.
    ///
    /// `run` is **not re-entrant**: a job must never call `run` (on
    /// any pool) from inside a chunk — the outer call holds the pool
    /// for its whole duration, so nesting would deadlock. Nested calls
    /// are detected and rejected with a panic instead of hanging.
    ///
    /// # Panics
    ///
    /// Resumes the first panicking chunk's panic on the caller
    /// (original payload preserved); the remaining chunks are skipped
    /// but still drained, so the pool stays usable. Also panics on
    /// re-entrant use, see above.
    pub fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        fail::fail_point!("pool-dispatch");
        assert!(
            !IN_POOL_JOB.with(std::cell::Cell::get),
            "nested WorkerPool::run from inside a pool chunk would deadlock; \
             restructure the job to fan out from the caller instead"
        );
        if self.target_workers == 0 {
            // Inline fast path: no protocol, no atomics.
            for i in 0..chunks {
                job(i);
            }
            return;
        }
        self.heal();
        let chunks32 = u32::try_from(chunks).expect("pool calls are capped at 2^32 chunks");
        let _call = self.shared.call.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        #[allow(unsafe_code)]
        // SAFETY: lifetime erasure only — the pointer is dereferenced
        // exclusively between installation below and the completion
        // barrier at the end of this call, during which `job` is alive
        // (see the module-level safety argument).
        let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                job,
            )
        };
        let epoch = {
            let mut control = self.shared.control.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            control.epoch = control.epoch.wrapping_add(1);
            if control.epoch == 0 {
                control.epoch = 1;
            }
            control.chunks = chunks32;
            control.job = Some(Job { ptr });
            *self.shared.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = false;
            self.shared.remaining.store(chunks32, Ordering::Release);
            self.shared.panicked.store(false, Ordering::Relaxed);
            // Publish the new cursor last: spinning workers key off the
            // epoch tag, and parked workers read `control` under the
            // mutex — either way the job/chunk state is visible first.
            self.shared.cursor.store(u64::from(control.epoch) << 32, Ordering::Release);
            control.epoch
        };
        // Wake parked workers only: spinning workers have already seen
        // the cursor store, and an empty wait queue makes the notify a
        // wasted syscall on the submit hot path. An *oversubscribed*
        // pool never wakes parked workers at all — a woken worker must
        // time-share the caller's own core, so the wake can only add
        // syscalls and context switches to a call the participating
        // caller (and any worker still inside its spin window) already
        // completes; exactly-once execution never depends on workers.
        if !self.shared.oversubscribed && self.shared.parked.load(Ordering::SeqCst) > 0 {
            self.shared.work_ready.notify_all();
        }

        // The caller is a worker too; with every chunk claimed via the
        // epoch-tagged cursor this also guarantees completion even if
        // all workers are still waking up.
        run_chunks(&self.shared, epoch, chunks32, Job { ptr });

        // Completion barrier, in three tiers: spin briefly (the caller
        // just ran chunks, so stragglers are usually one in-flight
        // chunk away), then yield — on an oversubscribed host the
        // straggler needs this core to finish at all, and handing it
        // over costs a context switch instead of the spin budget plus
        // a scheduler round-trip — and finally park on the done
        // condvar.
        let mut waits = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            waits += 1;
            if waits < CALLER_SPIN {
                std::hint::spin_loop();
            } else if waits < CALLER_SPIN + CALLER_YIELDS {
                std::thread::yield_now();
            } else {
                let mut done =
                    self.shared.done.lock().unwrap_or_else(PoisonError::into_inner);
                while !*done {
                    done = self.shared.done_cv.wait(done).unwrap_or_else(PoisonError::into_inner);
                }
                break;
            }
        }
        // Drop the erased pointer before the borrow ends.
        self.shared.control.lock().unwrap_or_else(std::sync::PoisonError::into_inner).job = None;
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            let payload = self
                .shared
                .panic_payload
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            match payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("a worker-pool chunk panicked"),
            }
        }
    }

    /// Like [`run`](Self::run), but polls `ctl` before every chunk's
    /// job: once the control trips (cancel or deadline), the remaining
    /// chunks drain at one poll each without running the job, the
    /// barrier completes normally, and the first interruption is
    /// returned — so cancel-to-return latency is bounded by the one
    /// chunk already executing, and the pool is immediately reusable.
    ///
    /// The caller owns output-slot semantics: on `Err`, slots whose
    /// chunks never ran hold whatever the caller pre-filled, so callers
    /// must treat the whole output as unpublishable (the engines above
    /// discard it and surface the typed error).
    ///
    /// # Errors
    ///
    /// The first [`Interrupted`] observed by any chunk, or by the
    /// entry check before work starts.
    pub fn run_controlled(
        &self,
        chunks: usize,
        ctl: &ExecControl,
        job: &(dyn Fn(usize) + Sync),
    ) -> Result<(), Interrupted> {
        if ctl.is_unrestricted() {
            self.run(chunks, job);
            return Ok(());
        }
        ctl.check()?;
        let tripped: Mutex<Option<Interrupted>> = Mutex::new(None);
        self.run(chunks, &|i| match ctl.check() {
            Ok(()) => job(i),
            Err(e) => {
                tripped.lock().unwrap_or_else(PoisonError::into_inner).get_or_insert(e);
            }
        });
        match tripped.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut control = self.shared.control.lock().unwrap_or_else(PoisonError::into_inner);
            control.shutdown = true;
        }
        // Spinning workers watch the atomic mirror; parked workers the
        // control flag via the condvar.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.target_workers).finish_non_exhaustive()
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> JoinHandle<()> {
    // Count the worker live from the spawning side, so a heal/run
    // racing the thread's startup does not see a phantom shortfall and
    // spawn a duplicate.
    shared.live.fetch_add(1, Ordering::Release);
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("portnum-pool-{id}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawning a pool worker")
}

fn worker_loop(shared: &Shared) {
    let _live = LiveGuard(&shared.live);
    let mut seen = 0u32;
    loop {
        // Chaos site: a `return` action makes this worker exit, which
        // `WorkerPool::heal` must detect and repair. Safe at any time:
        // the caller participates in every call, so in-flight chunks
        // still complete without this worker.
        fail::fail_point!("pool-worker", |_| ());
        // Spin-then-park: watch the cursor's epoch tag for a fresh
        // call before paying the condvar round-trip. A burst of small
        // calls is picked up here, lock-free. On an oversubscribed
        // host the budget is tiny — a spinning worker would be
        // stealing the core from the caller producing the next call.
        let spin_budget =
            if shared.oversubscribed { OVERSUBSCRIBED_WORKER_SPIN } else { WORKER_SPIN };
        let mut spun_out = true;
        let mut spins = 0u32;
        while spins < spin_budget {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let tag = (shared.cursor.load(Ordering::Acquire) >> 32) as u32;
            if tag != seen && tag != 0 {
                spun_out = false;
                break;
            }
            spins += 1;
            std::hint::spin_loop();
        }
        let (epoch, chunks, job) = {
            let mut control =
                shared.control.lock().unwrap_or_else(PoisonError::into_inner);
            if spun_out {
                // Park. The parked counter is published before the
                // epoch recheck under the lock, so a submitter either
                // sees us parked (and notifies) or we see its epoch.
                shared.parked.fetch_add(1, Ordering::SeqCst);
                loop {
                    if control.shutdown {
                        shared.parked.fetch_sub(1, Ordering::SeqCst);
                        return;
                    }
                    if control.epoch != seen {
                        break;
                    }
                    control =
                        shared.work_ready.wait(control).unwrap_or_else(PoisonError::into_inner);
                }
                shared.parked.fetch_sub(1, Ordering::SeqCst);
            } else if control.shutdown {
                return;
            }
            seen = control.epoch;
            (control.epoch, control.chunks, control.job)
        };
        if let Some(job) = job {
            run_chunks(shared, epoch, chunks, job);
        }
    }
}

/// Claims and executes chunks of the given epoch until the queue is
/// exhausted or the epoch moves on. Every claim is an epoch-verified
/// CAS, so a thread that dozed through the end of a call cannot steal
/// from (or double-count into) the next one. Completion is one
/// `fetch_sub` on the remaining counter per chunk; the thread that
/// completes the call's last chunk additionally takes the done lock to
/// wake a parked caller.
fn run_chunks(shared: &Shared, epoch: u32, chunks: u32, job: Job) {
    loop {
        let mut cursor = shared.cursor.load(Ordering::Acquire);
        let index = loop {
            if (cursor >> 32) as u32 != epoch {
                return;
            }
            let index = cursor as u32;
            if index >= chunks {
                return;
            }
            match shared.cursor.compare_exchange_weak(
                cursor,
                cursor + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break index,
                Err(current) => cursor = current,
            }
        };
        if !shared.panicked.load(Ordering::Relaxed) {
            #[allow(unsafe_code)]
            // SAFETY: the chunk was claimed under the current epoch, so
            // the installing `run` call is still blocked on the
            // completion barrier below and the pointee is alive.
            let func = unsafe { &*job.ptr };
            IN_POOL_JOB.with(|flag| flag.set(true));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Chaos site inside the panic guard, so an injected
                // panic exercises the same containment path as a real
                // job panic.
                fail::fail_point!("pool-chunk");
                func(index as usize);
            }));
            IN_POOL_JOB.with(|flag| flag.set(false));
            if let Err(payload) = outcome {
                // Keep the first payload so the caller can resume the
                // original panic (message and location intact).
                let mut slot =
                    shared.panic_payload.lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert(payload);
                shared.panicked.store(true, Ordering::Relaxed);
            }
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk of the call: flip the done flag under its
            // lock so a caller that gave up spinning (checks the flag
            // under the same lock) cannot miss the wake.
            let mut done = shared.done.lock().unwrap_or_else(PoisonError::into_inner);
            *done = true;
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        for chunks in [0usize, 1, 2, 7, 64, 1000] {
            let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(chunks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "chunks = {chunks}"
            );
        }
    }

    #[test]
    fn per_chunk_slots_are_deterministic() {
        // Each chunk writes its own slot; repeated calls must produce
        // identical output regardless of which worker ran what.
        let pool = WorkerPool::new(4);
        let reference: Vec<usize> = (0..257).map(|i| i * i).collect();
        for _ in 0..50 {
            let slots: Vec<Mutex<usize>> = (0..257).map(|_| Mutex::new(0)).collect();
            pool.run(257, &|i| {
                *slots[i].lock().unwrap() = i * i;
            });
            let got: Vec<usize> = slots.iter().map(|s| *s.lock().unwrap()).collect();
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(pool.dispatch_cost_ns(), 0, "inline calls have no dispatch cost");
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_survives_many_small_calls() {
        // The epoch protocol must hand back a clean queue every call.
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..2000 {
            pool.run(3, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2000 * 6);
    }

    #[test]
    fn pool_survives_calls_across_park_boundaries() {
        // Sleeping past the spin window parks every worker; the next
        // call must take the condvar wake path and still complete.
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for round in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            pool.run(8, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (round + 1) * 36);
        }
    }

    #[test]
    fn dispatch_cost_is_calibrated_at_construction() {
        let pool = WorkerPool::new(2);
        let cost = pool.dispatch_cost_ns();
        assert!(cost > 0, "a pool with workers must measure a nonzero dispatch cost");
        // Sanity ceiling: a no-op round-trip through warm workers is
        // microseconds, not milliseconds (loose bound for CI noise).
        assert!(cost < 50_000_000, "implausible dispatch cost: {cost}ns");
    }

    #[test]
    fn borrowed_environment_is_visible_and_mutable_per_chunk() {
        let pool = WorkerPool::new(2);
        let input: Vec<usize> = (0..100).collect();
        let out: Vec<Mutex<usize>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.run(4, &|c| {
            let chunk = &input[c * 25..(c + 1) * 25];
            *out[c].lock().unwrap() = chunk.iter().sum();
        });
        let total: usize = out.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn panicking_chunk_propagates_payload_and_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        // The ORIGINAL payload reaches the caller, not a generic
        // re-panic — chunk diagnostics survive the pool boundary.
        let payload = result.expect_err("panic must reach the caller");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom");
        // The pool still works afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn nested_run_is_rejected_not_deadlocked() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|_| {
                WorkerPool::global().run(2, &|_| {});
            });
        }));
        let payload = result.expect_err("nested run must be rejected");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(message.contains("nested WorkerPool::run"), "got: {message}");
        // Still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_controlled_pre_cancelled_runs_nothing() {
        use crate::resilience::{CancelToken, ExecControl, InterruptReason};
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let ctl = ExecControl::with_cancel(token.clone());
        let ran = AtomicUsize::new(0);
        token.cancel();
        let err = pool
            .run_controlled(64, &ctl, &|_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect_err("pre-cancelled control must interrupt");
        assert_eq!(err.reason, InterruptReason::Cancelled);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        // The same pool serves the next (unrestricted) call in full.
        pool.run_controlled(5, &ExecControl::unrestricted(), &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .expect("unrestricted call");
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn run_controlled_expired_deadline_interrupts() {
        use crate::resilience::{Deadline, ExecControl, InterruptReason};
        use std::time::{Duration, Instant};
        let pool = WorkerPool::new(1);
        let ctl = ExecControl::with_deadline(Deadline::at(Instant::now() - Duration::from_secs(1)));
        let err = pool.run_controlled(8, &ctl, &|_| {}).expect_err("expired deadline");
        assert_eq!(err.reason, InterruptReason::DeadlineExceeded);
    }

    #[test]
    fn run_controlled_unrestricted_is_passthrough() {
        use crate::resilience::ExecControl;
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run_controlled(16, &ExecControl::unrestricted(), &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .expect("unrestricted never interrupts");
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn respawn_count_starts_at_zero_and_heal_is_a_noop_when_alive() {
        let pool = WorkerPool::new(2);
        pool.run(4, &|_| {});
        pool.heal();
        assert_eq!(pool.respawn_count(), 0);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        let hits = AtomicUsize::new(0);
        WorkerPool::global().run(12, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }
}
