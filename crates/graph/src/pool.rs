//! A persistent worker pool for data-parallel chunk jobs.
//!
//! The refinement engines ([`crate::partition`], [`crate::refinement`],
//! `portnum-logic`'s bisimulation) and the compiled-plan executor all
//! fan the same shape of work out over threads: a call-scoped list of
//! independent *chunks* (contiguous node ranges, plan instructions,
//! bitset word ranges), each writing into its own pre-assigned output
//! slot. Spawning fresh scoped threads per call costs ~100µs — more
//! than an entire refinement round on a mid-size model — which is why
//! the old scoped-thread fan-out had to hide behind a large work gate.
//!
//! [`WorkerPool`] keeps the threads alive instead: workers park on a
//! condvar between calls, and a call is one mutex-protected job
//! installation plus one wake-up. Per-call overhead drops to a few
//! microseconds, so the shared work gate
//! ([`crate::partition::PARALLEL_THRESHOLD`]) can sit an order of
//! magnitude lower and small/medium models go parallel too.
//!
//! # Tuning (`PORTNUM_POOL`)
//!
//! Whether a phase actually fans out is decided by the caller through
//! the shared work gate [`crate::partition::threads_for`], which the
//! `PORTNUM_POOL` environment variable overrides: `force` always
//! parallelises (≥ 2 threads even on single-core hosts, so CI can
//! drive every pool path), `off` never does, `auto` (default) gates on
//! [`crate::partition::PARALLEL_THRESHOLD`]. The pool itself is sized
//! `cores − 1` workers (minimum 1) plus the participating caller.
//!
//! # Execution model
//!
//! [`WorkerPool::run`]`(chunks, job)` executes `job(i)` exactly once
//! for every `i in 0..chunks` and returns when all invocations have
//! finished. Chunks are claimed from a shared epoch-tagged cursor
//! (range stealing): whichever thread is free takes the next index, so
//! a straggler chunk cannot idle the rest of the pool. The **caller
//! participates** — with zero workers (single-core hosts) `run` simply
//! executes every chunk inline, so callers never need a sequential
//! fallback path for correctness.
//!
//! # Determinism
//!
//! Which *thread* runs a chunk is scheduling-dependent, but chunk
//! indices are handed out exactly once, so a job that writes only to
//! per-chunk slots (`buffers[i]`, disjoint word ranges of one bitset)
//! produces output independent of the interleaving. The refinement
//! front-ends rely on this: encode buffers are filled per chunk and
//! interned *in chunk order* afterwards, which keeps first-seen block
//! ids bit-identical to the sequential engine.
//!
//! # Safety
//!
//! `run` lends the job reference to worker threads for the duration of
//! the call, erasing its lifetime (the one `unsafe` impl in this
//! crate). This is sound because `run` does not return until every
//! claimed chunk has completed and no further chunk can be claimed for
//! that epoch: workers verify the epoch with a compare-and-swap before
//! every claim, so a stale worker can neither touch a new call's
//! cursor nor run an old call's job after its borrow ended. Panics in
//! a chunk are caught, remaining chunks are drained without running
//! the job, and the panic is re-raised on the caller once the call's
//! barrier is reached — the borrow again outlives every use.
//!
//! # Self-healing contract
//!
//! The pool guarantees it stays serviceable across the three fault
//! classes a shared, process-wide resource must survive:
//!
//! 1. **Job panics** — caught per chunk; the remaining chunks drain
//!    without running the job, the barrier completes, and the original
//!    payload is re-raised on the caller. The *next* call starts from a
//!    clean epoch (pinned by `panicking_chunk_propagates…` below and
//!    the cross-crate reuse tests in `portnum-logic`).
//! 2. **Worker death** — a worker thread that exits (injected via the
//!    `pool-worker` failpoint, or killed by an unhandled panic outside
//!    the chunk guard) is detected at the next [`WorkerPool::run`]
//!    entry and respawned. In-flight calls are unaffected because the
//!    caller participates and drains every chunk itself if need be.
//! 3. **Poisoned locks** — every mutex/condvar acquisition recovers
//!    the guard from a `PoisonError`; the pool's state machine is
//!    valid at every step that can unwind, so the poison flag carries
//!    no information here.
//!
//! # Cancellation
//!
//! [`WorkerPool::run_controlled`] threads an
//! [`crate::resilience::ExecControl`] through the chunk loop: each
//! claimed chunk polls the control before running the job, so after a
//! cancel/deadline trip the remaining chunks drain at a cost of one
//! atomic load each and the call returns a typed
//! [`crate::resilience::Interrupted`] — latency is bounded by the one
//! chunk that was already executing.
//!
//! # Failpoints
//!
//! Chaos sites (no-ops unless activated, see the `fail` shim):
//! `pool-dispatch` (entry of [`WorkerPool::run`]), `pool-chunk` (just
//! before a claimed chunk's job runs, inside the panic guard), and
//! `pool-worker` (worker loop head; a `return` action makes the worker
//! thread exit, exercising the respawn path).

use crate::resilience::{ExecControl, Interrupted};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// The job view a worker holds while a call is active: a raw,
/// lifetime-erased pointer to the caller's `Fn(usize)` closure.
///
/// Sending the raw pointer across threads is safe under the pool's
/// protocol: the pointer is only dereferenced between job installation
/// and the completion barrier of the same epoch, and
/// [`WorkerPool::run`] blocks until that barrier — so the pointee (and
/// everything it borrows) is alive for every dereference.
#[derive(Clone, Copy)]
struct Job {
    ptr: *const (dyn Fn(usize) + Sync),
}

#[allow(unsafe_code)]
// SAFETY: see the `Job` doc comment — the pointer is only dereferenced
// while the caller of `run` is blocked inside the call that installed it.
unsafe impl Send for Job {}
#[allow(unsafe_code)]
// SAFETY: as above; the pointee is `Sync`, so shared dereferences from
// several workers at once are fine.
unsafe impl Sync for Job {}

/// Pool state guarded by the control mutex.
struct Control {
    /// Bumped once per call; 0 means "no job has ever been installed",
    /// so workers initialise their seen-epoch to 0. Wraps (skipping 0)
    /// after 2³² calls, which a worker would only confuse after
    /// sleeping through the entire wrap — not a realistic schedule.
    epoch: u32,
    /// Chunk count of the current call.
    chunks: u32,
    /// The current call's job, `None` between calls.
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    /// Serialises whole `run` calls: the epoch/cursor/done protocol
    /// supports one active call at a time, so a second caller waits
    /// here until the first call's barrier completes.
    call: Mutex<()>,
    control: Mutex<Control>,
    /// Workers park here between calls.
    work_ready: Condvar,
    /// Completed chunks of the current call; the caller parks on
    /// `done_cv` until it reaches `chunks`.
    done: Mutex<usize>,
    done_cv: Condvar,
    /// `(epoch << 32) | next_chunk`: the range-stealing cursor. The
    /// epoch tag makes claims from finished calls fail their CAS
    /// instead of corrupting the next call's queue.
    cursor: AtomicU64,
    /// Set when a chunk panics; remaining chunks are drained without
    /// running the job and the caller re-raises after the barrier.
    panicked: AtomicBool,
    /// The first panicking chunk's payload, resumed on the caller so
    /// the original message/location is not lost.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

std::thread_local! {
    /// Set while the current thread is executing a pool chunk; a
    /// nested [`WorkerPool::run`] from inside a job would deadlock on
    /// the call mutex, so it is detected and rejected instead.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of parked worker threads; see the module docs.
///
/// Most callers want the process-wide [`WorkerPool::global`] instance.
/// Dedicated pools (tests, isolation experiments) shut their workers
/// down on drop.
///
/// # Examples
///
/// ```
/// use portnum_graph::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits = AtomicUsize::new(0);
/// WorkerPool::global().run(16, &|i| {
///     hits.fetch_add(i + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), (1..=16).sum());
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Live worker handles, interior-mutable so [`heal`](Self::heal)
    /// can replace dead workers from a `&self` call path.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The worker count the pool maintains (healing respawns up to it).
    target_workers: usize,
    /// Monotonic id for worker thread names, so respawned workers are
    /// distinguishable in stack traces from the ones they replaced.
    next_worker_id: AtomicUsize,
    /// Total workers ever respawned by [`heal`](Self::heal);
    /// observable so tests can pin the self-healing contract.
    respawned: AtomicUsize,
}

impl WorkerPool {
    /// A pool with `workers` dedicated threads (the caller of
    /// [`run`](WorkerPool::run) always participates as one more).
    /// `workers == 0` is valid: every call then runs inline.
    ///
    /// Pool construction also arms any failpoints named in the
    /// `PORTNUM_FAILPOINTS` environment variable (parsed once per
    /// process, panicking on a malformed spec like every other knob):
    /// every engine path crosses the pool module, so this is the one
    /// production hook that makes env-driven chaos work without test
    /// scaffolding.
    pub fn new(workers: usize) -> WorkerPool {
        fail::setup_from_env();
        let shared = Arc::new(Shared {
            call: Mutex::new(()),
            control: Mutex::new(Control { epoch: 0, chunks: 0, job: None, shutdown: false }),
            work_ready: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            cursor: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        });
        let handles =
            (0..workers).map(|i| spawn_worker(&shared, i)).collect();
        WorkerPool {
            shared,
            workers: Mutex::new(handles),
            target_workers: workers,
            next_worker_id: AtomicUsize::new(workers),
            respawned: AtomicUsize::new(0),
        }
    }

    /// The process-wide pool, created on first use with
    /// `available_parallelism - 1` workers (at least one, so the pool
    /// machinery is exercised even on single-core hosts; the caller is
    /// the remaining thread).
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            WorkerPool::new(threads.max(2) - 1)
        })
    }

    /// Number of dedicated worker threads (the caller adds one more).
    pub fn worker_count(&self) -> usize {
        self.target_workers
    }

    /// Total workers respawned by [`heal`](Self::heal) over the pool's
    /// lifetime — the observable half of the self-healing contract.
    pub fn respawn_count(&self) -> usize {
        self.respawned.load(Ordering::Relaxed)
    }

    /// Detects and replaces dead worker threads. Called at every
    /// [`run`](Self::run) entry; the all-alive fast path is one
    /// `is_finished` atomic load per worker. A worker can die only by
    /// exiting its loop (the `pool-worker` failpoint's `return` action)
    /// or by a panic escaping the chunk guard — either way the epoch
    /// protocol is unaffected, so a fresh worker can join mid-stream.
    /// Public so callers can repair eagerly between calls; calling it
    /// with every worker alive is one atomic load per worker.
    pub fn heal(&self) {
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        if workers.iter().all(|h| !h.is_finished()) {
            return;
        }
        let dead: Vec<JoinHandle<()>> = {
            let mut alive = Vec::with_capacity(workers.len());
            let mut dead = Vec::new();
            for handle in workers.drain(..) {
                if handle.is_finished() {
                    dead.push(handle);
                } else {
                    alive.push(handle);
                }
            }
            *workers = alive;
            dead
        };
        for handle in dead {
            // A dead worker's exit status carries nothing the pool can
            // act on (job panics never escape the chunk guard), so the
            // join result is deliberately dropped.
            let _ = handle.join();
            let id = self.next_worker_id.fetch_add(1, Ordering::Relaxed);
            workers.push(spawn_worker(&self.shared, id));
            self.respawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs `job(i)` exactly once for every `i in 0..chunks`, on the
    /// pool's workers and the calling thread, returning once all
    /// invocations have completed. Concurrent `run` calls on the same
    /// pool are serialised: the second caller blocks until the first
    /// call's barrier completes, then gets the whole pool.
    ///
    /// `run` is **not re-entrant**: a job must never call `run` (on
    /// any pool) from inside a chunk — the outer call holds the pool
    /// for its whole duration, so nesting would deadlock. Nested calls
    /// are detected and rejected with a panic instead of hanging.
    ///
    /// # Panics
    ///
    /// Resumes the first panicking chunk's panic on the caller
    /// (original payload preserved); the remaining chunks are skipped
    /// but still drained, so the pool stays usable. Also panics on
    /// re-entrant use, see above.
    pub fn run(&self, chunks: usize, job: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        fail::fail_point!("pool-dispatch");
        assert!(
            !IN_POOL_JOB.with(std::cell::Cell::get),
            "nested WorkerPool::run from inside a pool chunk would deadlock; \
             restructure the job to fan out from the caller instead"
        );
        if self.target_workers == 0 {
            // Inline fast path: no protocol, no atomics.
            for i in 0..chunks {
                job(i);
            }
            return;
        }
        self.heal();
        let chunks32 = u32::try_from(chunks).expect("pool calls are capped at 2^32 chunks");
        let _call = self.shared.call.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        #[allow(unsafe_code)]
        // SAFETY: lifetime erasure only — the pointer is dereferenced
        // exclusively between installation below and the completion
        // barrier at the end of this call, during which `job` is alive
        // (see the module-level safety argument).
        let ptr: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                job,
            )
        };
        let epoch = {
            let mut control = self.shared.control.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            control.epoch = control.epoch.wrapping_add(1);
            if control.epoch == 0 {
                control.epoch = 1;
            }
            control.chunks = chunks32;
            control.job = Some(Job { ptr });
            *self.shared.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = 0;
            self.shared.panicked.store(false, Ordering::Relaxed);
            // Publish the new cursor before workers can observe the new
            // epoch (they read `control` under the mutex).
            self.shared.cursor.store(u64::from(control.epoch) << 32, Ordering::Release);
            control.epoch
        };
        self.shared.work_ready.notify_all();

        // The caller is a worker too; with every chunk claimed via the
        // epoch-tagged cursor this also guarantees completion even if
        // all workers are still waking up.
        run_chunks(&self.shared, epoch, chunks32, Job { ptr });

        let mut done = self.shared.done.lock().unwrap_or_else(PoisonError::into_inner);
        while *done < chunks {
            done = self.shared.done_cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
        drop(done);
        // Drop the erased pointer before the borrow ends.
        self.shared.control.lock().unwrap_or_else(std::sync::PoisonError::into_inner).job = None;
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            let payload = self
                .shared
                .panic_payload
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            match payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("a worker-pool chunk panicked"),
            }
        }
    }

    /// Like [`run`](Self::run), but polls `ctl` before every chunk's
    /// job: once the control trips (cancel or deadline), the remaining
    /// chunks drain at one poll each without running the job, the
    /// barrier completes normally, and the first interruption is
    /// returned — so cancel-to-return latency is bounded by the one
    /// chunk already executing, and the pool is immediately reusable.
    ///
    /// The caller owns output-slot semantics: on `Err`, slots whose
    /// chunks never ran hold whatever the caller pre-filled, so callers
    /// must treat the whole output as unpublishable (the engines above
    /// discard it and surface the typed error).
    ///
    /// # Errors
    ///
    /// The first [`Interrupted`] observed by any chunk, or by the
    /// entry check before work starts.
    pub fn run_controlled(
        &self,
        chunks: usize,
        ctl: &ExecControl,
        job: &(dyn Fn(usize) + Sync),
    ) -> Result<(), Interrupted> {
        if ctl.is_unrestricted() {
            self.run(chunks, job);
            return Ok(());
        }
        ctl.check()?;
        let tripped: Mutex<Option<Interrupted>> = Mutex::new(None);
        self.run(chunks, &|i| match ctl.check() {
            Ok(()) => job(i),
            Err(e) => {
                tripped.lock().unwrap_or_else(PoisonError::into_inner).get_or_insert(e);
            }
        });
        match tripped.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut control = self.shared.control.lock().unwrap_or_else(PoisonError::into_inner);
            control.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.target_workers).finish_non_exhaustive()
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("portnum-pool-{id}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawning a pool worker")
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u32;
    loop {
        // Chaos site: a `return` action makes this worker exit, which
        // `WorkerPool::heal` must detect and repair. Safe at any time:
        // the caller participates in every call, so in-flight chunks
        // still complete without this worker.
        fail::fail_point!("pool-worker", |_| ());
        let (epoch, chunks, job) = {
            let mut control = shared.control.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if control.shutdown {
                    return;
                }
                if control.epoch != seen {
                    break;
                }
                control = shared.work_ready.wait(control).unwrap_or_else(PoisonError::into_inner);
            }
            seen = control.epoch;
            (control.epoch, control.chunks, control.job)
        };
        if let Some(job) = job {
            run_chunks(shared, epoch, chunks, job);
        }
    }
}

/// Claims and executes chunks of the given epoch until the queue is
/// exhausted or the epoch moves on. Every claim is an epoch-verified
/// CAS, so a thread that dozed through the end of a call cannot steal
/// from (or double-count into) the next one.
fn run_chunks(shared: &Shared, epoch: u32, chunks: u32, job: Job) {
    loop {
        let mut cursor = shared.cursor.load(Ordering::Acquire);
        let index = loop {
            if (cursor >> 32) as u32 != epoch {
                return;
            }
            let index = cursor as u32;
            if index >= chunks {
                return;
            }
            match shared.cursor.compare_exchange_weak(
                cursor,
                cursor + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break index,
                Err(current) => cursor = current,
            }
        };
        if !shared.panicked.load(Ordering::Relaxed) {
            #[allow(unsafe_code)]
            // SAFETY: the chunk was claimed under the current epoch, so
            // the installing `run` call is still blocked on the
            // completion barrier below and the pointee is alive.
            let func = unsafe { &*job.ptr };
            IN_POOL_JOB.with(|flag| flag.set(true));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Chaos site inside the panic guard, so an injected
                // panic exercises the same containment path as a real
                // job panic.
                fail::fail_point!("pool-chunk");
                func(index as usize);
            }));
            IN_POOL_JOB.with(|flag| flag.set(false));
            if let Err(payload) = outcome {
                // Keep the first payload so the caller can resume the
                // original panic (message and location intact).
                let mut slot =
                    shared.panic_payload.lock().unwrap_or_else(PoisonError::into_inner);
                slot.get_or_insert(payload);
                shared.panicked.store(true, Ordering::Relaxed);
            }
        }
        let mut done = shared.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done += 1;
        if *done == chunks as usize {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        for chunks in [0usize, 1, 2, 7, 64, 1000] {
            let counts: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(chunks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "chunks = {chunks}"
            );
        }
    }

    #[test]
    fn per_chunk_slots_are_deterministic() {
        // Each chunk writes its own slot; repeated calls must produce
        // identical output regardless of which worker ran what.
        let pool = WorkerPool::new(4);
        let reference: Vec<usize> = (0..257).map(|i| i * i).collect();
        for _ in 0..50 {
            let slots: Vec<Mutex<usize>> = (0..257).map(|_| Mutex::new(0)).collect();
            pool.run(257, &|i| {
                *slots[i].lock().unwrap() = i * i;
            });
            let got: Vec<usize> = slots.iter().map(|s| *s.lock().unwrap()).collect();
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn pool_survives_many_small_calls() {
        // The epoch protocol must hand back a clean queue every call.
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..2000 {
            pool.run(3, &|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 2000 * 6);
    }

    #[test]
    fn borrowed_environment_is_visible_and_mutable_per_chunk() {
        let pool = WorkerPool::new(2);
        let input: Vec<usize> = (0..100).collect();
        let out: Vec<Mutex<usize>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.run(4, &|c| {
            let chunk = &input[c * 25..(c + 1) * 25];
            *out[c].lock().unwrap() = chunk.iter().sum();
        });
        let total: usize = out.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, 99 * 100 / 2);
    }

    #[test]
    fn panicking_chunk_propagates_payload_and_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        // The ORIGINAL payload reaches the caller, not a generic
        // re-panic — chunk diagnostics survive the pool boundary.
        let payload = result.expect_err("panic must reach the caller");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom");
        // The pool still works afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn nested_run_is_rejected_not_deadlocked() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|_| {
                WorkerPool::global().run(2, &|_| {});
            });
        }));
        let payload = result.expect_err("nested run must be rejected");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(message.contains("nested WorkerPool::run"), "got: {message}");
        // Still usable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_controlled_pre_cancelled_runs_nothing() {
        use crate::resilience::{CancelToken, ExecControl, InterruptReason};
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        let ctl = ExecControl::with_cancel(token.clone());
        let ran = AtomicUsize::new(0);
        token.cancel();
        let err = pool
            .run_controlled(64, &ctl, &|_| {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect_err("pre-cancelled control must interrupt");
        assert_eq!(err.reason, InterruptReason::Cancelled);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        // The same pool serves the next (unrestricted) call in full.
        pool.run_controlled(5, &ExecControl::unrestricted(), &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .expect("unrestricted call");
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn run_controlled_expired_deadline_interrupts() {
        use crate::resilience::{Deadline, ExecControl, InterruptReason};
        use std::time::{Duration, Instant};
        let pool = WorkerPool::new(1);
        let ctl = ExecControl::with_deadline(Deadline::at(Instant::now() - Duration::from_secs(1)));
        let err = pool.run_controlled(8, &ctl, &|_| {}).expect_err("expired deadline");
        assert_eq!(err.reason, InterruptReason::DeadlineExceeded);
    }

    #[test]
    fn run_controlled_unrestricted_is_passthrough() {
        use crate::resilience::ExecControl;
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run_controlled(16, &ExecControl::unrestricted(), &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .expect("unrestricted never interrupts");
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn respawn_count_starts_at_zero_and_heal_is_a_noop_when_alive() {
        let pool = WorkerPool::new(2);
        pool.run(4, &|_| {});
        pool.heal();
        assert_eq!(pool.respawn_count(), 0);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        let hits = AtomicUsize::new(0);
        WorkerPool::global().run(12, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }
}
