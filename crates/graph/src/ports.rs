//! Port numberings (Section 1.2 of the paper).
//!
//! A *port* of a graph `G` is a pair `(v, i)` with `i < deg(v)` (the paper
//! numbers ports `1..=deg(v)`; this crate uses `0`-based indices throughout).
//! A *port numbering* is a bijection `p` on the ports of `G` such that the
//! node pairs connected by `p` are exactly the adjacent pairs of `G`
//! (`A(p) = A(G)`). It is *consistent* if `p` is an involution:
//! `p(p((v, i))) = (v, i)`.
//!
//! Semantics: if node `v` sends a message to its port `i` and
//! `p((v, i)) = (u, j)`, the message is received by `u` from its port `j`.

use crate::error::PortError;
use crate::graph::{Graph, NodeId};
use crate::matching::one_factorization;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A port `(node, index)` with a `0`-based index `< deg(node)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port {
    /// The node owning the port.
    pub node: NodeId,
    /// The `0`-based port index.
    pub index: usize,
}

impl Port {
    /// Creates a port.
    pub fn new(node: NodeId, index: usize) -> Self {
        Port { node, index }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.node, self.index)
    }
}

/// A port numbering `p` of a graph.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, PortNumbering};
///
/// let g = generators::cycle(4);
/// let p = PortNumbering::consistent(&g);
/// assert!(p.is_consistent());
/// // A message sent by node 0 to its port i is received by a neighbour of 0.
/// let q = p.forward(portnum_graph::Port::new(0, 0));
/// assert!(g.neighbors(0).contains(&q.node));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortNumbering {
    /// `fwd[v][i] = p((v, i))`.
    fwd: Vec<Vec<Port>>,
    /// `bwd[u][j] = p^{-1}((u, j))`.
    bwd: Vec<Vec<Port>>,
}

impl PortNumbering {
    /// Builds a port numbering from the forward map `fwd[v][i] = p((v, i))`,
    /// validating that it is a bijection on ports realising exactly the
    /// adjacency relation of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`PortError`] if the map is not a valid port numbering of `g`.
    pub fn from_forward_map(g: &Graph, fwd: Vec<Vec<Port>>) -> Result<Self, PortError> {
        if fwd.len() != g.len() {
            return Err(PortError::NotBijective);
        }
        for v in g.nodes() {
            if fwd[v].len() != g.degree(v) {
                return Err(PortError::NotBijective);
            }
        }
        let mut bwd: Vec<Vec<Option<Port>>> =
            g.nodes().map(|v| vec![None; g.degree(v)]).collect();
        for v in g.nodes() {
            for (i, &q) in fwd[v].iter().enumerate() {
                if q.node >= g.len() || q.index >= g.degree(q.node) {
                    return Err(PortError::PortOutOfRange {
                        node: q.node,
                        index: q.index,
                        degree: if q.node < g.len() { g.degree(q.node) } else { 0 },
                    });
                }
                if !g.has_edge(v, q.node) {
                    return Err(PortError::EdgeMismatch);
                }
                if bwd[q.node][q.index].is_some() {
                    return Err(PortError::NotBijective);
                }
                bwd[q.node][q.index] = Some(Port::new(v, i));
            }
        }
        let bwd: Vec<Vec<Port>> = bwd
            .into_iter()
            .map(|row| row.into_iter().collect::<Option<Vec<_>>>())
            .collect::<Option<Vec<_>>>()
            .ok_or(PortError::NotBijective)?;
        // `A(p) = A(G)`: a bijection with adjacent targets is not enough (all
        // of a node's ports could point at a single neighbour), so check that
        // the out-targets of every node are exactly its neighbour set.
        for v in g.nodes() {
            let mut targets: Vec<NodeId> = fwd[v].iter().map(|q| q.node).collect();
            targets.sort_unstable();
            if targets != g.neighbors(v) {
                return Err(PortError::EdgeMismatch);
            }
        }
        Ok(PortNumbering { fwd, bwd })
    }

    /// The canonical *consistent* port numbering: edges are scanned in
    /// canonical order and each endpoint uses its next free port, with
    /// `p` an involution (Figure 2 of the paper).
    ///
    /// Every graph has one; this is the conventional choice for the
    /// `VVc` model.
    pub fn consistent(g: &Graph) -> Self {
        let mut next: Vec<usize> = vec![0; g.len()];
        let mut fwd: Vec<Vec<Port>> =
            g.nodes().map(|v| vec![Port::new(usize::MAX, 0); g.degree(v)]).collect();
        for (u, v) in g.edges() {
            let i = next[u];
            let j = next[v];
            next[u] += 1;
            next[v] += 1;
            fwd[u][i] = Port::new(v, j);
            fwd[v][j] = Port::new(u, i);
        }
        let bwd = fwd.clone();
        PortNumbering { fwd, bwd }
    }

    /// A uniformly random port numbering (not consistent in general):
    /// independently for every node, the incident edges are assigned to
    /// out-ports and to in-ports by uniform random permutations.
    ///
    /// Every port numbering of `g` arises this way.
    pub fn random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Self {
        let mut out_perm: Vec<Vec<usize>> = Vec::with_capacity(g.len());
        let mut in_perm: Vec<Vec<usize>> = Vec::with_capacity(g.len());
        for v in g.nodes() {
            let d = g.degree(v);
            let mut a: Vec<usize> = (0..d).collect();
            let mut b: Vec<usize> = (0..d).collect();
            a.shuffle(rng);
            b.shuffle(rng);
            out_perm.push(a);
            in_perm.push(b);
        }
        let mut fwd: Vec<Vec<Port>> =
            g.nodes().map(|v| vec![Port::new(usize::MAX, 0); g.degree(v)]).collect();
        for v in g.nodes() {
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                let i = out_perm[v][k];
                let pos = g.neighbor_position(u, v).expect("adjacency is symmetric");
                let j = in_perm[u][pos];
                fwd[v][i] = Port::new(u, j);
            }
        }
        Self::from_forward_map(g, fwd).expect("random construction is valid by design")
    }

    /// A uniformly random *consistent* port numbering: each node assigns its
    /// incident edges to ports by a uniform random permutation, and the same
    /// port serves both directions of an edge.
    pub fn random_consistent<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Self {
        let mut perm: Vec<Vec<usize>> = Vec::with_capacity(g.len());
        for v in g.nodes() {
            let d = g.degree(v);
            let mut a: Vec<usize> = (0..d).collect();
            a.shuffle(rng);
            perm.push(a);
        }
        let mut fwd: Vec<Vec<Port>> =
            g.nodes().map(|v| vec![Port::new(usize::MAX, 0); g.degree(v)]).collect();
        for v in g.nodes() {
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                let i = perm[v][k];
                let pos = g.neighbor_position(u, v).expect("adjacency is symmetric");
                let j = perm[u][pos];
                fwd[v][i] = Port::new(u, j);
            }
        }
        let bwd = fwd.clone();
        PortNumbering { fwd, bwd }
    }

    /// The *symmetric* port numbering of a `k`-regular graph from Lemma 15 of
    /// the paper: the bipartite double cover of `g` is decomposed into `k`
    /// disjoint perfect matchings `E_0, …, E_{k-1}` (Hall's theorem), and
    /// port `i` of every node is wired along `E_i`, so that
    /// `p((v, i)) = (σ_i(v), i)` for a permutation `σ_i` of the nodes.
    ///
    /// Under this numbering, *all nodes are bisimilar* in the Kripke model
    /// `K_{+,+}(G, p)`: no deterministic anonymous algorithm can break
    /// symmetry. The numbering is in general *inconsistent* — this is the
    /// engine behind the separation `VV ⊊ VVc` (Theorem 17).
    ///
    /// # Errors
    ///
    /// Returns [`PortError::NotRegular`] if `g` is not regular and
    /// [`PortError::EmptyGraph`] if `g` has no nodes.
    pub fn symmetric_regular(g: &Graph) -> Result<Self, PortError> {
        if g.is_empty() {
            return Err(PortError::EmptyGraph);
        }
        let k = g.degree(0);
        if g.nodes().any(|v| g.degree(v) != k) {
            return Err(PortError::NotRegular);
        }
        if k == 0 {
            return Ok(PortNumbering { fwd: vec![Vec::new(); g.len()], bwd: vec![Vec::new(); g.len()] });
        }
        let cover = crate::cover::bipartite_double_cover(g);
        let factors = one_factorization(&cover).map_err(|_| PortError::NotRegular)?;
        debug_assert_eq!(factors.len(), k);
        let mut fwd: Vec<Vec<Port>> = g.nodes().map(|_| vec![Port::new(usize::MAX, 0); k]).collect();
        for (i, sigma) in factors.iter().enumerate() {
            // sigma[u] = v where {(u,1),(v,2)} is in factor E_i.
            for u in g.nodes() {
                fwd[u][i] = Port::new(sigma[u], i);
            }
        }
        Self::from_forward_map(g, fwd)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// Returns `true` if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Degree of `v` as recorded by the numbering.
    pub fn degree(&self, v: NodeId) -> usize {
        self.fwd[v].len()
    }

    /// `p(q)`: the port that receives what is sent to `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a port of the graph.
    pub fn forward(&self, q: Port) -> Port {
        self.fwd[q.node][q.index]
    }

    /// `p^{-1}(q)`: the port whose transmissions arrive at `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a port of the graph.
    pub fn backward(&self, q: Port) -> Port {
        self.bwd[q.node][q.index]
    }

    /// Returns `true` if `p` is an involution (`p ∘ p = id`), i.e. the port
    /// numbering is *consistent* in the sense of Section 1.2.
    pub fn is_consistent(&self) -> bool {
        self.fwd.iter().enumerate().all(|(v, row)| {
            row.iter()
                .enumerate()
                .all(|(i, &q)| self.fwd[q.node][q.index] == Port::new(v, i))
        })
    }

    /// The *local type* of node `v` (proof of Theorem 17): the vector whose
    /// `i`-th entry is the index of the port at the other end of `v`'s
    /// incoming port `i`, i.e. `t(v)_i = j` where `p((u, j)) = (v, i)`.
    pub fn local_type(&self, v: NodeId) -> Vec<usize> {
        self.bwd[v].iter().map(|q| q.index).collect()
    }

    /// Iterates over all `(port, p(port))` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (Port, Port)> + '_ {
        self.fwd.iter().enumerate().flat_map(|(v, row)| {
            row.iter().enumerate().map(move |(i, &q)| (Port::new(v, i), q))
        })
    }
}

impl fmt::Display for PortNumbering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortNumbering(n={}, consistent={})", self.len(), self.is_consistent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_valid(g: &Graph, p: &PortNumbering) {
        // Bijectivity and edge realisation via round trips.
        for v in g.nodes() {
            assert_eq!(p.degree(v), g.degree(v));
            for i in 0..g.degree(v) {
                let q = Port::new(v, i);
                let fq = p.forward(q);
                assert!(g.has_edge(v, fq.node));
                assert_eq!(p.backward(fq), q);
                let bq = p.backward(q);
                assert_eq!(p.forward(bq), q);
            }
        }
        // Every adjacent pair is connected by some port pair.
        for (u, v) in g.edges() {
            let mut seen_uv = false;
            let mut seen_vu = false;
            for (from, to) in p.pairs() {
                if from.node == u && to.node == v {
                    seen_uv = true;
                }
                if from.node == v && to.node == u {
                    seen_vu = true;
                }
            }
            assert!(seen_uv && seen_vu, "edge ({u},{v}) not realised");
        }
    }

    #[test]
    fn consistent_numbering_is_valid_and_consistent() {
        for g in [
            generators::cycle(5),
            generators::star(4),
            generators::complete(5),
            generators::grid(3, 4),
        ] {
            let p = PortNumbering::consistent(&g);
            check_valid(&g, &p);
            assert!(p.is_consistent());
        }
    }

    #[test]
    fn random_numbering_is_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for g in [generators::cycle(6), generators::complete(4), generators::petersen()] {
            for _ in 0..5 {
                let p = PortNumbering::random(&g, &mut rng);
                check_valid(&g, &p);
            }
        }
    }

    #[test]
    fn random_consistent_is_consistent() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let g = generators::grid(2, 4);
            let p = PortNumbering::random_consistent(&g, &mut rng);
            check_valid(&g, &p);
            assert!(p.is_consistent());
        }
    }

    #[test]
    fn random_numbering_is_eventually_inconsistent() {
        // On K4 most port numberings are inconsistent; check that some draw is.
        let g = generators::complete(4);
        let mut rng = StdRng::seed_from_u64(3);
        let inconsistent =
            (0..50).any(|_| !PortNumbering::random(&g, &mut rng).is_consistent());
        assert!(inconsistent);
    }

    #[test]
    fn symmetric_regular_cycle() {
        let g = generators::cycle(5);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        check_valid(&g, &p);
        // Every node must look identical: the local type is the same everywhere.
        let t0 = p.local_type(0);
        for v in g.nodes() {
            assert_eq!(p.local_type(v), t0);
        }
    }

    #[test]
    fn symmetric_regular_petersen() {
        let g = generators::petersen();
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        check_valid(&g, &p);
        // Port i is wired to port i everywhere.
        for (from, to) in p.pairs() {
            assert_eq!(from.index, to.index);
        }
    }

    #[test]
    fn symmetric_regular_rejects_irregular() {
        let g = generators::star(3);
        assert_eq!(PortNumbering::symmetric_regular(&g), Err(PortError::NotRegular));
    }

    #[test]
    fn local_type_matches_backward_map() {
        let g = generators::cycle(4);
        let p = PortNumbering::consistent(&g);
        for v in g.nodes() {
            let t = p.local_type(v);
            for (i, &j) in t.iter().enumerate() {
                let src = p.backward(Port::new(v, i));
                assert_eq!(src.index, j);
            }
        }
    }

    #[test]
    fn from_forward_map_rejects_garbage() {
        let g = generators::path(3);
        // Wrong arity.
        assert!(PortNumbering::from_forward_map(&g, vec![vec![], vec![], vec![]]).is_err());
        // Non-adjacent wiring.
        let fwd = vec![
            vec![Port::new(2, 0)],
            vec![Port::new(0, 0), Port::new(2, 0)],
            vec![Port::new(1, 1)],
        ];
        assert_eq!(
            PortNumbering::from_forward_map(&g, fwd),
            Err(PortError::EdgeMismatch)
        );
        // Not injective: two ports point at the same port.
        let fwd = vec![
            vec![Port::new(1, 0)],
            vec![Port::new(0, 0), Port::new(2, 0)],
            vec![Port::new(1, 0)],
        ];
        assert!(PortNumbering::from_forward_map(&g, fwd).is_err());
    }
}
