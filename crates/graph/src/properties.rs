//! Structural predicates and statistics on graphs.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Connected components as a label per node (labels are `0..k` in order of
/// first appearance).
pub fn components(g: &Graph) -> Vec<usize> {
    let mut label = vec![usize::MAX; g.len()];
    let mut next = 0;
    for start in g.nodes() {
        if label[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        label[start] = next;
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if label[u] == usize::MAX {
                    label[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    components(g).iter().max().map_or(0, |&m| m + 1)
}

/// Returns `true` if the graph is connected (the empty graph is connected).
pub fn is_connected(g: &Graph) -> bool {
    component_count(g) <= 1
}

/// If the graph is `k`-regular, returns `Some(k)`.
pub fn regularity(g: &Graph) -> Option<usize> {
    if g.is_empty() {
        return Some(0);
    }
    let k = g.degree(0);
    g.nodes().all(|v| g.degree(v) == k).then_some(k)
}

/// If the graph is bipartite, returns a 2-colouring (side per node);
/// otherwise `None`.
pub fn bipartition(g: &Graph) -> Option<Vec<u8>> {
    let mut side = vec![u8::MAX; g.len()];
    for start in g.nodes() {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if side[u] == u8::MAX {
                    side[u] = 1 - side[v];
                    queue.push_back(u);
                } else if side[u] == side[v] {
                    return None;
                }
            }
        }
    }
    Some(side)
}

/// Returns `true` if the graph is Eulerian in the sense used by the paper's
/// Section 1.4 example: connected once isolated nodes are removed, and every
/// node has even degree.
pub fn is_eulerian(g: &Graph) -> bool {
    if g.nodes().any(|v| g.degree(v) % 2 == 1) {
        return false;
    }
    let labels = components(g);
    let mut nontrivial: Option<usize> = None;
    for v in g.nodes() {
        if g.degree(v) > 0 {
            match nontrivial {
                None => nontrivial = Some(labels[v]),
                Some(l) if l != labels[v] => return false,
                _ => {}
            }
        }
    }
    true
}

/// Histogram of degrees: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Breadth-first distances from `source` (`usize::MAX` if unreachable).
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.len()];
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The diameter of a connected graph, or `None` if disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for v in g.nodes() {
        let d = bfs_distances(g, v);
        best = best.max(d.into_iter().max().unwrap_or(0));
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_and_connectivity() {
        let g = Graph::disjoint_union(&[&generators::cycle(3), &generators::path(2)]);
        assert_eq!(component_count(&g), 2);
        assert!(!is_connected(&g));
        assert!(is_connected(&generators::grid(3, 3)));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn regularity_checks() {
        assert_eq!(regularity(&generators::cycle(7)), Some(2));
        assert_eq!(regularity(&generators::petersen()), Some(3));
        assert_eq!(regularity(&generators::star(3)), None);
        assert_eq!(regularity(&Graph::empty(4)), Some(0));
    }

    #[test]
    fn bipartition_checks() {
        assert!(bipartition(&generators::cycle(4)).is_some());
        assert!(bipartition(&generators::cycle(5)).is_none());
        let side = bipartition(&generators::complete_bipartite(3, 2)).unwrap();
        assert!(side[..3].iter().all(|&s| s == side[0]));
        assert!(side[3..].iter().all(|&s| s != side[0]));
    }

    #[test]
    fn eulerian_checks() {
        assert!(is_eulerian(&generators::cycle(5)));
        assert!(!is_eulerian(&generators::path(3)));
        // Two disjoint cycles are not Eulerian (not connected).
        let g = Graph::disjoint_union(&[&generators::cycle(3), &generators::cycle(3)]);
        assert!(!is_eulerian(&g));
        // Isolated nodes are fine.
        let g = Graph::disjoint_union(&[&generators::cycle(3), &Graph::empty(2)]);
        assert!(is_eulerian(&g));
        // K5 is Eulerian (4-regular, connected).
        assert!(is_eulerian(&generators::complete(5)));
        assert!(!is_eulerian(&generators::complete(4)));
    }

    #[test]
    fn histogram_and_distances() {
        let g = generators::star(4);
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
        let d = bfs_distances(&g, 1);
        assert_eq!(d[0], 1);
        assert_eq!(d[2], 2);
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&Graph::empty(2)), None);
    }
}
