//! Colour refinement (1-dimensional Weisfeiler–Leman).
//!
//! Starting from the degree partition, each round replaces a node's colour
//! with the *multiset* of its neighbours' colours. This is exactly graded
//! bisimulation refinement on the Kripke model `K_{-,-}(G)` of the paper
//! (the logic crate cross-validates the equivalence), and characterises what
//! `Multiset ∩ Broadcast` algorithms can distinguish.
//!
//! Rounds run on the shared refinement engines of [`crate::partition`]:
//! by default the incremental **worklist engine**
//! ([`crate::partition::WorklistRefiner`]) re-colours only nodes whose
//! neighbourhood colours can have changed (the dirty frontier —
//! predecessors of nodes that split off last round), which turns
//! near-stable rounds from Θ(n) into O(changed); `PORTNUM_REFINE=rounds`
//! selects the full-round reference engine, in which a node's next
//! colour is the interned word sequence `(prev colour, multiset of
//! neighbour colours)` assigned dense first-seen ids. Both engines
//! produce identical levels (differentially tested), use the same ids
//! and stability criterion that `portnum-logic` uses for
//! (g-)bisimulation — so the two notions are comparable level by level —
//! and on rounds with at least
//! [`crate::partition::PARALLEL_THRESHOLD`] signature words of encode
//! work fan the encode phase out over the persistent worker pool (see
//! [`crate::partition::parallel_encode`] and [`crate::pool`]); the
//! sequential intern/group phase keeps colour ids bit-identical to the
//! single-threaded path.

use crate::graph::{Graph, NodeId};
use crate::partition::{
    parallel_encode_weighted, refine_engine_choice, threads_for, Counting, RefineEngine,
    Refiner, RelationCsr, SignatureBuffer, WorklistRefiner,
};

/// Per-round colour classes: `levels[t][v]` is node `v`'s colour after `t`
/// refinement rounds; colours are contiguous small integers per round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorClasses {
    levels: Vec<Vec<usize>>,
}

impl ColorClasses {
    /// Maps a query depth to a stored level. Depths within the computed
    /// range pass through; deeper depths clamp to the final level, but
    /// only when that level is provably stable — equal to its
    /// predecessor (as [`stable_coloring`] guarantees) or empty (a
    /// graph with no nodes has only one partition, so every depth is
    /// the fixpoint even at `rounds == 0`). Clamping a *truncated*
    /// refinement would silently return a coarser partition, so that
    /// case panics instead.
    fn cap(&self, t: usize) -> usize {
        let last = self.levels.len() - 1;
        if t <= last {
            return t;
        }
        let stable = (last >= 1 && self.levels[last] == self.levels[last - 1])
            || self.levels[last].is_empty();
        assert!(
            stable,
            "depth-{t} query on a refinement truncated at round {last}; \
             rerun with more rounds or use stable_coloring"
        );
        last
    }

    /// Colour of `v` after `t` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the computed rounds and the final partition
    /// is not stable (see the clamping rules on `cap` above); once
    /// stable, deeper rounds repeat the final partition and are clamped.
    pub fn class(&self, t: usize, v: NodeId) -> usize {
        self.level(t)[v]
    }

    /// The full colouring after `t` rounds (same clamping rules as
    /// [`ColorClasses::class`]).
    pub fn level(&self, t: usize) -> &[usize] {
        &self.levels[self.cap(t)]
    }

    /// Number of refinement rounds computed.
    pub fn rounds(&self) -> usize {
        self.levels.len() - 1
    }

    /// Number of distinct colours after `t` rounds (same clamping rules
    /// as [`ColorClasses::class`]).
    pub fn class_count(&self, t: usize) -> usize {
        self.level(t).iter().max().map_or(0, |&m| m + 1)
    }

    /// First round whose partition equals the previous round's, if any.
    pub fn stable_round(&self) -> Option<usize> {
        (1..self.levels.len())
            .find(|&t| self.levels[t] == self.levels[t - 1])
            .map(|t| t - 1)
    }
}

/// Reusable per-run state for colour-refinement rounds: the shared
/// interner plus the sequential and parallel encode scratch buffers.
#[derive(Default)]
struct RoundState {
    refiner: Refiner,
    blocks: Vec<usize>,
    buffers: Vec<SignatureBuffer>,
    /// Worker threads for the encode phase (1 = sequential).
    threads: usize,
    /// Prefix sums of per-node encode work (degrees do not change, so
    /// one array serves every round); built only when `threads > 1`.
    work: Vec<usize>,
}

impl RoundState {
    fn for_graph(g: &Graph) -> RoundState {
        // Per-round encode work: one previous colour plus both endpoints
        // of every edge.
        RoundState { threads: threads_for(g.len() + 2 * g.edge_count()), ..RoundState::default() }
    }

    /// Builds the per-node work prefix sums (colour word + count slot +
    /// one entry per neighbour) used to balance the parallel chunks.
    /// Idempotent; [`refine_round`] calls it lazily so a `RoundState`
    /// cannot reach the parallel path without its work array.
    fn ensure_work(&mut self, g: &Graph) {
        if self.threads > 1 && self.work.len() != g.len() + 1 {
            self.work.clear();
            self.work.reserve(g.len() + 1);
            self.work.push(0);
            for v in g.nodes() {
                self.work.push(self.work[v] + 2 + g.degree(v));
            }
        }
    }
}

/// One colour-refinement round over the shared engine; returns the next
/// level and whether it equals `prev` (i.e. the partition is stable).
fn refine_round(g: &Graph, prev: &[usize], state: &mut RoundState) -> (Vec<usize>, bool) {
    state.refiner.begin_round();
    state.ensure_work(g);
    let mut next = Vec::with_capacity(g.len());
    if state.threads > 1 {
        // Parallel encode into chunk-local buffers split at work
        // quantiles (a hub node gets a chunk to itself), then intern in
        // node order (first-seen ids match the sequential engine
        // exactly).
        parallel_encode_weighted(&state.work, state.threads, &mut state.buffers, |range, buf| {
            let mut blocks = std::mem::take(buf.blocks_scratch());
            for v in range {
                buf.begin(prev[v]);
                blocks.extend(g.neighbors(v).iter().map(|&u| prev[u]));
                buf.push_blocks(&mut blocks, Counting::Multiset);
                buf.end();
            }
            *buf.blocks_scratch() = blocks;
        });
        for buf in &state.buffers {
            for i in 0..buf.len() {
                next.push(state.refiner.commit_slice(buf.signature(i)));
            }
        }
    } else {
        for v in g.nodes() {
            state.refiner.begin_signature(prev[v]);
            state.blocks.extend(g.neighbors(v).iter().map(|&u| prev[u]));
            state.refiner.push_blocks(&mut state.blocks, Counting::Multiset);
            next.push(state.refiner.commit());
        }
    }
    let stable = next == prev;
    (next, stable)
}

fn degree_partition(g: &Graph, refiner: &mut Refiner) -> Vec<usize> {
    refiner.seed_partition(g.nodes().map(|v| g.degree(v) as u64))
}

/// The adjacency lists of `g` packed as one CSR relation (`u32`
/// targets), the worklist engine's input shape.
fn graph_csr(g: &Graph) -> (Vec<usize>, Vec<u32>) {
    assert!(g.len() <= u32::MAX as usize, "graphs are capped at 2^32 nodes");
    let mut offsets = Vec::with_capacity(g.len() + 1);
    let mut targets = Vec::with_capacity(2 * g.edge_count());
    offsets.push(0);
    for v in g.nodes() {
        targets.extend(g.neighbors(v).iter().map(|&u| u as u32));
        offsets.push(targets.len());
    }
    (offsets, targets)
}

/// Worklist-engine colour refinement: `bound = Some(r)` runs exactly
/// `r` rounds (rounds past the fixpoint are free — the dirty frontier
/// is empty), `None` runs to the first stable round and reports it.
fn worklist_coloring(
    g: &Graph,
    bound: Option<usize>,
    force_parallel: bool,
) -> (ColorClasses, Option<usize>) {
    let (offsets, targets) = graph_csr(g);
    let rel = RelationCsr { offsets: &offsets, targets: &targets };
    let mut refiner = WorklistRefiner::new(
        g.len(),
        std::slice::from_ref(&rel),
        Counting::Multiset,
        g.nodes().map(|v| g.degree(v) as u64),
    );
    refiner.force_parallel(force_parallel);
    let mut level = Vec::new();
    refiner.canonical_level_into(&mut level);
    let mut levels = vec![level.clone()];
    match bound {
        Some(rounds) => {
            for _ in 0..rounds {
                refiner.round();
                refiner.canonical_level_into(&mut level);
                levels.push(level.clone());
            }
            (ColorClasses { levels }, None)
        }
        None => loop {
            let changed = refiner.round();
            refiner.canonical_level_into(&mut level);
            levels.push(level.clone());
            if !changed {
                let round = levels.len() - 2;
                return (ColorClasses { levels }, Some(round));
            }
            debug_assert!(levels.len() <= g.len().max(1) + 1, "refinement failed to stabilise");
        },
    }
}

/// Runs colour refinement for exactly `rounds` rounds (even past the
/// stable point — use [`stable_coloring`] to stop at the fixpoint).
///
/// Rounds run on the engine selected by `PORTNUM_REFINE` (see
/// [`refine_engine_choice`]): the incremental worklist engine by
/// default, the full-round reference with `PORTNUM_REFINE=rounds`.
/// Both produce identical levels.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, refinement};
///
/// // All nodes of any cycle share a colour forever.
/// let c = refinement::color_refinement(&generators::cycle(7), 5);
/// assert_eq!(c.class_count(5), 1);
/// ```
pub fn color_refinement(g: &Graph, rounds: usize) -> ColorClasses {
    color_refinement_with(g, rounds, refine_engine_choice())
}

/// [`color_refinement`] pinned to a specific engine — the differential
/// testing and benchmarking hook; use [`color_refinement`] elsewhere.
#[doc(hidden)]
pub fn color_refinement_with(g: &Graph, rounds: usize, engine: RefineEngine) -> ColorClasses {
    if engine == RefineEngine::Worklist {
        return worklist_coloring(g, Some(rounds), false).0;
    }
    let mut state = RoundState::for_graph(g);
    let mut levels = Vec::with_capacity(rounds + 1);
    levels.push(degree_partition(g, &mut state.refiner));
    for _ in 0..rounds {
        let (next, _) = refine_round(g, levels.last().expect("depth 0"), &mut state);
        levels.push(next);
    }
    ColorClasses { levels }
}

/// Runs colour refinement to stability; returns the classes and the round at
/// which the partition stabilised.
///
/// Unlike [`color_refinement`] this stops at the first stable round
/// instead of running a fixed `n` rounds, so highly symmetric graphs
/// (which stabilise in O(1) rounds) cost O(1) rounds. The returned
/// [`ColorClasses`] contains levels `0..=round + 1` (the last two levels
/// are equal, witnessing stability). The engine is selected by
/// `PORTNUM_REFINE` exactly as for [`color_refinement`].
pub fn stable_coloring(g: &Graph) -> (ColorClasses, usize) {
    stable_coloring_with(g, refine_engine_choice())
}

/// [`stable_coloring`] pinned to a specific engine — the differential
/// testing and benchmarking hook; use [`stable_coloring`] elsewhere.
#[doc(hidden)]
pub fn stable_coloring_with(g: &Graph, engine: RefineEngine) -> (ColorClasses, usize) {
    if engine == RefineEngine::Worklist {
        let (classes, round) = worklist_coloring(g, None, false);
        return (classes, round.expect("unbounded run reports its stable round"));
    }
    let mut state = RoundState::for_graph(g);
    let mut levels = vec![degree_partition(g, &mut state.refiner)];
    loop {
        let (next, stable) = refine_round(g, levels.last().expect("depth 0"), &mut state);
        levels.push(next);
        if stable {
            let round = levels.len() - 2;
            return (ColorClasses { levels }, round);
        }
        // Safety valve: a partition on n nodes can only split n - 1 times,
        // so stability must occur within n rounds.
        debug_assert!(levels.len() <= g.len().max(1) + 1, "refinement failed to stabilise");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn cycles_of_different_lengths_are_wl_equivalent() {
        let g = Graph::disjoint_union(&[&generators::cycle(3), &generators::cycle(4)]);
        let (classes, round) = stable_coloring(&g);
        assert_eq!(classes.class_count(round), 1);
    }

    #[test]
    fn path_refines_by_distance_to_ends() {
        let g = generators::path(5);
        let (classes, round) = stable_coloring(&g);
        let level = classes.level(round);
        assert_eq!(level[0], level[4]);
        assert_eq!(level[1], level[3]);
        assert_ne!(level[0], level[2]);
        assert_eq!(classes.class_count(round), 3);
    }

    #[test]
    fn theorem13_witness_white_nodes_share_wl_colour_initially_but_not_under_counting() {
        // Colour refinement (multiset-based!) *does* separate the white
        // nodes of the Theorem 13 witness — that is exactly why the problem
        // is solvable in MB. The set-based bisimulation of the logic crate
        // does not separate them.
        let (g, (a, b)) = generators::theorem13_witness();
        let (classes, round) = stable_coloring(&g);
        assert_ne!(classes.class(round, a), classes.class(round, b));
        // At round 0 they agree (same degree).
        assert_eq!(classes.class(0, a), classes.class(0, b));
    }

    #[test]
    fn refinement_is_monotone_and_stabilises() {
        let g = generators::grid(3, 3);
        let (classes, round) = stable_coloring(&g);
        for t in 1..=round {
            assert!(classes.class_count(t) >= classes.class_count(t - 1));
        }
        // Once stable, later rounds keep the same partition.
        let more = color_refinement(&g, round + 3);
        assert_eq!(more.level(round), more.level(round + 3));
    }

    #[test]
    fn regular_graphs_stay_monochromatic() {
        for g in [generators::petersen(), generators::hypercube(3), generators::no_one_factor(3)] {
            let (classes, round) = stable_coloring(&g);
            assert_eq!(classes.class_count(round), 1, "{g}");
        }
    }

    #[test]
    fn class_queries_clamp_past_the_computed_rounds() {
        // stable_coloring keeps only the rounds up to the fixpoint; deeper
        // queries must clamp (the partition no longer changes), matching
        // the behaviour of the pre-early-stop implementation which simply
        // kept refining a stable partition.
        let g = generators::cycle(100);
        let (classes, round) = stable_coloring(&g);
        assert_eq!(classes.class(round + 5, 0), classes.class(round, 0));
        assert_eq!(classes.level(1_000), classes.level(round));
        assert_eq!(classes.class_count(1_000), 1);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_refinements_do_not_clamp() {
        // A long path keeps refining well past round 1; querying deeper
        // than the computed rounds on a truncated run must fail loudly,
        // not silently return the coarse round-1 partition.
        let classes = color_refinement(&generators::path(20), 1);
        let _ = classes.class(10, 0);
    }

    #[test]
    fn stable_coloring_stops_early() {
        // A 100-cycle is monochromatic from round 0; the old implementation
        // ran all 100 rounds regardless. Now stability is detected at the
        // first repeated level.
        let g = generators::cycle(100);
        let (classes, round) = stable_coloring(&g);
        assert_eq!(round, 0);
        assert_eq!(classes.rounds(), 1, "exactly one witness round past the fixpoint");
    }

    #[test]
    fn stable_coloring_agrees_with_fixed_round_refinement() {
        let g = generators::grid(4, 3);
        let (fast, round) = stable_coloring(&g);
        let slow = color_refinement(&g, g.len());
        for t in 0..=round.min(fast.rounds()) {
            assert_eq!(fast.level(t), slow.level(t), "level {t}");
        }
        assert_eq!(slow.stable_round(), Some(round));
    }

    #[test]
    fn parallel_rounds_match_sequential() {
        // Force the chunked encode path on graphs far below the
        // threshold: every level must be bit-identical to the
        // sequential engine (first-seen intern order is preserved).
        for g in [
            generators::grid(6, 7),
            generators::path(23),
            Graph::disjoint_union(&[&generators::petersen(), &generators::star(5)]),
        ] {
            let mut seq = RoundState { threads: 1, ..RoundState::default() };
            let mut par = RoundState { threads: 3, ..RoundState::default() };
            let mut level_s = degree_partition(&g, &mut seq.refiner);
            let mut level_p = degree_partition(&g, &mut par.refiner);
            assert_eq!(level_s, level_p);
            for round in 0..g.len() {
                let (next_s, stable_s) = refine_round(&g, &level_s, &mut seq);
                let (next_p, stable_p) = refine_round(&g, &level_p, &mut par);
                assert_eq!(next_s, next_p, "{g} diverged at round {round}");
                assert_eq!(stable_s, stable_p);
                if stable_s {
                    break;
                }
                level_s = next_s;
                level_p = next_p;
            }
        }
    }

    #[test]
    fn worklist_engine_matches_rounds_engine() {
        // The incremental worklist engine must reproduce the full-round
        // engine's levels bit for bit: stable run, over-long bounded
        // runs, and short truncations alike.
        for g in [
            generators::grid(5, 4),
            generators::path(30),
            generators::cycle(12),
            Graph::disjoint_union(&[&generators::petersen(), &generators::star(6)]),
            generators::binary_tree(31),
            Graph::empty(3),
            Graph::empty(0),
        ] {
            let (wl, wl_round) = stable_coloring_with(&g, RefineEngine::Worklist);
            let (rd, rd_round) = stable_coloring_with(&g, RefineEngine::Rounds);
            assert_eq!(wl_round, rd_round, "stable round diverged on {g}");
            assert_eq!(wl.rounds(), rd.rounds(), "level count diverged on {g}");
            for t in 0..=wl.rounds() {
                assert_eq!(wl.level(t), rd.level(t), "{g} level {t}");
            }
            for rounds in [0, 1, wl_round + 2] {
                let a = color_refinement_with(&g, rounds, RefineEngine::Worklist);
                let b = color_refinement_with(&g, rounds, RefineEngine::Rounds);
                for t in 0..=rounds {
                    assert_eq!(a.levels[t], b.levels[t], "{g} bounded {rounds} level {t}");
                }
            }
        }
    }

    #[test]
    fn worklist_forced_parallel_coloring_matches_sequential() {
        for g in [generators::grid(6, 5), generators::path(40)] {
            let (seq, seq_round) = worklist_coloring(&g, None, false);
            let (par, par_round) = worklist_coloring(&g, None, true);
            assert_eq!(seq_round, par_round);
            assert_eq!(seq.levels, par.levels, "{g}");
        }
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let (classes, round) = stable_coloring(&Graph::empty(1));
        assert_eq!(classes.class_count(round), 1);
        let (classes, round) = stable_coloring(&Graph::empty(0));
        assert_eq!(classes.class_count(round), 0);
    }

    #[test]
    fn zero_round_refinement_on_empty_graph_clamps() {
        // rounds == 0 leaves a single (empty) level; with no nodes the
        // partition is trivially stable, so deep queries clamp instead
        // of panicking about truncation.
        let classes = color_refinement(&Graph::empty(0), 0);
        assert_eq!(classes.rounds(), 0);
        assert_eq!(classes.class_count(0), 0);
        assert_eq!(classes.class_count(1_000), 0);
        assert!(classes.level(5).is_empty());
        assert_eq!(classes.stable_round(), None, "no witness round exists to report");
    }

    #[test]
    fn zero_round_refinement_on_nonempty_graph_reports_depth_zero() {
        // rounds == 0 on a real graph: depth-0 queries work, the
        // degree partition is reported, and nothing deeper is claimed.
        let classes = color_refinement(&generators::star(3), 0);
        assert_eq!(classes.rounds(), 0);
        assert_eq!(classes.class_count(0), 2, "centre vs leaves by degree");
        assert_eq!(classes.level(0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn zero_round_refinement_on_nonempty_graph_rejects_deep_queries() {
        // One level, at least one node, no stability witness: a deeper
        // query must fail loudly rather than clamp.
        let classes = color_refinement(&generators::path(4), 0);
        let _ = classes.class_count(1);
    }
}
