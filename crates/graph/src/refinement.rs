//! Colour refinement (1-dimensional Weisfeiler–Leman).
//!
//! Starting from the degree partition, each round replaces a node's colour
//! with the *multiset* of its neighbours' colours. This is exactly graded
//! bisimulation refinement on the Kripke model `K_{-,-}(G)` of the paper
//! (the logic crate cross-validates the equivalence), and characterises what
//! `Multiset ∩ Broadcast` algorithms can distinguish.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// Per-round colour classes: `levels[t][v]` is node `v`'s colour after `t`
/// refinement rounds; colours are contiguous small integers per round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorClasses {
    levels: Vec<Vec<usize>>,
}

impl ColorClasses {
    /// Colour of `v` after `t` rounds.
    pub fn class(&self, t: usize, v: NodeId) -> usize {
        self.levels[t][v]
    }

    /// The full colouring after `t` rounds.
    pub fn level(&self, t: usize) -> &[usize] {
        &self.levels[t]
    }

    /// Number of refinement rounds computed.
    pub fn rounds(&self) -> usize {
        self.levels.len() - 1
    }

    /// Number of distinct colours after `t` rounds.
    pub fn class_count(&self, t: usize) -> usize {
        self.levels[t].iter().max().map_or(0, |&m| m + 1)
    }

    /// First round whose partition equals the previous round's, if any.
    pub fn stable_round(&self) -> Option<usize> {
        (1..self.levels.len())
            .find(|&t| self.levels[t] == self.levels[t - 1])
            .map(|t| t - 1)
    }
}

/// Runs colour refinement for `rounds` rounds.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, refinement};
///
/// // All nodes of any cycle share a colour forever.
/// let c = refinement::color_refinement(&generators::cycle(7), 5);
/// assert_eq!(c.class_count(5), 1);
/// ```
pub fn color_refinement(g: &Graph, rounds: usize) -> ColorClasses {
    let n = g.len();
    let mut levels: Vec<Vec<usize>> = Vec::with_capacity(rounds + 1);

    let mut ids: HashMap<usize, usize> = HashMap::new();
    let mut level0 = vec![0usize; n];
    for v in 0..n {
        let fresh = ids.len();
        level0[v] = *ids.entry(g.degree(v)).or_insert(fresh);
    }
    levels.push(level0);

    for _ in 0..rounds {
        let prev = levels.last().expect("depth 0 exists");
        let mut sigs: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut next = vec![0usize; n];
        for v in 0..n {
            let mut colours: Vec<usize> = g.neighbors(v).iter().map(|&u| prev[u]).collect();
            colours.sort_unstable();
            let fresh = sigs.len();
            next[v] = *sigs.entry((prev[v], colours)).or_insert(fresh);
        }
        levels.push(next);
    }

    ColorClasses { levels }
}

/// Runs colour refinement to stability; returns the classes and the round at
/// which the partition stabilised.
pub fn stable_coloring(g: &Graph) -> (ColorClasses, usize) {
    let n = g.len().max(1);
    let classes = color_refinement(g, n);
    let round = classes.stable_round().unwrap_or(n);
    (classes, round)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    #[test]
    fn cycles_of_different_lengths_are_wl_equivalent() {
        let g = Graph::disjoint_union(&[&generators::cycle(3), &generators::cycle(4)]);
        let (classes, round) = stable_coloring(&g);
        assert_eq!(classes.class_count(round), 1);
    }

    #[test]
    fn path_refines_by_distance_to_ends() {
        let g = generators::path(5);
        let (classes, round) = stable_coloring(&g);
        let level = classes.level(round);
        assert_eq!(level[0], level[4]);
        assert_eq!(level[1], level[3]);
        assert_ne!(level[0], level[2]);
        assert_eq!(classes.class_count(round), 3);
    }

    #[test]
    fn theorem13_witness_white_nodes_share_wl_colour_initially_but_not_under_counting() {
        // Colour refinement (multiset-based!) *does* separate the white
        // nodes of the Theorem 13 witness — that is exactly why the problem
        // is solvable in MB. The set-based bisimulation of the logic crate
        // does not separate them.
        let (g, (a, b)) = generators::theorem13_witness();
        let (classes, round) = stable_coloring(&g);
        assert_ne!(classes.class(round, a), classes.class(round, b));
        // At round 0 they agree (same degree).
        assert_eq!(classes.class(0, a), classes.class(0, b));
    }

    #[test]
    fn refinement_is_monotone_and_stabilises() {
        let g = generators::grid(3, 3);
        let (classes, round) = stable_coloring(&g);
        for t in 1..=round {
            assert!(classes.class_count(t) >= classes.class_count(t - 1));
        }
        // Once stable, later rounds keep the same partition.
        let more = color_refinement(&g, round + 3);
        assert_eq!(more.level(round), more.level(round + 3));
    }

    #[test]
    fn regular_graphs_stay_monochromatic() {
        for g in [generators::petersen(), generators::hypercube(3), generators::no_one_factor(3)] {
            let (classes, round) = stable_coloring(&g);
            assert_eq!(classes.class_count(round), 1, "{g}");
        }
    }
}
