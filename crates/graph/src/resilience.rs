//! Cooperative execution control: cancellation, deadlines, and budgets.
//!
//! ROADMAP item 1 ("model-checking as a service") needs shared engine
//! state — the global [`crate::pool::WorkerPool`], per-model reverse
//! caches, per-checker truth vectors — to survive queries that are
//! cancelled, time out, or blow a resource budget. This module is the
//! control-plane vocabulary for that: a cloneable [`CancelToken`], a
//! wall-clock [`Deadline`], a priced [`ExecBudget`], all bundled into
//! an [`ExecControl`] that the engines poll at their natural granule
//! (plan instruction, refinement round, pool chunk).
//!
//! The contract every consumer upholds:
//!
//! * **Typed interruption, never partial results.** An interrupted
//!   computation returns [`Interrupted`]; callers never see a
//!   half-filled truth vector or partition.
//! * **Whole-or-nothing caches.** An interrupted query must leave every
//!   cache (the `OnceLock` CSC/dense reverse stores, the checker's
//!   `Rc<Bitset>` results) either fully committed or untouched, so an
//!   immediate retry is bit-identical to a run that was never
//!   interrupted.
//! * **Bounded latency.** Cancellation is observed within one granule:
//!   one plan instruction, one refinement round, or one pool chunk.
//!
//! Checks are cheap (one relaxed atomic load on the cancel path; the
//! deadline reads the clock only every few polls), so the granularity
//! can stay fine without showing up in profiles.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The caller's [`CancelToken`] was triggered.
    Cancelled,
    /// The wall-clock [`Deadline`] passed.
    DeadlineExceeded,
    /// The touched-work ceiling of an [`ExecBudget`] was exceeded.
    BudgetExceeded,
}

/// Typed interruption error: the computation stopped cooperatively and
/// published nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted {
    /// What tripped.
    pub reason: InterruptReason,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            InterruptReason::Cancelled => write!(f, "execution cancelled"),
            InterruptReason::DeadlineExceeded => write!(f, "execution deadline exceeded"),
            InterruptReason::BudgetExceeded => write!(f, "execution work budget exceeded"),
        }
    }
}

impl Error for Interrupted {}

impl Interrupted {
    /// Shorthand constructor.
    #[must_use]
    pub fn new(reason: InterruptReason) -> Self {
        Interrupted { reason }
    }
}

/// Cloneable cooperative cancellation flag. All clones observe the same
/// flag; once set it stays set (there is deliberately no reset — retry
/// with a fresh token).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers cancellation; every holder of a clone observes it on
    /// its next poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Wall-clock deadline. Copyable; comparisons read a monotonic clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    #[must_use]
    pub fn after(d: Duration) -> Self {
        Deadline { at: Instant::now() + d }
    }

    /// A deadline at an absolute instant.
    #[must_use]
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }
}

/// Resource ceilings for one query, priced in the same currency as the
/// plan executor's measured Auto cost model (words touched / stored).
///
/// Semantics (all ceilings optional, `None` = unlimited):
///
/// * `max_slot_words` — ceiling on *resident* truth-vector storage
///   (slot count × words per bitset, plus any per-thread partials a
///   parallel strategy would add). Exceeding it **degrades**: parallel
///   execution falls back to sequential rather than failing.
/// * `max_touched_words` — ceiling on cumulative work, accumulated from
///   the executor's per-instruction `op_work` estimate (the quantity
///   the Auto diamond choice already prices). Exceeding it **fails**
///   the query with [`InterruptReason::BudgetExceeded`].
/// * `max_cache_words` — ceiling on words a query may *publish* into
///   long-lived caches (checker truth vectors). Exceeding it skips
///   publication: the query still answers, later queries recompute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecBudget {
    /// Resident slot-storage ceiling in 64-bit words.
    pub max_slot_words: Option<usize>,
    /// Cumulative touched-work ceiling in cost-model units.
    pub max_touched_words: Option<usize>,
    /// Cache-publication ceiling in 64-bit words.
    pub max_cache_words: Option<usize>,
}

impl ExecBudget {
    /// An unlimited budget.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when `resident` slot words exceed the resident ceiling
    /// (signal to degrade parallel → sequential).
    #[must_use]
    pub fn slots_over(&self, resident: usize) -> bool {
        self.max_slot_words.is_some_and(|cap| resident > cap)
    }

    /// True when cumulative `touched` work exceeds the work ceiling
    /// (signal to fail with `BudgetExceeded`).
    #[must_use]
    pub fn touched_over(&self, touched: usize) -> bool {
        self.max_touched_words.is_some_and(|cap| touched > cap)
    }

    /// True when publishing `words` more cache words would exceed the
    /// cache ceiling given `already` published words (signal to skip
    /// publication, not to fail).
    #[must_use]
    pub fn cache_over(&self, already: usize, words: usize) -> bool {
        self.max_cache_words.is_some_and(|cap| already.saturating_add(words) > cap)
    }
}

/// The bundle the engines actually thread through: optional token,
/// optional deadline, budget. `ExecControl::default()` is the free
/// pass — all checks compile down to two branches on `None`.
#[derive(Debug, Clone, Default)]
pub struct ExecControl {
    /// Cooperative cancellation flag, polled at every granule boundary.
    pub cancel: Option<CancelToken>,
    /// Wall-clock ceiling, polled at every granule boundary.
    pub deadline: Option<Deadline>,
    /// Resource ceilings (see [`ExecBudget`] for per-field semantics).
    pub budget: ExecBudget,
}

impl ExecControl {
    /// The unrestricted control: never interrupts, never degrades.
    #[must_use]
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Control carrying only a cancel token.
    #[must_use]
    pub fn with_cancel(token: CancelToken) -> Self {
        ExecControl { cancel: Some(token), ..Self::default() }
    }

    /// Control carrying only a deadline.
    #[must_use]
    pub fn with_deadline(deadline: Deadline) -> Self {
        ExecControl { deadline: Some(deadline), ..Self::default() }
    }

    /// Control carrying only a budget.
    #[must_use]
    pub fn with_budget(budget: ExecBudget) -> Self {
        ExecControl { budget, ..Self::default() }
    }

    /// Builds from the process environment:
    /// `PORTNUM_DEADLINE_MS`, `PORTNUM_MAX_SLOT_WORDS`,
    /// `PORTNUM_MAX_TOUCHED_WORDS`, `PORTNUM_MAX_CACHE_WORDS`.
    /// Unset knobs stay unlimited; set-but-malformed knobs panic (the
    /// workspace's parse-or-panic knob contract, enforced by
    /// `env_knobs_parse_or_panic`).
    #[must_use]
    pub fn from_env() -> Self {
        fn usize_knob(name: &str) -> Option<usize> {
            std::env::var(name).ok().map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("{name} must be a non-negative integer, got {v:?}"))
            })
        }
        let deadline = usize_knob("PORTNUM_DEADLINE_MS")
            .map(|ms| Deadline::after(Duration::from_millis(ms as u64)));
        ExecControl {
            cancel: None,
            deadline,
            budget: ExecBudget {
                max_slot_words: usize_knob("PORTNUM_MAX_SLOT_WORDS"),
                max_touched_words: usize_knob("PORTNUM_MAX_TOUCHED_WORDS"),
                max_cache_words: usize_knob("PORTNUM_MAX_CACHE_WORDS"),
            },
        }
    }

    /// True when this control can never interrupt (no token, no
    /// deadline, no work ceiling) — engines use it to skip staging
    /// buffers they would only need for rollback.
    #[must_use]
    pub fn is_unrestricted(&self) -> bool {
        self.cancel.is_none()
            && self.deadline.is_none()
            && self.budget.max_touched_words.is_none()
    }

    /// Polls cancellation and deadline. Called at granule boundaries
    /// (plan instruction, refinement round, pool chunk).
    ///
    /// # Errors
    ///
    /// [`InterruptReason::Cancelled`] once the token fires, else
    /// [`InterruptReason::DeadlineExceeded`] once the deadline passes.
    pub fn check(&self) -> Result<(), Interrupted> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupted::new(InterruptReason::Cancelled));
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Err(Interrupted::new(InterruptReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// Polls the cumulative-work ceiling on top of [`check`](Self::check).
    ///
    /// # Errors
    ///
    /// Everything [`check`](Self::check) returns, plus
    /// [`InterruptReason::BudgetExceeded`] once `touched` crosses the
    /// ceiling.
    pub fn check_work(&self, touched: usize) -> Result<(), Interrupted> {
        self.check()?;
        if self.budget.touched_over(touched) {
            return Err(Interrupted::new(InterruptReason::BudgetExceeded));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        assert_eq!(
            ExecControl::with_cancel(u).check(),
            Err(Interrupted::new(InterruptReason::Cancelled))
        );
    }

    #[test]
    fn deadline_expiry() {
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        let ctl = ExecControl::with_deadline(past);
        assert_eq!(ctl.check(), Err(Interrupted::new(InterruptReason::DeadlineExceeded)));
        let future = Deadline::after(Duration::from_secs(3600));
        assert!(!future.expired());
        assert_eq!(ExecControl::with_deadline(future).check(), Ok(()));
    }

    #[test]
    fn budget_ceilings() {
        let b = ExecBudget {
            max_slot_words: Some(100),
            max_touched_words: Some(1000),
            max_cache_words: Some(50),
        };
        assert!(!b.slots_over(100));
        assert!(b.slots_over(101));
        assert!(!b.touched_over(1000));
        assert!(b.touched_over(1001));
        assert!(!b.cache_over(20, 30));
        assert!(b.cache_over(20, 31));
        assert!(!ExecBudget::unlimited().cache_over(usize::MAX, 0));

        let ctl = ExecControl::with_budget(b);
        assert_eq!(ctl.check_work(999), Ok(()));
        assert_eq!(
            ctl.check_work(1001),
            Err(Interrupted::new(InterruptReason::BudgetExceeded))
        );
    }

    #[test]
    fn unrestricted_detection() {
        assert!(ExecControl::unrestricted().is_unrestricted());
        assert!(!ExecControl::with_cancel(CancelToken::new()).is_unrestricted());
        assert!(!ExecControl::with_deadline(Deadline::after(Duration::from_secs(1)))
            .is_unrestricted());
        // Slot/cache ceilings degrade rather than interrupt, so they
        // alone leave the control "unrestricted" for rollback purposes.
        let degrade_only = ExecControl::with_budget(ExecBudget {
            max_slot_words: Some(1),
            max_touched_words: None,
            max_cache_words: Some(1),
        });
        assert!(degrade_only.is_unrestricted());
        let work = ExecControl::with_budget(ExecBudget {
            max_touched_words: Some(1),
            ..ExecBudget::default()
        });
        assert!(!work.is_unrestricted());
    }

    #[test]
    fn interrupted_display() {
        for (reason, needle) in [
            (InterruptReason::Cancelled, "cancelled"),
            (InterruptReason::DeadlineExceeded, "deadline"),
            (InterruptReason::BudgetExceeded, "budget"),
        ] {
            let msg = Interrupted::new(reason).to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle}");
        }
    }
}
