//! Yamashita–Kameda *views*: truncations of the universal cover of a
//! port-numbered graph.
//!
//! The depth-`t` view of a node is the tree of all walks of length `≤ t`
//! leaving it, annotated with port numbers. Two nodes with equal depth-`t`
//! views are indistinguishable to any `Vector` algorithm within `t` rounds —
//! this is the graph-theoretic twin of `t`-step bisimilarity in the Kripke
//! model `K_{+,+}(G, p)` (the logic crate cross-validates the two notions).
//!
//! Rather than materialising exponentially-large trees, this module interns
//! views: [`view_classes`] returns, per depth, a partition of the nodes into
//! view-equivalence classes.

use crate::graph::{Graph, NodeId};
use crate::partition::Refiner;
use crate::ports::{Port, PortNumbering};
use std::collections::HashMap;

/// Per-depth view-equivalence classes.
///
/// `levels[t][v]` is the class of node `v`'s depth-`t` view; class ids are
/// small integers, contiguous per level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewClasses {
    levels: Vec<Vec<usize>>,
}

impl ViewClasses {
    /// The class of node `v` at depth `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the computed depth or `v` is out of range.
    pub fn class(&self, t: usize, v: NodeId) -> usize {
        self.levels[t][v]
    }

    /// The full partition at depth `t`.
    pub fn level(&self, t: usize) -> &[usize] {
        &self.levels[t]
    }

    /// Greatest computed depth.
    pub fn depth(&self) -> usize {
        self.levels.len() - 1
    }

    /// Number of distinct classes at depth `t`.
    pub fn class_count(&self, t: usize) -> usize {
        self.levels[t].iter().max().map_or(0, |&m| m + 1)
    }

    /// Returns `true` if nodes `u` and `v` have equal views at depth `t`.
    pub fn equivalent(&self, t: usize, u: NodeId, v: NodeId) -> bool {
        self.levels[t][u] == self.levels[t][v]
    }

    /// The first depth at which the partition stabilises (no further
    /// refinement), if it stabilises within the computed range.
    pub fn stable_depth(&self) -> Option<usize> {
        (1..self.levels.len())
            .find(|&t| self.levels[t] == self.levels[t - 1])
            .map(|t| t - 1)
    }
}

/// Computes view-equivalence classes for depths `0..=depth`.
///
/// The depth-0 view is the degree. The depth-`(t+1)` view of `v` is the
/// tuple `(deg(v), [(i, j, view_t(u))]_i)` where for each incoming port `i`
/// of `v`, `(u, j) = p^{-1}((v, i))` is the neighbour (and its port) wired
/// into `i`.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, views, PortNumbering};
///
/// let g = generators::cycle(6);
/// let p = PortNumbering::symmetric_regular(&g)?;
/// let classes = views::view_classes(&g, &p, 6);
/// // Under a symmetric numbering all nodes look alike forever.
/// assert_eq!(classes.class_count(6), 1);
/// # Ok::<(), portnum_graph::PortError>(())
/// ```
pub fn view_classes(g: &Graph, p: &PortNumbering, depth: usize) -> ViewClasses {
    let n = g.len();
    let mut refiner = Refiner::new();
    let mut levels: Vec<Vec<usize>> = Vec::with_capacity(depth + 1);

    // Depth 0: partition by degree.
    levels.push(refiner.seed_partition(g.nodes().map(|v| g.degree(v) as u64)));

    for _ in 0..depth {
        let prev = levels.last().expect("at least depth 0 exists");
        // Signature: previous class + per in-port, in port order, the
        // sender's out-port and the sender's previous class. The previous
        // class determines the degree (view partitions refine the degree
        // partition), so the word count is fixed given the head word and
        // the encoding stays prefix-free; the in-port index is implicit
        // in the position.
        refiner.begin_round();
        let next_level: Vec<usize> = (0..n)
            .map(|v| {
                refiner.begin_signature(prev[v]);
                for i in 0..g.degree(v) {
                    let src = p.backward(Port::new(v, i));
                    refiner.push_word(src.index as u64);
                    refiner.push_word(prev[src.node] as u64);
                }
                refiner.commit()
            })
            .collect();
        levels.push(next_level);
    }

    ViewClasses { levels }
}

/// Computes classes until the partition stabilises, returning the classes
/// and the stabilisation depth. Stabilisation is guaranteed within `n`
/// levels (each refinement strictly grows the class count or stops).
pub fn stable_view_classes(g: &Graph, p: &PortNumbering) -> (ViewClasses, usize) {
    let n = g.len().max(1);
    let classes = view_classes(g, p, n);
    let depth = classes.stable_depth().unwrap_or(n);
    (classes, depth)
}

/// The depth-`depth` truncation of the **universal cover** of `(g, p)`
/// around `root`, materialised as an explicit port-numbered tree.
///
/// Tree nodes are the non-backtracking walks of length `≤ depth` starting
/// at `root` (walk id `0` is the empty walk, the tree's root). Interior
/// walks keep the full degree and port wiring of their endpoint, so the
/// projection "walk ↦ endpoint" satisfies the covering condition
/// everywhere except at the depth-`depth` leaves, whose remaining ports
/// are cut (each leaf keeps the single port `0`, wired to its parent —
/// so the local types of the leaves *and of their neighbours* deviate
/// from the base; everything at distance `< depth - 1` is exact).
///
/// **Simulation guarantee**: for any algorithm and any `T < depth`, the
/// execution at the tree's root for `T` rounds is identical to the
/// execution at `root` in `(g, p)` — information from the mutilated
/// leaves needs `depth` rounds to arrive. This is the classic
/// local-views simulation lemma (Section 3.3's universal covers), and
/// the tree is the inverse limit companion of the finite covers built by
/// [`lifts`](crate::lifts).
///
/// Returns the tree, its port numbering, and the projection map
/// `walk ↦ endpoint in g`.
///
/// # Panics
///
/// Panics if `root` is out of range.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, views, PortNumbering};
///
/// // The universal cover of a cycle is the bi-infinite path; the depth-3
/// // truncation around any node is the path on 7 nodes.
/// let g = generators::cycle(5);
/// let p = PortNumbering::consistent(&g);
/// let (tree, _q, projection) = views::universal_cover_truncation(&g, &p, 0, 3);
/// assert_eq!(tree.len(), 7);
/// assert_eq!(projection[0], 0);
/// ```
pub fn universal_cover_truncation(
    g: &Graph,
    p: &PortNumbering,
    root: NodeId,
    depth: usize,
) -> (Graph, PortNumbering, Vec<NodeId>) {
    assert!(root < g.len(), "root {root} out of range");

    // BFS over non-backtracking walks. For each tree node: endpoint,
    // depth, parent, and the graph edge used to reach it.
    struct Walk {
        endpoint: NodeId,
        depth: usize,
        parent: Option<usize>,
        // Canonical (min, max) edge to the parent.
        parent_edge: Option<(NodeId, NodeId)>,
    }
    let mut walks =
        vec![Walk { endpoint: root, depth: 0, parent: None, parent_edge: None }];
    // Child lookup: (tree node, canonical edge) → tree node.
    let mut child: HashMap<(usize, (NodeId, NodeId)), usize> = HashMap::new();
    let mut frontier = vec![0usize];
    for d in 0..depth {
        let mut next_frontier = Vec::new();
        for &w in &frontier {
            let v = walks[w].endpoint;
            for &u in g.neighbors(v) {
                let edge = (v.min(u), v.max(u));
                if walks[w].parent_edge == Some(edge) {
                    continue; // backtracking
                }
                let id = walks.len();
                walks.push(Walk {
                    endpoint: u,
                    depth: d + 1,
                    parent: Some(w),
                    parent_edge: Some(edge),
                });
                child.insert((w, edge), id);
                next_frontier.push(id);
            }
        }
        frontier = next_frontier;
    }

    // Resolve the tree node reached from `w` (ending at `v`) along the
    // graph edge {v, u}.
    let resolve = |w: usize, v: NodeId, u: NodeId| -> usize {
        let edge = (v.min(u), v.max(u));
        if walks[w].parent_edge == Some(edge) {
            walks[w].parent.expect("non-root walks have parents")
        } else {
            child[&(w, edge)]
        }
    };

    let n = walks.len();
    let mut builder = crate::graph::GraphBuilder::new(n);
    for (w, walk) in walks.iter().enumerate() {
        if let Some(parent) = walk.parent {
            builder.edge(parent, w).expect("tree edges are simple");
        }
    }
    let tree = builder.build();

    let mut fwd: Vec<Vec<Port>> = Vec::with_capacity(n);
    for (w, walk) in walks.iter().enumerate() {
        let v = walk.endpoint;
        if walk.depth < depth {
            // Interior walk: inherit the endpoint's full wiring.
            let mut row = Vec::with_capacity(g.degree(v));
            for i in 0..g.degree(v) {
                let target = p.forward(Port::new(v, i));
                let w2 = resolve(w, v, target.node);
                // A cut leaf keeps only port 0.
                let index = if walks[w2].depth == depth { 0 } else { target.index };
                row.push(Port::new(w2, index));
            }
            fwd.push(row);
        } else if let Some(parent) = walk.parent {
            // Leaf: single port 0 towards the parent, entering the
            // parent on the in-port the base graph uses for this edge.
            let u = walks[parent].endpoint;
            let i = (0..g.degree(v))
                .find(|&i| p.forward(Port::new(v, i)).node == u)
                .expect("the out-port towards an adjacent node exists");
            let target = p.forward(Port::new(v, i));
            fwd.push(vec![Port::new(parent, target.index)]);
        } else {
            // depth == 0: the truncation is the bare root.
            fwd.push(Vec::new());
        }
    }
    let ports = PortNumbering::from_forward_map(&tree, fwd)
        .expect("universal-cover wiring is a valid port numbering");
    let projection = walks.iter().map(|w| w.endpoint).collect();
    (tree, ports, projection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_symmetric_views_never_split() {
        let g = generators::cycle(5);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        let classes = view_classes(&g, &p, 10);
        for t in 0..=10 {
            assert_eq!(classes.class_count(t), 1, "depth {t}");
        }
    }

    #[test]
    fn star_views_split_leaves_from_centre() {
        let g = generators::star(4);
        let p = PortNumbering::consistent(&g);
        let classes = view_classes(&g, &p, 3);
        assert_eq!(classes.class_count(0), 2);
        // At depth 1, each leaf sees which centre port it hangs off: all
        // leaves get distinct views under a consistent numbering.
        assert!(classes.class_count(1) >= 4);
        assert!(!classes.equivalent(1, 1, 2));
    }

    #[test]
    fn path_views_refine_with_distance_to_ends() {
        // Views depend on the port numbering: under the canonical consistent
        // numbering the mirror symmetry of the path is *broken* (node 1 sees
        // its end through port 0, node 5 through port 1), so the ends end up
        // in different classes even though the graph has a mirror
        // automorphism. Degree-0 classes still merge the ends.
        let g = generators::path(7);
        let p = PortNumbering::consistent(&g);
        let (classes, depth) = stable_view_classes(&g, &p);
        assert_eq!(classes.class(0, 0), classes.class(0, 6));
        let final_level = classes.level(depth);
        assert_ne!(final_level[0], final_level[3]);
        assert_ne!(final_level[0], final_level[6]);
    }

    #[test]
    fn refinement_is_monotone() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::random_regular(12, 3, &mut rng);
        let p = PortNumbering::random(&g, &mut rng);
        let classes = view_classes(&g, &p, 8);
        for t in 1..=8 {
            // Partitions refine: same class at depth t implies same at t-1.
            for u in g.nodes() {
                for v in g.nodes() {
                    if classes.equivalent(t, u, v) {
                        assert!(classes.equivalent(t - 1, u, v));
                    }
                }
            }
            assert!(classes.class_count(t) >= classes.class_count(t - 1));
        }
    }

    #[test]
    fn stable_depth_reported_correctly() {
        let g = generators::cycle(4);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        let (classes, depth) = stable_view_classes(&g, &p);
        assert_eq!(depth, 0);
        assert_eq!(classes.class_count(depth), 1);
    }

    #[test]
    fn universal_cover_of_cubic_graph_is_the_3_regular_tree() {
        // Non-backtracking walks from a node of the Petersen graph: the
        // depth-d truncation has 1 + 3·(2^d - 1) nodes.
        let g = generators::petersen();
        let p = PortNumbering::consistent(&g);
        for d in 0..=4usize {
            let (tree, q, projection) = universal_cover_truncation(&g, &p, 0, d);
            assert_eq!(tree.len(), 1 + 3 * ((1 << d) - 1), "depth {d}");
            assert_eq!(projection.len(), tree.len());
            assert_eq!(projection[0], 0);
            assert_eq!(q.len(), tree.len());
            // Interior nodes keep the projected degree; projections are
            // adjacency-preserving.
            for w in tree.nodes() {
                for &x in tree.neighbors(w) {
                    assert!(g.has_edge(projection[w], projection[x]));
                }
            }
        }
    }

    #[test]
    fn universal_cover_truncation_of_a_tree_is_itself() {
        // A tree is its own universal cover: deep truncations stop
        // growing once the whole tree is unfolded.
        let g = generators::binary_tree(7);
        let p = PortNumbering::consistent(&g);
        let (tree, _, _) = universal_cover_truncation(&g, &p, 0, 10);
        assert_eq!(tree.len(), g.len());
        assert_eq!(tree.edge_count(), g.edge_count());
    }

    #[test]
    fn consistent_numberings_lift_consistently() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let (_, q, _) = universal_cover_truncation(&g, &p, 2, 3);
        assert!(q.is_consistent());
    }

    #[test]
    fn depth_zero_truncation_is_the_bare_root() {
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        let (tree, q, projection) = universal_cover_truncation(&g, &p, 1, 0);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.edge_count(), 0);
        assert_eq!(q.degree(0), 0);
        assert_eq!(projection, vec![1]);
    }

    #[test]
    fn interior_views_match_base_views() {
        // The view partition of the truncation, restricted to walks of
        // depth ≤ D - t, refines compatibly with the base graph's views:
        // the root's depth-(D-1) view class must contain ... — checked
        // here concretely through equal degrees and local types at the
        // root.
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::random_regular(8, 3, &mut rng);
        let p = PortNumbering::random(&g, &mut rng);
        for root in [0usize, 3, 7] {
            let (tree, q, projection) = universal_cover_truncation(&g, &p, root, 3);
            assert_eq!(projection[0], root);
            assert_eq!(tree.degree(0), g.degree(root));
            assert_eq!(q.local_type(0), p.local_type(root), "root {root}");
        }
    }
}
