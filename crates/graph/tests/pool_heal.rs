//! Self-healing contract under worker death: a `return` action on the
//! `pool-worker` failpoint makes workers exit their loop, and
//! [`WorkerPool::heal`] (called at every `run` entry) must detect the
//! dead threads, respawn them, and keep every call completing — the
//! caller participates, so chunks drain even while workers are dying.
//!
//! Own test binary: the failpoint registry is process-global and this
//! test kills pool workers, which must not race other pool tests.

use portnum_graph::pool::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

#[test]
fn dead_workers_are_respawned_and_the_pool_keeps_serving() {
    fail::teardown();
    let pool = WorkerPool::new(2);
    assert_eq!(pool.respawn_count(), 0);

    // Workers exit at the loop head after each call while the action is
    // armed; heal() keeps replacing them at the next run() entry. Every
    // call must still execute all chunks exactly once throughout.
    fail::cfg("pool-worker", "return").unwrap();
    let mut respawned = 0;
    for _ in 0..200 {
        let hits = AtomicUsize::new(0);
        pool.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8, "chunks lost while workers died");
        respawned = pool.respawn_count();
        if respawned >= 2 {
            break;
        }
        // Give the just-killed threads a moment to finish exiting so
        // heal's `is_finished` probe can observe the death.
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(respawned >= 2, "workers died but were not respawned (respawn_count={respawned})");

    // Disarm: the next generation of workers stays alive and the pool
    // serves as if nothing happened.
    fail::remove("pool-worker");
    let hits = AtomicUsize::new(0);
    pool.run(16, &|_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 16);
    assert_eq!(pool.worker_count(), 2, "healing must preserve the pool size");
}
