//! Property-based tests for the graph substrate.

use portnum_graph::{
    cover, generators, lifts, matching, properties, refinement, views, Graph, Port,
    PortNumbering,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut b = Graph::builder(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if mask[idx] {
                        b.edge(u, v).expect("pairs are distinct");
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn handshake_lemma(g in arb_graph(10)) {
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.edge_count());
        prop_assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted(g in arb_graph(10)) {
        for v in g.nodes() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &u in ns {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.neighbor_position(v, u).is_some());
            }
        }
    }

    #[test]
    fn consistent_numbering_is_involution(g in arb_graph(9)) {
        let p = PortNumbering::consistent(&g);
        prop_assert!(p.is_consistent());
        for v in g.nodes() {
            for i in 0..g.degree(v) {
                let q = Port::new(v, i);
                prop_assert_eq!(p.forward(p.forward(q)), q);
            }
        }
    }

    #[test]
    fn blossom_matches_brute_force(g in arb_graph(8)) {
        let m = matching::maximum_matching(&g);
        let mut size = 0;
        for (v, partner) in m.iter().enumerate() {
            if let Some(u) = partner {
                prop_assert!(g.has_edge(v, *u));
                prop_assert_eq!(m[*u], Some(v));
                if v < *u { size += 1; }
            }
        }
        prop_assert_eq!(size, matching::brute_force_matching_size(&g));
    }

    #[test]
    fn double_cover_is_bipartite_with_doubled_edges(g in arb_graph(9)) {
        let c = cover::double_cover_graph(&g);
        prop_assert_eq!(c.len(), 2 * g.len());
        prop_assert_eq!(c.edge_count(), 2 * g.edge_count());
        prop_assert!(properties::bipartition(&c).is_some());
        // Covers preserve degrees.
        for v in g.nodes() {
            prop_assert_eq!(c.degree(v), g.degree(v));
            prop_assert_eq!(c.degree(v + g.len()), g.degree(v));
        }
    }

    #[test]
    fn view_refinement_is_monotone(g in arb_graph(8), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let classes = views::view_classes(&g, &p, 5);
        for t in 1..=5 {
            prop_assert!(classes.class_count(t) >= classes.class_count(t - 1));
            for u in g.nodes() {
                for v in g.nodes() {
                    if classes.equivalent(t, u, v) {
                        prop_assert!(classes.equivalent(t - 1, u, v));
                    }
                }
            }
        }
    }

    #[test]
    fn wl_stabilises_and_respects_degrees(g in arb_graph(9)) {
        let (classes, round) = refinement::stable_coloring(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if classes.class(round, u) == classes.class(round, v) {
                    prop_assert_eq!(g.degree(u), g.degree(v));
                }
            }
        }
        // Stability: one more round changes nothing.
        let more = refinement::color_refinement(&g, round + 1);
        prop_assert_eq!(more.level(round), more.level(round + 1));
    }

    #[test]
    fn random_lifts_are_covering_maps(
        g in arb_graph(8),
        sheets in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let voltages = lifts::Voltages::random(&g, sheets, &mut rng);
        let lift = lifts::lift(&g, &p, &voltages).expect("voltages fit the graph");
        prop_assert_eq!(lift.graph().len(), sheets * g.len());
        prop_assert_eq!(lift.graph().edge_count(), sheets * g.edge_count());
        prop_assert!(lift.covering_map().verify(&g, &p, lift.graph(), lift.ports()));
        // Fibres have exactly `sheets` members and degrees are preserved.
        for v in g.nodes() {
            let fiber = lift.covering_map().fiber(v);
            prop_assert_eq!(fiber.len(), sheets);
            for w in fiber {
                prop_assert_eq!(lift.graph().degree(w), g.degree(v));
            }
        }
        // Consistency lifts: the lift of a consistent numbering along
        // *involutive* voltages stays consistent (double cover is one).
        let q = PortNumbering::consistent(&g);
        let dc = lifts::lift(&g, &q, &lifts::Voltages::double_cover(&g)).unwrap();
        prop_assert!(dc.ports().is_consistent());
    }

    #[test]
    fn universal_cover_truncations_are_trees_projecting_homomorphically(
        g in arb_graph(8),
        root in 0usize..8,
        depth in 0usize..=3,
        seed in any::<u64>(),
    ) {
        let root = root % g.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let p = PortNumbering::random(&g, &mut rng);
        let (tree, q, projection) = views::universal_cover_truncation(&g, &p, root, depth);
        // A tree: connected with n - 1 edges.
        prop_assert_eq!(tree.edge_count() + 1, tree.len());
        prop_assert_eq!(properties::component_count(&tree), 1);
        prop_assert_eq!(projection[0], root);
        prop_assert_eq!(q.len(), tree.len());
        // The projection is a graph homomorphism preserving local types at
        // interior nodes (distance < depth from the root).
        let mut dist = vec![usize::MAX; tree.len()];
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(w) = queue.pop_front() {
            for &x in tree.neighbors(w) {
                if dist[x] == usize::MAX {
                    dist[x] = dist[w] + 1;
                    queue.push_back(x);
                }
            }
        }
        for w in tree.nodes() {
            for &x in tree.neighbors(w) {
                prop_assert!(g.has_edge(projection[w], projection[x]));
            }
            if dist[w] < depth {
                prop_assert_eq!(tree.degree(w), g.degree(projection[w]));
            }
            // Local types record the *feeders'* out-port numbers, and a
            // cut leaf keeps only port 0 — so exactness holds one layer
            // further in.
            if dist[w] + 1 < depth {
                prop_assert_eq!(q.local_type(w), p.local_type(projection[w]));
            }
        }
    }

    #[test]
    fn identity_lift_multiplies_components(g in arb_graph(8), sheets in 1usize..=3) {
        let p = PortNumbering::consistent(&g);
        let lift = lifts::lift(&g, &p, &lifts::Voltages::identity(&g, sheets)).unwrap();
        prop_assert_eq!(
            properties::component_count(lift.graph()),
            sheets * properties::component_count(&g)
        );
    }

    #[test]
    fn components_partition_nodes(g in arb_graph(10)) {
        let labels = properties::components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u], labels[v]);
        }
        let k = properties::component_count(&g);
        prop_assert!(labels.iter().all(|&l| l < k));
    }
}

#[test]
fn symmetric_numbering_exists_for_random_regular_graphs() {
    let mut rng = StdRng::seed_from_u64(77);
    for (n, d) in [(8usize, 3usize), (10, 4), (12, 5)] {
        let g = generators::random_regular(n, d, &mut rng);
        let p = PortNumbering::symmetric_regular(&g).unwrap();
        // Port i always connects to port i.
        for (from, to) in p.pairs() {
            assert_eq!(from.index, to.index);
        }
        // Every node has the same local type.
        let t0 = p.local_type(0);
        for v in g.nodes() {
            assert_eq!(p.local_type(v), t0);
        }
    }
}
