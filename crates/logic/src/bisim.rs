//! Bisimulation and graded bisimulation via partition refinement
//! (Section 4.2).
//!
//! For finite (hence image-finite) Kripke models, bisimilarity is the limit
//! of signature refinement: start from the valuation partition (degrees)
//! and repeatedly split worlds whose successors fall into distinguishable
//! blocks. Two styles:
//!
//! * [`BisimStyle::Plain`] — signatures record, per modality, the *set* of
//!   successor blocks. The limit is bisimilarity; two bisimilar worlds
//!   satisfy the same ML/MML formulas (Fact 1a).
//! * [`BisimStyle::Graded`] — signatures record the *multiset* (counts) of
//!   successor blocks. The limit is g-bisimilarity (conditions B2*/B3*);
//!   two g-bisimilar worlds satisfy the same GML/GMML formulas (Fact 1b).
//!
//! Truncating the refinement at `t` rounds yields `t`-step equivalence:
//! worlds equivalent at depth `t` agree on all formulas of modal depth
//! `≤ t`, which via Theorem 2 means no algorithm of the matching class can
//! separate them within `t` rounds.
//!
//! # Implementation
//!
//! Two engines drive the rounds, selected once per process by the
//! `PORTNUM_REFINE` environment variable (see
//! [`portnum_graph::partition::refine_engine_choice`]) and
//! differentially tested to produce identical partitions at every
//! depth:
//!
//! * **Worklist** (default) — the incremental engine of
//!   [`portnum_graph::partition::WorklistRefiner`]: blocks that split
//!   in round `t` are the splitters of round `t + 1`, and only their
//!   members' predecessors (found via a reverse CSR built once per
//!   run) are re-signed. Near-stable rounds cost O(changed) instead of
//!   O(n), which collapses the Θ(n · rounds) bill that long-diameter
//!   models (paths, deep trees — Θ(n) rounds each) used to pay.
//! * **Rounds** (`PORTNUM_REFINE=rounds`) — the full-round reference
//!   engine described below; every world is re-signed every round.
//!
//! Rounds of the reference engine run on the interned-signature engine
//! of [`portnum_graph::partition`] (shared with 1-WL colour refinement): a
//! world's signature is encoded as a flat run of `u64` words — previous
//! block, then for each *nonempty* relation row its dense relation id
//! followed by the sorted successor blocks (with multiplicities when
//! graded) — into a scratch buffer reused across worlds and rounds, and
//! interned to a dense block id with an FxHash-keyed table. Nothing is
//! allocated per world; new blocks cost one allocation each.
//!
//! Empty rows are skipped entirely: each world's nonempty relation rows
//! are indexed once per run, which on many-relation models (K₊,₊ stores
//! O(Δ²) relations, almost all rows empty) shrinks the per-round work
//! from O(worlds × relations) to O(edges). Embedding the relation id in
//! the signature keeps the encoding canonical without per-relation
//! separators — [`Refiner::push_blocks`] is prefix-free, so streams
//! cannot collide across different row splits.
//!
//! Level-by-level history (needed for `t`-step queries) costs O(n) memory
//! per round; fixpoint-only callers ([`bisimilar`], [`bisimilar_across`],
//! the quotient construction) use [`refine_fixpoint`], which keeps only
//! the final partition.
//!
//! On models with at least [`PARALLEL_THRESHOLD`] signature words of
//! per-round encode work (worlds + stored successor pairs) each round
//! runs in two phases: the encode phase (gather + sort + flatten
//! signatures — the dominant cost) fans out over the persistent worker
//! pool ([`portnum_graph::pool`]) into chunk-local
//! [`SignatureBuffer`]s, and the intern phase walks the buffers in world
//! order through the shared table, so block ids (and therefore every
//! partition) are bit-identical to the sequential engine's. The pool's
//! parked workers make a parallel round cost a wake-up rather than a
//! thread spawn, which is what lets the gate sit at a few thousand
//! words instead of the old 2¹⁶.
//!
//! Chunk boundaries sit at *work* quantiles, not equal world counts:
//! each world's encode cost (≈ its signature words, derived from the
//! CSR row index built once per run) is prefix-summed and the rounds
//! split via [`parallel_encode_weighted`], so a degree-skewed hub world
//! no longer drags a full node-range behind one thread while the other
//! threads finish early.

use crate::kripke::Kripke;
use portnum_graph::partition::{
    encode_threads, encode_work, nonempty_row_index, parallel_encode_weighted,
    refine_engine_choice, threads_for, Counting, Refiner, SignatureBuffer, WorklistRefiner,
};
use portnum_graph::resilience::{ExecControl, Interrupted};
pub use portnum_graph::partition::{RefineEngine, RefineStats};

/// Minimum signature words of per-round encode work (worlds + stored
/// successor pairs) before refinement rounds parallelise their encode
/// phase; below this, even the pool wake-up outweighs the round's
/// work. Overridable via `PORTNUM_POOL` — see
/// [`portnum_graph::partition::threads_for`].
pub const PARALLEL_THRESHOLD: usize = portnum_graph::partition::PARALLEL_THRESHOLD;

/// Plain (set-based) or graded (counting) refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BisimStyle {
    /// Set-based signatures: bisimulation for ML/MML.
    Plain,
    /// Counting signatures: graded bisimulation for GML/GMML.
    Graded,
}

impl BisimStyle {
    fn counting(self) -> Counting {
        match self {
            BisimStyle::Plain => Counting::Distinct,
            BisimStyle::Graded => Counting::Multiset,
        }
    }
}

/// The result of a refinement run: a partition per depth (or, for
/// [`refine_fixpoint`], just the final partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisimClasses {
    style: BisimStyle,
    /// All levels `0..=depth` when history is kept; only the final level
    /// otherwise.
    levels: Vec<Vec<usize>>,
    /// Depth of the deepest computed partition (= number of rounds run).
    depth: usize,
    stable: bool,
}

impl BisimClasses {
    /// The refinement style used.
    pub fn style(&self) -> BisimStyle {
        self.style
    }

    fn has_history(&self) -> bool {
        self.levels.len() == self.depth + 1
    }

    fn level_index(&self, t: usize) -> usize {
        if self.has_history() {
            t.min(self.depth)
        } else {
            assert!(
                t >= self.depth,
                "depth-{t} query on a history-free refinement of depth {}; \
                 use refine/refine_bounded instead of refine_fixpoint for \
                 level-indexed access",
                self.depth
            );
            0
        }
    }

    /// The block of world `v` at depth `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t < self.depth()` on a [`refine_fixpoint`] result,
    /// which records only the final partition.
    pub fn class(&self, t: usize, v: usize) -> usize {
        self.levels[self.level_index(t)][v]
    }

    /// The partition at depth `t` (clamped to the deepest computed level;
    /// once stable, deeper levels are identical).
    ///
    /// # Panics
    ///
    /// Panics if `t < self.depth()` on a [`refine_fixpoint`] result,
    /// which records only the final partition.
    pub fn level(&self, t: usize) -> &[usize] {
        &self.levels[self.level_index(t)]
    }

    /// The final (deepest) partition computed.
    pub fn final_level(&self) -> &[usize] {
        self.levels.last().expect("at least one level")
    }

    /// Number of blocks at depth `t`.
    pub fn class_count(&self, t: usize) -> usize {
        self.level(t).iter().max().map_or(0, |&m| m + 1)
    }

    /// Depth of the deepest computed partition.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Returns `true` if the refinement ran to a fixpoint, in which case
    /// [`Self::final_level`] is the full (g-)bisimilarity partition.
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// Whether `u` and `v` are equivalent at depth `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t < self.depth()` on a [`refine_fixpoint`] result,
    /// which records only the final partition.
    pub fn equivalent_at(&self, t: usize, u: usize, v: usize) -> bool {
        let level = self.level(t);
        level[u] == level[v]
    }

    /// Whether `u` and `v` are (g-)bisimilar.
    ///
    /// # Panics
    ///
    /// Panics if the refinement was truncated before stabilising.
    pub fn bisimilar(&self, u: usize, v: usize) -> bool {
        assert!(self.stable, "refinement was truncated; rerun without a depth bound");
        let level = self.final_level();
        level[u] == level[v]
    }
}

/// Runs signature refinement to a fixpoint, keeping every intermediate
/// level (O(n · depth) memory). Use [`refine_fixpoint`] when only the
/// final partition matters.
///
/// Rounds run on the engine selected by `PORTNUM_REFINE` (see
/// [`refine_engine_choice`]): the incremental worklist engine by
/// default, the full-round reference with `PORTNUM_REFINE=rounds`.
/// The engines produce identical levels at every depth
/// (proptest-pinned), differing only in cost: on long-diameter models
/// the worklist engine touches O(changed) worlds per round instead of
/// all n.
pub fn refine(model: &Kripke, style: BisimStyle) -> BisimClasses {
    refine_impl(model, style, None, true, &ExecControl::unrestricted())
        .expect("unrestricted refinement cannot be interrupted")
}

/// Control-aware [`refine`]: polls the [`ExecControl`] at every round
/// boundary (cancel, deadline, and the touched-work ceiling priced in
/// encoded signatures — the engines' own `RefineStats::encoded`
/// currency). On `Err` nothing is returned and nothing was published:
/// all refinement state is call-local, so a retry is bit-identical to
/// an uninterrupted run. Cancel-to-return latency is bounded by one
/// refinement round.
///
/// # Errors
///
/// The first [`Interrupted`] observed at a round boundary.
pub fn refine_controlled(
    model: &Kripke,
    style: BisimStyle,
    ctl: &ExecControl,
) -> Result<BisimClasses, Interrupted> {
    refine_impl(model, style, None, true, ctl)
}

/// Control-aware [`refine_fixpoint`] (final partition only); the same
/// round-boundary polling contract as [`refine_controlled`].
///
/// # Errors
///
/// The first [`Interrupted`] observed at a round boundary.
pub fn refine_fixpoint_controlled(
    model: &Kripke,
    style: BisimStyle,
    ctl: &ExecControl,
) -> Result<BisimClasses, Interrupted> {
    refine_impl(model, style, None, false, ctl)
}

/// Runs signature refinement for at most `depth` rounds (the result
/// characterises formulas of modal depth `≤ depth`).
pub fn refine_bounded(model: &Kripke, style: BisimStyle, depth: usize) -> BisimClasses {
    refine_impl(model, style, Some(depth), true, &ExecControl::unrestricted())
        .expect("unrestricted refinement cannot be interrupted")
}

/// Runs signature refinement to a fixpoint keeping only the final
/// partition (O(n) memory — no level history).
///
/// The result answers [`BisimClasses::bisimilar`] / final-level queries;
/// level-indexed queries below the fixpoint depth panic. Like
/// [`refine`], the engine is selected by `PORTNUM_REFINE`.
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::bisim::{refine_fixpoint, BisimStyle};
/// use portnum_logic::Kripke;
///
/// // On a path, worlds are bisimilar iff they mirror each other.
/// let k = Kripke::k_mm(&generators::path(7));
/// let classes = refine_fixpoint(&k, BisimStyle::Plain);
/// assert!(classes.is_stable());
/// assert!(classes.bisimilar(1, 5));
/// assert!(!classes.bisimilar(1, 2));
/// ```
pub fn refine_fixpoint(model: &Kripke, style: BisimStyle) -> BisimClasses {
    refine_impl(model, style, None, false, &ExecControl::unrestricted())
        .expect("unrestricted refinement cannot be interrupted")
}

/// Runs [`refine_fixpoint`] on the worklist engine and also returns the
/// engine's [`RefineStats`] — rounds, the touched-world counter
/// (`encoded`), moves, and how many rounds went parallel. The
/// full-round engine would encode exactly `n · rounds` signatures; on
/// long-diameter models `encoded` stays O(n + edges).
pub fn refine_fixpoint_stats(model: &Kripke, style: BisimStyle) -> (BisimClasses, RefineStats) {
    refine_worklist(model, style, None, false, false, &ExecControl::unrestricted())
        .expect("unrestricted refinement cannot be interrupted")
}

fn refine_impl(
    model: &Kripke,
    style: BisimStyle,
    depth: Option<usize>,
    keep_levels: bool,
    ctl: &ExecControl,
) -> Result<BisimClasses, Interrupted> {
    match refine_engine_choice() {
        RefineEngine::Worklist => {
            Ok(refine_worklist(model, style, depth, keep_levels, false, ctl)?.0)
        }
        RefineEngine::Rounds => refine_engine(
            model,
            style,
            depth,
            keep_levels,
            threads_for(model.len() + model.relation_entry_count()),
            ctl,
        ),
    }
}

/// Full-history refinement pinned to a specific engine — the
/// differential-testing and benchmarking hook; use [`refine`] (which
/// consults `PORTNUM_REFINE`) everywhere else.
#[doc(hidden)]
pub fn refine_with(model: &Kripke, style: BisimStyle, engine: RefineEngine) -> BisimClasses {
    let ctl = ExecControl::unrestricted();
    match engine {
        RefineEngine::Worklist => refine_worklist(model, style, None, true, false, &ctl)
            .expect("unrestricted refinement cannot be interrupted")
            .0,
        RefineEngine::Rounds => refine_engine(
            model,
            style,
            None,
            true,
            threads_for(model.len() + model.relation_entry_count()),
            &ctl,
        )
        .expect("unrestricted refinement cannot be interrupted"),
    }
}

/// Runs the full-history **round-engine** refinement with the encode
/// phase forced onto the worker pool regardless of model size. Exists
/// so tests and benches can pin the pool-driven path against the
/// sequential one; use [`refine`] and friends everywhere else.
#[doc(hidden)]
pub fn refine_forced_parallel(model: &Kripke, style: BisimStyle) -> BisimClasses {
    refine_engine(model, style, None, true, encode_threads().max(2), &ExecControl::unrestricted())
        .expect("unrestricted refinement cannot be interrupted")
}

/// Runs the full-history **worklist** refinement with every round's
/// encode phase forced onto the worker pool — the differential-test
/// knob for the frontier-chunked parallel path.
#[doc(hidden)]
pub fn refine_worklist_forced_parallel(model: &Kripke, style: BisimStyle) -> BisimClasses {
    refine_worklist(model, style, None, true, true, &ExecControl::unrestricted())
        .expect("unrestricted refinement cannot be interrupted")
        .0
}

/// The worklist-engine driver: identical round semantics to
/// [`refine_engine`] (the partition after round `t` is the synchronous
/// depth-`t` partition, canonically renumbered), but each round
/// re-encodes only the dirty frontier maintained by
/// [`WorklistRefiner`]. Relations are handed over as borrowed CSR
/// slices, so the engine adds no per-run copies of the model.
fn refine_worklist(
    model: &Kripke,
    style: BisimStyle,
    depth: Option<usize>,
    keep_levels: bool,
    force_parallel: bool,
    ctl: &ExecControl,
) -> Result<(BisimClasses, RefineStats), Interrupted> {
    let n = model.len();
    let relations = model.relations_csr();
    let mut refiner = WorklistRefiner::new(
        n,
        &relations,
        style.counting(),
        (0..n).map(|v| model.degree(v) as u64),
    );
    // Dirty propagation runs on the model's cached combined CSC store
    // ([`Kripke::combined_predecessors_csc`]) instead of a private
    // per-refiner reverse CSR — still lazy (fast-stabilising models
    // build nothing), amortised across refinement runs, and on
    // single-relation models literally the same store as the
    // evaluator's CSC diamond path.
    refiner.share_reverse_adjacency(|| model.combined_predecessors_csc());
    refiner.force_parallel(force_parallel);
    // Fixpoint-only callers never observe intermediate canonical
    // levels, so the refiner can skip its per-round level bookkeeping
    // (the dirty-order sort); the fixpoint partition is unaffected.
    refiner.observe_levels(keep_levels);

    let mut level = Vec::new();
    refiner.canonical_level_into(&mut level);
    let mut levels = if keep_levels { vec![level.clone()] } else { Vec::new() };
    let mut rounds = 0usize;
    let mut stable = n <= 1;

    while depth.is_none_or(|d| rounds < d) {
        let changed = refiner.round_controlled(ctl)?;
        rounds += 1;
        if keep_levels {
            refiner.canonical_level_into(&mut level);
            levels.push(level.clone());
        }
        if !changed {
            stable = true;
            break;
        }
        debug_assert!(rounds <= n, "refinement must stabilise within n rounds");
    }

    if !keep_levels {
        refiner.canonical_level_into(&mut level);
        levels.push(level);
    }
    let stats = refiner.stats();
    Ok((BisimClasses { style, levels, depth: rounds, stable }, stats))
}

/// Resumes signature refinement after a [`crate::ModelDelta`], seeding
/// the worklist from a prior stable partition instead of from scratch.
///
/// `prior` must be a partition of the model that was **stable before
/// the delta** (e.g. [`BisimClasses::final_level`] of a fixpoint run on
/// the pre-delta model) and `touched` the sorted world list returned by
/// [`crate::Kripke::apply_delta`] (the union over a batch of deltas is
/// fine). The refiner restarts from the blocks of `prior` split by each
/// world's *current* degree atom, with the dirty frontier seeded to
/// `touched` plus every current predecessor of a touched world — the
/// only worlds whose signatures can have changed — and runs to a
/// fixpoint.
///
/// # The partition is stable but possibly finer than coarsest
///
/// Signature refinement only ever splits blocks, so resuming cannot
/// re-merge worlds that a removed edge has made equivalent again. The
/// result is guaranteed *stable* — a genuine (g-)bisimulation of the
/// current model — which is exactly what quotient-based model checking
/// needs ([`crate::quotient`] accepts any stable partition, and truth
/// vectors lift through any bisimulation). It is **not** guaranteed
/// coarsest, so minimum bases and bisimilarity *queries* must use
/// [`refine_fixpoint`] on the current model instead: `bisimilar` on a
/// resumed result can answer `false` for worlds the coarsest partition
/// would merge.
///
/// Cost is proportional to the region the delta actually perturbs:
/// on a localized delta the frontier stays small and the run touches
/// O(affected) worlds, not O(n).
pub fn refine_fixpoint_from(
    model: &Kripke,
    style: BisimStyle,
    prior: &[usize],
    touched: &[u32],
) -> BisimClasses {
    let n = model.len();
    assert_eq!(prior.len(), n, "prior partition must cover every world");
    // Dirty frontier: the touched worlds and their current predecessors
    // (a changed successor row or degree atom can only re-sign the
    // world itself and the worlds that observe it).
    let mut dirty: Vec<u32> = touched.to_vec();
    let csc = model.combined_predecessors_csc();
    for &w in touched {
        dirty.extend_from_slice(csc.row(w as usize));
    }
    let relations = model.relations_csr();
    let mut refiner = WorklistRefiner::resume(
        n,
        &relations,
        style.counting(),
        (0..n).map(|v| model.degree(v) as u64),
        prior,
        &dirty,
    );
    refiner.share_reverse_adjacency(|| model.combined_predecessors_csc());
    refiner.observe_levels(false);
    let mut rounds = 0usize;
    loop {
        let changed = refiner.round();
        rounds += 1;
        if !changed {
            break;
        }
        debug_assert!(rounds <= n + 1, "resumed refinement must stabilise within n rounds");
    }
    let mut level = Vec::new();
    refiner.canonical_level_into(&mut level);
    BisimClasses { style, levels: vec![level], depth: rounds, stable: true }
}

fn refine_engine(
    model: &Kripke,
    style: BisimStyle,
    depth: Option<usize>,
    keep_levels: bool,
    threads: usize,
    ctl: &ExecControl,
) -> Result<BisimClasses, Interrupted> {
    let n = model.len();
    let counting = style.counting();

    let mut refiner = Refiner::new();
    // Depth 0: partition by valuation (degree atoms).
    let mut prev = refiner.seed_partition((0..n).map(|v| model.degree(v) as u64));
    let mut levels = if keep_levels { vec![prev.clone()] } else { Vec::new() };

    // Index each world's nonempty relation rows once per run
    // (signatures skip empty rows — the overwhelming majority on K₊,₊,
    // which has O(Δ²) relations — pushing the relation id into the
    // signature to stay canonical); one shared builder with the
    // worklist engine, [`portnum_graph::partition::nonempty_row_index`],
    // so the engines' row enumeration cannot drift apart. Skipped at
    // depth 0, where the round loop never runs.
    let (row_bounds, row_index) = if depth == Some(0) {
        (vec![0usize; n + 1], Vec::new())
    } else {
        nonempty_row_index(n, &model.relations_csr())
    };
    let world_rows =
        |v: usize| -> &[(u64, &[u32])] { &row_index[row_bounds[v]..row_bounds[v + 1]] };

    // Prefix sums of per-world encode work for the balanced parallel
    // split — the same accounting the worklist engine's parallel gate
    // uses ([`portnum_graph::partition::encode_work`]).
    let work: Vec<usize> = if threads > 1 {
        let mut work = Vec::with_capacity(n + 1);
        work.push(0);
        for v in 0..n {
            work.push(work[v] + encode_work(&row_bounds, &row_index, v));
        }
        work
    } else {
        Vec::new()
    };

    let mut blocks: Vec<usize> = Vec::new();
    let mut buffers: Vec<SignatureBuffer> = Vec::new();
    let mut next: Vec<usize> = Vec::with_capacity(n);
    let mut rounds = 0usize;
    let mut stable = n <= 1;

    while depth.is_none_or(|d| rounds < d) {
        // Round-boundary chaos site + control poll, mirroring the
        // worklist engine's `round_controlled`. The rounds engine
        // encodes exactly n signatures per round, so `n · rounds` is
        // its cumulative-work currency.
        fail::fail_point!("refine-round");
        ctl.check_work(n * rounds)?;
        refiner.begin_round();
        next.clear();
        if threads > 1 {
            // Phase 1 (parallel): encode every world's signature against
            // the frozen `prev` into chunk-local buffers, split at
            // work quantiles so a hub world cannot serialise the round.
            let prev_ref = &prev;
            parallel_encode_weighted(&work, threads, &mut buffers, |range, buf| {
                let mut blocks = std::mem::take(buf.blocks_scratch());
                for v in range {
                    buf.begin(prev_ref[v]);
                    for &(r, row) in world_rows(v) {
                        buf.push_word(r);
                        blocks.extend(row.iter().map(|&w| prev_ref[w as usize]));
                        buf.push_blocks(&mut blocks, counting);
                    }
                    buf.end();
                }
                *buf.blocks_scratch() = blocks;
            });
            // Phase 2 (sequential): intern in world order — first-seen
            // ids come out identical to the sequential engine.
            for buf in &buffers {
                for i in 0..buf.len() {
                    next.push(refiner.commit_slice(buf.signature(i)));
                }
            }
        } else {
            for v in 0..n {
                refiner.begin_signature(prev[v]);
                for &(r, row) in world_rows(v) {
                    refiner.push_word(r);
                    blocks.extend(row.iter().map(|&w| prev[w as usize]));
                    refiner.push_blocks(&mut blocks, counting);
                }
                next.push(refiner.commit());
            }
        }
        rounds += 1;
        // Block ids are first-seen canonical at every level, so the
        // partition is stable exactly when the vectors are equal.
        let done = next == prev;
        std::mem::swap(&mut prev, &mut next);
        if keep_levels {
            levels.push(prev.clone());
        }
        if done {
            stable = true;
            break;
        }
        debug_assert!(rounds <= n, "refinement must stabilise within n rounds");
    }

    if !keep_levels {
        levels.push(prev);
    }
    Ok(BisimClasses { style, levels, depth: rounds, stable })
}

/// Whether worlds `u` and `v` of one model are (g-)bisimilar.
pub fn bisimilar(model: &Kripke, style: BisimStyle, u: usize, v: usize) -> bool {
    refine_fixpoint(model, style).bisimilar(u, v)
}

/// Whether world `u` of `a` is (g-)bisimilar to world `v` of `b`
/// (computed on the disjoint union).
///
/// # Panics
///
/// Panics if the model variants differ.
pub fn bisimilar_across(
    a: &Kripke,
    u: usize,
    b: &Kripke,
    v: usize,
    style: BisimStyle,
) -> bool {
    let union = a.disjoint_union(b);
    bisimilar(&union, style, u, a.len() + v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::{generators, Graph, PortNumbering};

    #[test]
    fn cycle_nodes_all_bisimilar() {
        let k = Kripke::k_mm(&generators::cycle(6));
        let classes = refine(&k, BisimStyle::Plain);
        assert!(classes.is_stable());
        assert_eq!(classes.class_count(classes.depth()), 1);
        let classes = refine(&k, BisimStyle::Graded);
        assert_eq!(classes.class_count(classes.depth()), 1);
    }

    #[test]
    fn cycles_of_different_length_bisimilar_across() {
        let a = Kripke::k_mm(&generators::cycle(3));
        let b = Kripke::k_mm(&generators::cycle(5));
        assert!(bisimilar_across(&a, 0, &b, 0, BisimStyle::Plain));
        assert!(bisimilar_across(&a, 0, &b, 0, BisimStyle::Graded));
    }

    #[test]
    fn star_centre_differs_from_leaves() {
        let k = Kripke::k_mm(&generators::star(3));
        assert!(!bisimilar(&k, BisimStyle::Plain, 0, 1));
        assert!(bisimilar(&k, BisimStyle::Plain, 1, 2));
    }

    #[test]
    fn plain_vs_graded_on_theorem13_witness() {
        // The heart of Theorem 13: the white nodes are plain-bisimilar in
        // K_{-,-} (sets cannot count) but NOT g-bisimilar (multisets can).
        let (g, (a, b)) = generators::theorem13_witness();
        let k = Kripke::k_mm(&g);
        assert!(bisimilar(&k, BisimStyle::Plain, a, b));
        assert!(!bisimilar(&k, BisimStyle::Graded, a, b));
    }

    #[test]
    fn graded_refines_plain() {
        let (g, _) = generators::theorem13_witness();
        let k = Kripke::k_mm(&g);
        let plain = refine(&k, BisimStyle::Plain);
        let graded = refine(&k, BisimStyle::Graded);
        for u in 0..k.len() {
            for v in 0..k.len() {
                if graded.bisimilar(u, v) {
                    assert!(plain.bisimilar(u, v), "graded classes must refine plain");
                }
            }
        }
    }

    #[test]
    fn symmetric_port_numbering_makes_all_nodes_bisimilar_in_k_pp() {
        // Lemma 15, machine-checked.
        for g in [generators::cycle(5), generators::petersen(), generators::no_one_factor(3)] {
            let p = PortNumbering::symmetric_regular(&g).unwrap();
            let k = Kripke::k_pp(&g, &p);
            let classes = refine(&k, BisimStyle::Plain);
            assert_eq!(classes.class_count(classes.depth()), 1, "graph {g}");
        }
    }

    #[test]
    fn consistent_numbering_separates_no_one_factor_graph() {
        // Lemma 16 (contrapositive): with a consistent numbering of a graph
        // in the family 𝒢, not all nodes can stay bisimilar in K_{+,+}.
        let g = generators::no_one_factor(3);
        let p = PortNumbering::consistent(&g);
        let k = Kripke::k_pp(&g, &p);
        let classes = refine(&k, BisimStyle::Plain);
        assert!(classes.class_count(classes.depth()) > 1);
    }

    #[test]
    fn bounded_refinement_matches_modal_depth() {
        // On a path, worlds at distance ≥ t+1 from both ends cannot be
        // separated by depth-t formulas; bounded refinement reflects that.
        // (Use an odd path so nodes 2 and 5 are not mirror images: their
        // distances to the nearest end are 2 and 3.)
        let g = generators::path(9);
        let k = Kripke::k_mm(&g);
        let c1 = refine_bounded(&k, BisimStyle::Plain, 1);
        assert!(!c1.is_stable() || c1.depth() <= 1);
        // Depth 1: nodes 2 and 5 both see two degree-2 neighbours.
        assert!(c1.equivalent_at(1, 2, 5));
        // Full refinement eventually separates them.
        let full = refine(&k, BisimStyle::Plain);
        assert!(full.is_stable());
        assert!(!full.bisimilar(2, 5));
        // Mirror-image nodes stay bisimilar forever.
        assert!(full.bisimilar(2, 6));
    }

    #[test]
    fn equivalent_at_clamps_beyond_stability() {
        let k = Kripke::k_mm(&generators::cycle(4));
        let classes = refine(&k, BisimStyle::Plain);
        assert!(classes.equivalent_at(10_000, 0, 2));
    }

    #[test]
    fn k_pm_star_leaves_bisimilar_any_numbering() {
        // Theorem 11's obstruction: in K_{+,-} the leaves of a star are
        // bisimilar under every port numbering (each leaf's single in-port
        // is fed by the centre).
        let g = generators::star(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        for _ in 0..10 {
            let p = PortNumbering::random(&g, &mut rng);
            let k = Kripke::k_pm(&g, &p);
            let classes = refine(&k, BisimStyle::Plain);
            for leaf in 2..=4 {
                assert!(classes.bisimilar(1, leaf));
            }
        }
    }

    #[test]
    fn k_mp_star_leaves_can_differ() {
        // By contrast, in K_{-,+} (Set/Multiset classes) the leaves *can*
        // be separated: each leaf sees which out-port of the centre feeds
        // it. This is why leaf selection is in SV(1) (Theorem 11).
        let g = generators::star(3);
        let p = PortNumbering::consistent(&g);
        let k = Kripke::k_mp(&g, &p);
        let classes = refine(&k, BisimStyle::Plain);
        assert!(!classes.bisimilar(1, 2));
    }

    #[test]
    fn disconnected_components_compare() {
        let g = Graph::disjoint_union(&[&generators::cycle(3), &generators::cycle(4)]);
        let k = Kripke::k_mm(&g);
        assert!(bisimilar(&k, BisimStyle::Plain, 0, 4));
    }

    #[test]
    fn fixpoint_matches_full_refinement() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        use rand::SeedableRng;
        for _ in 0..5 {
            let g = generators::gnp(12, 0.3, &mut rng);
            let k = Kripke::k_mm(&g);
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let full = refine(&k, style);
                let lean = refine_fixpoint(&k, style);
                assert!(lean.is_stable());
                assert_eq!(lean.depth(), full.depth());
                assert_eq!(lean.final_level(), full.final_level());
                // Clamped access beyond the fixpoint depth works.
                assert_eq!(lean.level(lean.depth() + 5), lean.final_level());
            }
        }
    }

    #[test]
    #[should_panic(expected = "history-free")]
    fn fixpoint_rejects_shallow_level_queries() {
        let k = Kripke::k_mm(&generators::path(9));
        let lean = refine_fixpoint(&k, BisimStyle::Plain);
        assert!(lean.depth() > 1, "path(9) needs several rounds");
        let _ = lean.level(1);
    }

    #[test]
    fn worklist_matches_rounds_engine_level_by_level() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        use rand::SeedableRng;
        let mut graphs = vec![
            generators::path(17),
            generators::star(5),
            generators::theorem13_witness().0,
            Graph::disjoint_union(&[&generators::cycle(3), &generators::cycle(4)]),
        ];
        for _ in 0..3 {
            graphs.push(generators::gnp(14, 0.25, &mut rng));
        }
        for g in graphs {
            let p = PortNumbering::random(&g, &mut rng);
            for k in [Kripke::k_mm(&g), Kripke::k_pp(&g, &p), Kripke::k_mp(&g, &p)] {
                for style in [BisimStyle::Plain, BisimStyle::Graded] {
                    let wl = refine_with(&k, style, RefineEngine::Worklist);
                    let rd = refine_with(&k, style, RefineEngine::Rounds);
                    assert_eq!(wl.depth(), rd.depth(), "{g} {:?} depth", style);
                    assert_eq!(wl.is_stable(), rd.is_stable());
                    for t in 0..=wl.depth() {
                        assert_eq!(wl.level(t), rd.level(t), "{g} {:?} level {t}", style);
                    }
                }
            }
        }
    }

    #[test]
    fn worklist_forced_parallel_matches_sequential() {
        let g = generators::gnp(40, 0.1, &mut {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(31)
        });
        let k = Kripke::k_mm(&g);
        for style in [BisimStyle::Plain, BisimStyle::Graded] {
            let seq = refine_with(&k, style, RefineEngine::Worklist);
            let par = refine_worklist_forced_parallel(&k, style);
            assert_eq!(seq.depth(), par.depth());
            for t in 0..=seq.depth() {
                assert_eq!(seq.level(t), par.level(t), "{:?} level {t}", style);
            }
        }
    }

    #[test]
    fn worklist_touches_o_of_n_worlds_on_paths() {
        // The tentpole property, end to end on a Kripke model: a path
        // takes Θ(n) rounds, and the worklist engine still only encodes
        // O(n) signatures in total — o(n · rounds), where the
        // full-round engine pays exactly n · rounds.
        let n = 256;
        let k = Kripke::k_mm(&generators::path(n));
        for style in [BisimStyle::Plain, BisimStyle::Graded] {
            let (classes, stats) = refine_fixpoint_stats(&k, style);
            assert!(classes.is_stable());
            assert!(stats.rounds >= n / 2 - 2, "paths take Θ(n) rounds, got {}", stats.rounds);
            assert!(
                stats.encoded <= 8 * n,
                "{:?}: touched {} worlds over {} rounds (full-round cost {})",
                style,
                stats.encoded,
                stats.rounds,
                n * stats.rounds
            );
        }
    }

    #[test]
    fn resumed_refinement_is_a_stable_refinement_of_fresh() {
        use crate::kripke::ModelDelta;
        use crate::ModalIndex;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        use rand::SeedableRng;
        for trial in 0..5 {
            let g = generators::gnp(16, 0.2, &mut rng);
            let mut k = Kripke::k_mm(&g);
            for style in [BisimStyle::Plain, BisimStyle::Graded] {
                let prior = refine_fixpoint(&k, style);
                // Remove the first stored edge (both directions), if any.
                let Some((v, &w)) = (0..k.len())
                    .find_map(|v| k.successors_dense(0, v).first().map(|w| (v, w)))
                else {
                    continue;
                };
                let mut delta = ModelDelta::new();
                delta
                    .remove_edge(ModalIndex::Any, v as u32, w)
                    .remove_edge(ModalIndex::Any, w, v as u32);
                let mut patched = k.clone();
                let touched = patched.apply_delta(&delta).unwrap();
                let resumed =
                    refine_fixpoint_from(&patched, style, prior.final_level(), &touched);
                assert!(resumed.is_stable());
                let fresh = refine_fixpoint(&patched, style);
                // Stable means: refines the fresh coarsest partition.
                let res = resumed.final_level();
                let coarse = fresh.final_level();
                for u in 0..k.len() {
                    for x in (u + 1)..k.len() {
                        if res[u] == res[x] {
                            assert_eq!(
                                coarse[u], coarse[x],
                                "trial {trial} {style:?}: resumed merged {u},{x} \
                                 but coarsest separates them"
                            );
                        }
                    }
                }
                k = patched;
            }
        }
    }

    #[test]
    fn resumed_refinement_with_no_touched_worlds_keeps_the_partition() {
        let k = Kripke::k_mm(&generators::path(9));
        let prior = refine_fixpoint(&k, BisimStyle::Plain);
        let resumed = refine_fixpoint_from(&k, BisimStyle::Plain, prior.final_level(), &[]);
        assert!(resumed.is_stable());
        assert_eq!(resumed.final_level(), prior.final_level());
    }

    #[test]
    fn refine_unbounded_reports_stable_and_matches_bounded_n() {
        // Regression: `refine` without a bound must report `is_stable()`
        // and agree with `refine_bounded(_, _, n)` (n rounds always pass
        // the fixpoint).
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        use rand::SeedableRng;
        for _ in 0..5 {
            let g = generators::gnp(10, 0.35, &mut rng);
            let p = PortNumbering::random(&g, &mut rng);
            for k in [Kripke::k_mm(&g), Kripke::k_pp(&g, &p)] {
                for style in [BisimStyle::Plain, BisimStyle::Graded] {
                    let free = refine(&k, style);
                    let bounded = refine_bounded(&k, style, g.len());
                    assert!(free.is_stable());
                    assert!(bounded.is_stable(), "n rounds always reach the fixpoint");
                    assert_eq!(free.final_level(), bounded.final_level());
                    assert_eq!(free.depth(), bounded.depth());
                }
            }
        }
    }
}
