//! Characteristic formulas (Hennessy–Milner): for every world `v` and
//! depth `t` there is a formula `χᵗ_v` whose extension is *exactly* the
//! `t`-step equivalence class of `v`.
//!
//! This makes the connection between bisimulation and modal logic
//! two-sided and executable. [`bisim`](crate::bisim) shows that
//! (g-)bisimilar worlds satisfy the same formulas (Fact 1); this module
//! provides the converse witness: whenever two worlds are *not*
//! `t`-equivalent, `χᵗ` is a concrete formula of modal depth `≤ t` that
//! separates them. Via Theorem 2, `χᵗ_v` compiles to a distributed
//! algorithm that recognises in `t` rounds exactly the nodes whose
//! `t`-round view matches `v`'s.
//!
//! The construction is by induction on `t` over the partition-refinement
//! levels, one formula per *class* (so subtrees are shared):
//!
//! * depth 0: `χ⁰_C = q_d` for the common degree `d` of the class;
//! * depth `t+1`, [`BisimStyle::Plain`]: for each modality `α`, a diamond
//!   `⟨α⟩ χᵗ_D` for every class `D` reachable from the class
//!   representative, plus the box `[α] ⋁_D χᵗ_D` forbidding anything else;
//! * depth `t+1`, [`BisimStyle::Graded`]: exact counts
//!   `⟨α⟩≥m χᵗ_D ∧ ¬⟨α⟩≥m+1 χᵗ_D` per reachable class, plus the same box.
//!
//! # Examples
//!
//! ```
//! use portnum_graph::generators;
//! use portnum_logic::bisim::BisimStyle;
//! use portnum_logic::{characteristic, evaluate, Kripke};
//!
//! // On a star, the centre's depth-1 characteristic formula holds at the
//! // centre and nowhere else.
//! let k = Kripke::k_mm(&generators::star(3));
//! let chars = characteristic(&k, BisimStyle::Plain, 1);
//! let truth = evaluate(&k, chars.formula_for(0, 1))?;
//! assert_eq!(truth, vec![true, false, false, false]);
//! # Ok::<(), portnum_logic::LogicError>(())
//! ```

use crate::bisim::{refine_bounded, BisimClasses, BisimStyle};
use crate::formula::{Formula, ModalIndex};
use crate::kripke::Kripke;

/// Characteristic formulas of a model at every depth `0..=depth`, one per
/// equivalence class per depth (see [`characteristic`] for the
/// construction).
#[derive(Debug, Clone)]
pub struct CharacteristicFormulas {
    style: BisimStyle,
    classes: BisimClasses,
    /// `formulas[t][c]` characterises class `c` of the depth-`t` partition.
    formulas: Vec<Vec<Formula>>,
}

impl CharacteristicFormulas {
    /// The refinement style the formulas characterise.
    pub fn style(&self) -> BisimStyle {
        self.style
    }

    /// The underlying refinement levels.
    pub fn classes(&self) -> &BisimClasses {
        &self.classes
    }

    /// The deepest characterised level.
    pub fn depth(&self) -> usize {
        self.formulas.len() - 1
    }

    /// The formula characterising class `c` of the depth-`t` partition.
    ///
    /// # Panics
    ///
    /// Panics if `t > self.depth()` or `c` is not a class at that level.
    pub fn class_formula(&self, t: usize, c: usize) -> &Formula {
        &self.formulas[t][c]
    }

    /// The formula whose extension is exactly the depth-`t` equivalence
    /// class of `world`.
    ///
    /// # Panics
    ///
    /// Panics if `t > self.depth()` or `world` is out of range.
    pub fn formula_for(&self, world: usize, t: usize) -> &Formula {
        &self.formulas[t][self.classes.class(t, world)]
    }
}

/// Builds the characteristic formulas of `model` for all depths
/// `0..=depth`.
///
/// For every world `v`, world `w`, and `t ≤ depth`:
/// `w ⊨ χᵗ_v` iff `v` and `w` are `t`-step equivalent (in particular
/// `v ⊨ χᵗ_v` always). With [`BisimStyle::Plain`] the formulas are
/// ungraded (ML/MML); with [`BisimStyle::Graded`] they use graded
/// modalities (GML/GMML).
pub fn characteristic(model: &Kripke, style: BisimStyle, depth: usize) -> CharacteristicFormulas {
    let classes = refine_bounded(model, style, depth);
    let indices: Vec<ModalIndex> = model.indices().collect();
    let n = model.len();

    // Depth 0: one degree atom per class.
    let mut formulas: Vec<Vec<Formula>> = Vec::with_capacity(depth + 1);
    formulas.push(class_representatives(classes.level(0), n)
        .into_iter()
        .map(|rep| Formula::prop(model.degree(rep)))
        .collect());

    for t in 1..=depth {
        let reps = class_representatives(classes.level(t), n);
        let prev = &formulas[t - 1];
        let prev_level = classes.level(t - 1);
        let mut level_formulas = Vec::with_capacity(reps.len());
        for rep in reps {
            let mut parts = vec![Formula::prop(model.degree(rep))];
            for &index in &indices {
                // Count successors per previous-level class.
                let mut counts: Vec<usize> = vec![0; prev.len()];
                for &w in model.successors(rep, index) {
                    counts[prev_level[w as usize]] += 1;
                }
                let reachable: Vec<usize> =
                    (0..prev.len()).filter(|&c| counts[c] > 0).collect();
                for &c in &reachable {
                    match style {
                        BisimStyle::Plain => {
                            parts.push(Formula::diamond(index, &prev[c]));
                        }
                        BisimStyle::Graded => {
                            let m = counts[c];
                            parts.push(Formula::diamond_geq(index, m, &prev[c]));
                            parts.push(Formula::diamond_geq(index, m + 1, &prev[c]).not());
                        }
                    }
                }
                // Nothing outside the reachable classes: [α] ⋁_D χ_D.
                let union = Formula::any_of(reachable.iter().map(|&c| prev[c].clone()));
                parts.push(Formula::box_(index, &union));
            }
            level_formulas.push(Formula::all_of(parts));
        }
        formulas.push(level_formulas);
    }

    CharacteristicFormulas { style, classes, formulas }
}

/// Convenience wrapper: the single depth-`t` characteristic formula of one
/// world.
pub fn characteristic_formula(
    model: &Kripke,
    style: BisimStyle,
    world: usize,
    depth: usize,
) -> Formula {
    characteristic(model, style, depth).formula_for(world, depth).clone()
}

/// First member of each class, indexed by class id.
fn class_representatives(level: &[usize], n: usize) -> Vec<usize> {
    let count = level.iter().max().map_or(0, |&m| m + 1);
    let mut reps = vec![usize::MAX; count];
    for v in 0..n {
        if reps[level[v]] == usize::MAX {
            reps[level[v]] = v;
        }
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_packed;
    use portnum_graph::{generators, PortNumbering};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_exact(model: &Kripke, style: BisimStyle, depth: usize) {
        let chars = characteristic(model, style, depth);
        // One plan cache for the whole χ suite: deeper characteristic
        // formulas embed the shallower ones, so the checker recomputes
        // nothing across the (v, t) sweep — and must agree with the
        // recursive reference on every query.
        let mut checker = crate::plan::ModelChecker::new(model);
        for t in 0..=depth {
            for v in 0..model.len() {
                let truth = checker.check(chars.formula_for(v, t)).unwrap();
                assert_eq!(
                    *truth,
                    evaluate_packed(model, chars.formula_for(v, t)).unwrap(),
                    "plan cache vs one-shot plan, χ^{t}_{v}"
                );
                for w in 0..model.len() {
                    assert_eq!(
                        truth.get(w),
                        chars.classes().equivalent_at(t, v, w),
                        "χ^{t}_{v} at {w} (style {style:?})"
                    );
                }
            }
        }
        // The (v, t) sweep re-checks each class formula once per class
        // member and embeds level t − 1 in level t, so the shared cache
        // must resolve most checks without computing anything new.
        let stats = checker.stats();
        assert!(stats.dedup_hits > 0, "{stats:?}");
        assert!(stats.computed < stats.ast_nodes, "{stats:?}");
    }

    #[test]
    fn exact_on_k_mm_of_small_graphs() {
        for g in [
            generators::star(3),
            generators::path(5),
            generators::cycle(6),
            generators::theorem13_witness().0,
        ] {
            let k = Kripke::k_mm(&g);
            assert_exact(&k, BisimStyle::Plain, 3);
            assert_exact(&k, BisimStyle::Graded, 3);
        }
    }

    #[test]
    fn exact_on_port_models() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::figure1_graph();
        let p = PortNumbering::random(&g, &mut rng);
        for k in [Kripke::k_pp(&g, &p), Kripke::k_mp(&g, &p), Kripke::k_pm(&g, &p)] {
            assert_exact(&k, BisimStyle::Plain, 3);
            assert_exact(&k, BisimStyle::Graded, 3);
        }
    }

    #[test]
    fn modal_depth_bounded_by_level() {
        let k = Kripke::k_mm(&generators::path(6));
        let chars = characteristic(&k, BisimStyle::Plain, 4);
        for t in 0..=4 {
            for v in 0..k.len() {
                assert!(chars.formula_for(v, t).modal_depth() <= t);
            }
        }
        // At depth 1 on a path the formula genuinely needs its modality.
        assert_eq!(chars.formula_for(0, 1).modal_depth(), 1);
    }

    #[test]
    fn plain_style_yields_ungraded_formulas() {
        let k = Kripke::k_mm(&generators::theorem13_witness().0);
        let chars = characteristic(&k, BisimStyle::Plain, 3);
        for v in 0..k.len() {
            assert!(chars.formula_for(v, 3).is_ungraded());
        }
        let graded = characteristic(&k, BisimStyle::Graded, 3);
        // The witness graph needs counting: some graded formula is graded.
        assert!((0..k.len()).any(|v| !graded.formula_for(v, 3).is_ungraded()));
    }

    #[test]
    fn characteristic_separates_theorem13_whites_gradedly_only() {
        // The two white nodes are plain-bisimilar but not g-bisimilar: the
        // plain characteristic formula of one holds at the other, the
        // graded one does not.
        let (g, (a, b)) = generators::theorem13_witness();
        let k = Kripke::k_mm(&g);
        let plain = characteristic_formula(&k, BisimStyle::Plain, a, 2);
        let graded = characteristic_formula(&k, BisimStyle::Graded, a, 2);
        let tp = evaluate_packed(&k, &plain).unwrap();
        let tg = evaluate_packed(&k, &graded).unwrap();
        assert!(tp.get(a) && tp.get(b), "plain χ cannot separate the white nodes");
        assert!(tg.get(a) && !tg.get(b), "graded χ separates them");
    }

    #[test]
    fn cross_model_separation_via_disjoint_union() {
        // χ of a star centre, evaluated in a union with a cycle, holds at
        // no cycle node.
        let star = Kripke::k_mm(&generators::star(3));
        let cycle = Kripke::k_mm(&generators::cycle(4));
        let union = star.disjoint_union(&cycle);
        let chi = characteristic_formula(&union, BisimStyle::Plain, 0, 2);
        let truth = evaluate_packed(&union, &chi).unwrap();
        assert!(truth.get(0));
        for w in star.len()..union.len() {
            assert!(!truth.get(w), "cycle node {w} is not 2-equivalent to the centre");
        }
    }

    #[test]
    fn depth_zero_is_degree_atom() {
        let k = Kripke::k_mm(&generators::star(2));
        let chars = characteristic(&k, BisimStyle::Plain, 0);
        assert_eq!(chars.depth(), 0);
        assert_eq!(chars.formula_for(0, 0), &Formula::prop(2));
        assert_eq!(chars.formula_for(1, 0), &Formula::prop(1));
    }
}
