//! The two directions of Theorem 2, as executable compilers.
//!
//! * formula → algorithm ([`compile_sb`], [`compile_mb`], [`compile_set`],
//!   [`compile_multiset`], [`compile_broadcast`], [`compile_vector`]): a
//!   formula of the appropriate logic becomes a distributed algorithm *in
//!   the matching class* that computes the formula's truth value at every
//!   node in at most `md(ψ)` communication rounds (the paper proves
//!   `md(ψ) + 1`; we apply the rectification mentioned after the proof and
//!   stop one round earlier).
//! * algorithm → formula ([`vector_algorithm_to_formulas`],
//!   [`multiset_algorithm_to_formulas`], [`broadcast_algorithm_to_formulas`],
//!   [`mb_algorithm_to_formulas`]): a finite-state algorithm becomes a
//!   formula `ϕ_{1,T}` per Tables 4–5, by enumerating reachable
//!   `(state, degree)` configurations up to the stopping horizon.
//!
//! Round-tripping the two compilers against the model checker and the
//! simulator is the workspace's executable proof of the capture results.

mod to_algorithm;
mod to_formula;

pub use to_algorithm::{
    compile_broadcast, compile_mb, compile_multiset, compile_sb, compile_set, compile_vector,
    Assignment, BroadcastFormulaAlgorithm, MbFormulaAlgorithm, MultisetFormulaAlgorithm,
    SbFormulaAlgorithm, SetFormulaAlgorithm, Truth, VectorFormulaAlgorithm,
};
pub use to_formula::{
    broadcast_algorithm_to_formulas, mb_algorithm_to_formulas, multiset_algorithm_to_formulas,
    vector_algorithm_to_formulas, ToFormulaOptions,
};

use crate::formula::{Formula, FormulaKind, ModalIndex};
use std::collections::HashMap;

/// A hash-consed subformula arena in topological order (children precede
/// parents). Shared by the compiled algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Table {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: usize,
}

/// One subformula with children referenced by arena index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Node {
    Top,
    Bottom,
    Prop(usize),
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Diamond { index: ModalIndex, grade: usize, inner: usize },
}

impl Table {
    pub(crate) fn build(formula: &Formula) -> Table {
        let mut table = Table { nodes: Vec::new(), root: 0 };
        let mut by_ptr: HashMap<*const FormulaKind, usize> = HashMap::new();
        let mut by_key: HashMap<Node, usize> = HashMap::new();
        let root = table.intern(formula, &mut by_ptr, &mut by_key);
        table.root = root;
        table
    }

    fn intern(
        &mut self,
        f: &Formula,
        by_ptr: &mut HashMap<*const FormulaKind, usize>,
        by_key: &mut HashMap<Node, usize>,
    ) -> usize {
        let ptr = f.kind() as *const FormulaKind;
        if let Some(&id) = by_ptr.get(&ptr) {
            return id;
        }
        let key = match f.kind() {
            FormulaKind::Top => Node::Top,
            FormulaKind::Bottom => Node::Bottom,
            FormulaKind::Prop(d) => Node::Prop(*d),
            FormulaKind::Not(a) => Node::Not(self.intern(a, by_ptr, by_key)),
            FormulaKind::And(a, b) => {
                let left = self.intern(a, by_ptr, by_key);
                let right = self.intern(b, by_ptr, by_key);
                Node::And(left, right)
            }
            FormulaKind::Or(a, b) => {
                let left = self.intern(a, by_ptr, by_key);
                let right = self.intern(b, by_ptr, by_key);
                Node::Or(left, right)
            }
            FormulaKind::Diamond { index, grade, inner } => {
                let inner = self.intern(inner, by_ptr, by_key);
                Node::Diamond { index: *index, grade: *grade, inner }
            }
            // Rejected by check_no_fixpoints before any table is built.
            FormulaKind::Var(_) | FormulaKind::Mu { .. } | FormulaKind::Nu { .. } => {
                unreachable!("fixpoints are rejected before subformula interning")
            }
        };
        let id = match by_key.get(&key) {
            Some(&id) => id,
            None => {
                self.nodes.push(key);
                let id = self.nodes.len() - 1;
                by_key.insert(key, id);
                id
            }
        };
        by_ptr.insert(ptr, id);
        id
    }

    /// Distinct diamond subformulas, as `(diamond id, index, grade, inner id)`.
    pub(crate) fn diamonds(&self) -> impl Iterator<Item = (usize, ModalIndex, usize, usize)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(id, node)| match node {
            Node::Diamond { index, grade, inner } => Some((id, *index, *grade, *inner)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_topological_and_dedups() {
        let q = Formula::prop(1);
        let d = Formula::diamond(ModalIndex::Any, &q);
        // q appears twice structurally; shared diamond subformula reused.
        let f = d.and(&d).or(&Formula::prop(1));
        let table = Table::build(&f);
        // Nodes: q1, ⟨⟩q1, and, or  => 4 distinct.
        assert_eq!(table.nodes.len(), 4);
        // Children precede parents.
        for (id, node) in table.nodes.iter().enumerate() {
            let children: Vec<usize> = match node {
                Node::Not(a) => vec![*a],
                Node::And(a, b) | Node::Or(a, b) => vec![*a, *b],
                Node::Diamond { inner, .. } => vec![*inner],
                _ => vec![],
            };
            assert!(children.iter().all(|&c| c < id));
        }
        assert_eq!(table.root, 3);
        assert_eq!(table.diamonds().count(), 1);
    }

    #[test]
    fn structurally_equal_but_unshared_nodes_dedup() {
        let a = Formula::prop(2).and(&Formula::prop(3));
        let b = Formula::prop(2).and(&Formula::prop(3));
        let f = a.or(&b);
        let table = Table::build(&f);
        // q2, q3, and, or => 4 (the two `and`s are structurally identical).
        assert_eq!(table.nodes.len(), 4);
    }
}
