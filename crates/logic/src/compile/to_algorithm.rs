//! Formula → algorithm (Theorem 2, proof parts 1–2).
//!
//! Each node maintains a three-valued assignment `Σ → {0, 1, U}` over the
//! subformula table: the truth values of all subformulas of modal depth
//! `≤ t` are determined after `t` rounds. Messages carry the current truth
//! values of exactly those subformulas the receiving side's diamonds need
//! (the sets `D_j` / `D` of the proof). When the root is determined —
//! after exactly `md(ψ)` rounds — the node stops and outputs it.

use super::{Node, Table};
use crate::error::CompileError;
use crate::formula::{Formula, IndexFamily, ModalIndex};
use portnum_machine::{
    BroadcastAlgorithm, MbAlgorithm, Multiset, MultisetAlgorithm, Payload, SbAlgorithm,
    SetAlgorithm, Status, VectorAlgorithm,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Three-valued truth: the paper's `{0, 1, U}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Truth {
    /// Determined false.
    False,
    /// Determined true.
    True,
    /// Not yet determined (modal depth exceeds elapsed rounds).
    Unknown,
}

impl portnum_machine::MessageSize for Truth {
    fn size_units(&self) -> u64 {
        1
    }
}

impl Truth {
    fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    fn not(self) -> Truth {
        match self {
            Truth::False => Truth::True,
            Truth::True => Truth::False,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// The paper's (δ∧): **no short-circuiting** — the result is `U`
    /// whenever either side is `U`, even if the other side is already
    /// false. This keeps determination times uniform across nodes
    /// (`f(η) ≠ U ⟺ md(η) ≤ t`), which the message protocol relies on.
    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::Unknown, _) | (_, Truth::Unknown) => Truth::Unknown,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::False,
        }
    }

    /// Dual of [`Truth::and`]; likewise non-short-circuiting.
    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::Unknown, _) | (_, Truth::Unknown) => Truth::Unknown,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::True,
        }
    }
}

/// A node's state: one [`Truth`] per subformula, in table order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment(Vec<Truth>);

impl Assignment {
    /// The truth value currently assigned to the root formula.
    pub fn root_value(&self, engine_len: usize) -> Truth {
        self.0[engine_len - 1]
    }
}

/// Shared mechanics of the six compiled-algorithm types.
#[derive(Debug, Clone)]
struct Engine {
    table: Arc<Table>,
    /// For the out-port message families: `j → D_j` (inner ids of diamonds
    /// whose index mentions out-port `j`).
    out_dict: BTreeMap<usize, Vec<usize>>,
    /// For the broadcast families: `D` (inner ids of all diamonds).
    bc_dict: Vec<usize>,
}

impl Engine {
    fn new(formula: &Formula, family: IndexFamily) -> Result<Engine, CompileError> {
        check_family(formula, family)?;
        check_no_fixpoints(formula)?;
        let table = Table::build(formula);
        let mut out_dict: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut bc_dict: Vec<usize> = Vec::new();
        for (_, index, _, inner) in table.diamonds() {
            match index {
                ModalIndex::InOut(_, j) | ModalIndex::Out(j) => {
                    let entry = out_dict.entry(j).or_default();
                    if !entry.contains(&inner) {
                        entry.push(inner);
                    }
                }
                ModalIndex::In(_) | ModalIndex::Any => {
                    if !bc_dict.contains(&inner) {
                        bc_dict.push(inner);
                    }
                }
            }
        }
        Ok(Engine { table: Arc::new(table), out_dict, bc_dict })
    }

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        let mut values: Vec<Truth> = Vec::with_capacity(self.table.nodes.len());
        for node in &self.table.nodes {
            let v = match *node {
                Node::Top => Truth::True,
                Node::Bottom => Truth::False,
                Node::Prop(d) => Truth::from_bool(d == degree),
                Node::Not(a) => values[a].not(),
                Node::And(a, b) => Truth::and(values[a], values[b]),
                Node::Or(a, b) => Truth::or(values[a], values[b]),
                Node::Diamond { grade: 0, .. } => Truth::True,
                Node::Diamond { .. } => Truth::Unknown,
            };
            values.push(v);
        }
        self.finish(Assignment(values))
    }

    fn finish(&self, assignment: Assignment) -> Status<Assignment, bool> {
        match assignment.0[self.table.root] {
            Truth::Unknown => Status::Running(assignment),
            v => Status::Stopped(v == Truth::True),
        }
    }

    /// Message for out-port `j`: the marker `j` plus the current values of
    /// `D_j`, in dictionary order.
    fn out_message(&self, state: &Assignment, j: usize) -> (usize, Vec<Truth>) {
        let values = self
            .out_dict
            .get(&j)
            .map(|ids| ids.iter().map(|&id| state.0[id]).collect())
            .unwrap_or_default();
        (j, values)
    }

    /// Broadcast message: the current values of `D`.
    fn bc_message(&self, state: &Assignment) -> Vec<Truth> {
        self.bc_dict.iter().map(|&id| state.0[id]).collect()
    }

    /// Looks up the transmitted value of subformula `inner` inside a
    /// payload for out-port `j`.
    fn out_value(&self, j: usize, inner: usize, values: &[Truth]) -> Truth {
        let pos = self
            .out_dict
            .get(&j)
            .and_then(|ids| ids.iter().position(|&id| id == inner));
        pos.and_then(|p| values.get(p).copied()).unwrap_or(Truth::False)
    }

    /// Looks up the transmitted value of subformula `inner` inside a
    /// broadcast payload.
    fn bc_value(&self, inner: usize, values: &[Truth]) -> Truth {
        let pos = self.bc_dict.iter().position(|&id| id == inner);
        pos.and_then(|p| values.get(p).copied()).unwrap_or(Truth::False)
    }

    /// One transition: resolve every still-unknown subformula whose
    /// children are determined, evaluating diamonds with `eval_dia`
    /// (called only when the diamond's inner subformula is determined).
    fn step_with(
        &self,
        state: &Assignment,
        mut eval_dia: impl FnMut(ModalIndex, usize, usize) -> Truth,
    ) -> Status<Assignment, bool> {
        let mut next = state.0.clone();
        for (id, node) in self.table.nodes.iter().enumerate() {
            if next[id] != Truth::Unknown {
                continue;
            }
            next[id] = match *node {
                Node::Top | Node::Bottom | Node::Prop(_) => {
                    unreachable!("atoms are determined at initialisation")
                }
                Node::Not(a) => next[a].not(),
                Node::And(a, b) => Truth::and(next[a], next[b]),
                Node::Or(a, b) => Truth::or(next[a], next[b]),
                Node::Diamond { index, grade, inner } => {
                    if state.0[inner] == Truth::Unknown {
                        Truth::Unknown
                    } else {
                        eval_dia(index, grade, inner)
                    }
                }
            };
        }
        self.finish(Assignment(next))
    }
}

fn check_family(formula: &Formula, expected: IndexFamily) -> Result<(), CompileError> {
    for index in formula.indices() {
        if index.family() != expected {
            return Err(CompileError::FamilyMismatch { expected, found: index.family() });
        }
    }
    Ok(())
}

fn check_ungraded(formula: &Formula) -> Result<(), CompileError> {
    // Grade 0 is fine (constant true); grades ≥ 2 need counting.
    fn walk(f: &Formula) -> bool {
        use crate::formula::FormulaKind;
        match f.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => true,
            FormulaKind::Not(a) => walk(a),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => walk(a) && walk(b),
            FormulaKind::Diamond { grade, inner, .. } => *grade <= 1 && walk(inner),
            FormulaKind::Var(_) => true,
            FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => walk(body),
        }
    }
    if walk(formula) {
        Ok(())
    } else {
        Err(CompileError::GradedNotSupported)
    }
}

/// Theorem 2 compiles formulas whose running time is the modal depth; a
/// fixpoint iterates to a model-dependent depth, so `µ`/`ν` anywhere in
/// the formula is a typed [`CompileError::FixpointNotSupported`].
fn check_no_fixpoints(formula: &Formula) -> Result<(), CompileError> {
    fn walk(f: &Formula) -> bool {
        use crate::formula::FormulaKind;
        match f.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => true,
            FormulaKind::Not(a) => walk(a),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => walk(a) && walk(b),
            FormulaKind::Diamond { inner, .. } => walk(inner),
            FormulaKind::Var(_) | FormulaKind::Mu { .. } | FormulaKind::Nu { .. } => false,
        }
    }
    if walk(formula) {
        Ok(())
    } else {
        Err(CompileError::FixpointNotSupported)
    }
}

macro_rules! compiled_common {
    ($name:ident) => {
        impl $name {
            /// The compiled formula's modal depth — the exact number of
            /// communication rounds the algorithm runs.
            pub fn rounds(&self) -> usize {
                self.depth
            }
        }
    };
}

/// Theorem 2(b), first half: MML over `[Δ]×[Δ]` compiled into class
/// `Vector`. Run it on `(G, p)`; the output at node `v` is
/// `K₊,₊(G,p), v ⊨ ψ`.
#[derive(Debug, Clone)]
pub struct VectorFormulaAlgorithm {
    engine: Engine,
    depth: usize,
}
compiled_common!(VectorFormulaAlgorithm);

/// Compiles an MML/GMML formula over indices `(i, j)` for class `Vector`.
///
/// # Errors
///
/// [`CompileError::FamilyMismatch`] if the formula mentions indices outside
/// `[Δ]×[Δ]`.
pub fn compile_vector(formula: &Formula) -> Result<VectorFormulaAlgorithm, CompileError> {
    Ok(VectorFormulaAlgorithm {
        engine: Engine::new(formula, IndexFamily::InOut)?,
        depth: formula.modal_depth(),
    })
}

impl VectorAlgorithm for VectorFormulaAlgorithm {
    type State = Assignment;
    type Msg = (usize, Vec<Truth>);
    type Output = bool;

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        self.engine.init(degree)
    }

    fn message(&self, state: &Assignment, port: usize) -> (usize, Vec<Truth>) {
        self.engine.out_message(state, port)
    }

    fn step(
        &self,
        state: &Assignment,
        received: &[Payload<(usize, Vec<Truth>)>],
    ) -> Status<Assignment, bool> {
        self.engine.step_with(state, |index, grade, inner| {
            let ModalIndex::InOut(i, j) = index else {
                unreachable!("family checked at compile time")
            };
            let hit = match received.get(i) {
                Some(Payload::Data((jj, values))) if *jj == j => {
                    self.engine.out_value(j, inner, values) == Truth::True
                }
                _ => false,
            };
            Truth::from_bool(usize::from(hit) >= grade)
        })
    }
}

/// Theorem 2(c): GMML over `{*}×[Δ]` compiled into class `Multiset`.
#[derive(Debug, Clone)]
pub struct MultisetFormulaAlgorithm {
    engine: Engine,
    depth: usize,
}
compiled_common!(MultisetFormulaAlgorithm);

/// Compiles a GMML formula over indices `(*, j)` for class `Multiset`.
///
/// # Errors
///
/// [`CompileError::FamilyMismatch`] on indices outside `{*}×[Δ]`.
pub fn compile_multiset(formula: &Formula) -> Result<MultisetFormulaAlgorithm, CompileError> {
    Ok(MultisetFormulaAlgorithm {
        engine: Engine::new(formula, IndexFamily::Out)?,
        depth: formula.modal_depth(),
    })
}

impl MultisetAlgorithm for MultisetFormulaAlgorithm {
    type State = Assignment;
    type Msg = (usize, Vec<Truth>);
    type Output = bool;

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        self.engine.init(degree)
    }

    fn message(&self, state: &Assignment, port: usize) -> (usize, Vec<Truth>) {
        self.engine.out_message(state, port)
    }

    fn step(
        &self,
        state: &Assignment,
        received: &Multiset<Payload<(usize, Vec<Truth>)>>,
    ) -> Status<Assignment, bool> {
        self.engine.step_with(state, |index, grade, inner| {
            let ModalIndex::Out(j) = index else {
                unreachable!("family checked at compile time")
            };
            let count: usize = received
                .counts()
                .filter_map(|(payload, c)| match payload {
                    Payload::Data((jj, values))
                        if *jj == j
                            && self.engine.out_value(j, inner, values) == Truth::True =>
                    {
                        Some(c)
                    }
                    _ => None,
                })
                .sum();
            Truth::from_bool(count >= grade)
        })
    }
}

/// Theorem 2(d): MML over `{*}×[Δ]` compiled into class `Set`.
#[derive(Debug, Clone)]
pub struct SetFormulaAlgorithm {
    engine: Engine,
    depth: usize,
}
compiled_common!(SetFormulaAlgorithm);

/// Compiles an ungraded MML formula over indices `(*, j)` for class `Set`.
///
/// # Errors
///
/// [`CompileError::FamilyMismatch`] on wrong indices;
/// [`CompileError::GradedNotSupported`] if any grade exceeds 1.
pub fn compile_set(formula: &Formula) -> Result<SetFormulaAlgorithm, CompileError> {
    check_ungraded(formula)?;
    Ok(SetFormulaAlgorithm {
        engine: Engine::new(formula, IndexFamily::Out)?,
        depth: formula.modal_depth(),
    })
}

impl SetAlgorithm for SetFormulaAlgorithm {
    type State = Assignment;
    type Msg = (usize, Vec<Truth>);
    type Output = bool;

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        self.engine.init(degree)
    }

    fn message(&self, state: &Assignment, port: usize) -> (usize, Vec<Truth>) {
        self.engine.out_message(state, port)
    }

    fn step(
        &self,
        state: &Assignment,
        received: &BTreeSet<Payload<(usize, Vec<Truth>)>>,
    ) -> Status<Assignment, bool> {
        self.engine.step_with(state, |index, grade, inner| {
            let ModalIndex::Out(j) = index else {
                unreachable!("family checked at compile time")
            };
            debug_assert!(grade == 1, "grades checked at compile time");
            let hit = received.iter().any(|payload| match payload {
                Payload::Data((jj, values)) => {
                    *jj == j && self.engine.out_value(j, inner, values) == Truth::True
                }
                Payload::Silent => false,
            });
            Truth::from_bool(hit)
        })
    }
}

/// Theorem 2(e): MML over `[Δ]×{*}` compiled into class `Broadcast`.
#[derive(Debug, Clone)]
pub struct BroadcastFormulaAlgorithm {
    engine: Engine,
    depth: usize,
}
compiled_common!(BroadcastFormulaAlgorithm);

/// Compiles an MML/GMML formula over indices `(i, *)` for class
/// `Broadcast`.
///
/// # Errors
///
/// [`CompileError::FamilyMismatch`] on indices outside `[Δ]×{*}`.
pub fn compile_broadcast(formula: &Formula) -> Result<BroadcastFormulaAlgorithm, CompileError> {
    Ok(BroadcastFormulaAlgorithm {
        engine: Engine::new(formula, IndexFamily::In)?,
        depth: formula.modal_depth(),
    })
}

impl BroadcastAlgorithm for BroadcastFormulaAlgorithm {
    type State = Assignment;
    type Msg = Vec<Truth>;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        self.engine.init(degree)
    }

    fn broadcast(&self, state: &Assignment) -> Vec<Truth> {
        self.engine.bc_message(state)
    }

    fn step(
        &self,
        state: &Assignment,
        received: &[Payload<Vec<Truth>>],
    ) -> Status<Assignment, bool> {
        self.engine.step_with(state, |index, grade, inner| {
            let ModalIndex::In(i) = index else {
                unreachable!("family checked at compile time")
            };
            let hit = match received.get(i) {
                Some(Payload::Data(values)) => {
                    self.engine.bc_value(inner, values) == Truth::True
                }
                _ => false,
            };
            Truth::from_bool(usize::from(hit) >= grade)
        })
    }
}

/// Theorem 2(f): GML over `{(*,*)}` compiled into `Multiset ∩ Broadcast`.
#[derive(Debug, Clone)]
pub struct MbFormulaAlgorithm {
    engine: Engine,
    depth: usize,
}
compiled_common!(MbFormulaAlgorithm);

/// Compiles a GML formula over the index `(*, *)` for class `MB`.
///
/// # Errors
///
/// [`CompileError::FamilyMismatch`] on indices other than `(*,*)`.
pub fn compile_mb(formula: &Formula) -> Result<MbFormulaAlgorithm, CompileError> {
    Ok(MbFormulaAlgorithm {
        engine: Engine::new(formula, IndexFamily::Any)?,
        depth: formula.modal_depth(),
    })
}

impl MbAlgorithm for MbFormulaAlgorithm {
    type State = Assignment;
    type Msg = Vec<Truth>;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        self.engine.init(degree)
    }

    fn broadcast(&self, state: &Assignment) -> Vec<Truth> {
        self.engine.bc_message(state)
    }

    fn step(
        &self,
        state: &Assignment,
        received: &Multiset<Payload<Vec<Truth>>>,
    ) -> Status<Assignment, bool> {
        self.engine.step_with(state, |index, grade, inner| {
            debug_assert_eq!(index, ModalIndex::Any, "family checked at compile time");
            let count: usize = received
                .counts()
                .filter_map(|(payload, c)| match payload {
                    Payload::Data(values)
                        if self.engine.bc_value(inner, values) == Truth::True =>
                    {
                        Some(c)
                    }
                    _ => None,
                })
                .sum();
            Truth::from_bool(count >= grade)
        })
    }
}

/// Theorem 2(g): ML over `{(*,*)}` compiled into `Set ∩ Broadcast`.
#[derive(Debug, Clone)]
pub struct SbFormulaAlgorithm {
    engine: Engine,
    depth: usize,
}
compiled_common!(SbFormulaAlgorithm);

/// Compiles an ungraded ML formula over the index `(*,*)` for class `SB`.
///
/// # Errors
///
/// [`CompileError::FamilyMismatch`] on wrong indices;
/// [`CompileError::GradedNotSupported`] if any grade exceeds 1.
pub fn compile_sb(formula: &Formula) -> Result<SbFormulaAlgorithm, CompileError> {
    check_ungraded(formula)?;
    Ok(SbFormulaAlgorithm {
        engine: Engine::new(formula, IndexFamily::Any)?,
        depth: formula.modal_depth(),
    })
}

impl SbAlgorithm for SbFormulaAlgorithm {
    type State = Assignment;
    type Msg = Vec<Truth>;
    type Output = bool;

    fn init(&self, degree: usize) -> Status<Assignment, bool> {
        self.engine.init(degree)
    }

    fn broadcast(&self, state: &Assignment) -> Vec<Truth> {
        self.engine.bc_message(state)
    }

    fn step(
        &self,
        state: &Assignment,
        received: &BTreeSet<Payload<Vec<Truth>>>,
    ) -> Status<Assignment, bool> {
        self.engine.step_with(state, |index, grade, inner| {
            debug_assert_eq!(index, ModalIndex::Any, "family checked at compile time");
            debug_assert!(grade == 1, "grades checked at compile time");
            let hit = received.iter().any(|payload| match payload {
                Payload::Data(values) => self.engine.bc_value(inner, values) == Truth::True,
                Payload::Silent => false,
            });
            Truth::from_bool(hit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::kripke::Kripke;
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::{
        BroadcastAsVector, MbAsVector, MultisetAsVector, SbAsVector, SetAsVector,
    };
    use portnum_machine::Simulator;

    #[test]
    fn propositional_formula_needs_no_rounds() {
        let f = Formula::prop(2).or(&Formula::prop(1).not());
        let algo = compile_mb(&f).unwrap();
        let g = generators::star(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&MbAsVector(algo), &g, &p).unwrap();
        assert_eq!(run.rounds(), 0);
        let k = Kripke::k_mm(&g);
        assert_eq!(run.outputs().to_vec(), evaluate(&k, &f).unwrap());
    }

    #[test]
    fn sb_depth_one_runs_one_round() {
        // "some neighbour has degree 3"
        let f = Formula::diamond(ModalIndex::Any, &Formula::prop(3));
        let algo = compile_sb(&f).unwrap();
        assert_eq!(algo.rounds(), 1);
        let g = generators::star(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&SbAsVector(algo), &g, &p).unwrap();
        assert_eq!(run.rounds(), 1);
        assert_eq!(run.outputs(), &[false, true, true, true]);
    }

    #[test]
    fn mb_counts_neighbours() {
        // "at least 2 neighbours have odd degree 1"
        let f = Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(1));
        let algo = compile_mb(&f).unwrap();
        let g = generators::star(4);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&MbAsVector(algo), &g, &p).unwrap();
        assert_eq!(run.outputs(), &[true, false, false, false, false]);
        let k = Kripke::k_mm(&g);
        assert_eq!(run.outputs().to_vec(), evaluate(&k, &f).unwrap());
    }

    #[test]
    fn nested_formula_runs_md_rounds() {
        // md = 3: ⟨⟩⟨⟩⟨⟩ q1
        let mut f = Formula::prop(1);
        for _ in 0..3 {
            f = Formula::diamond(ModalIndex::Any, &f);
        }
        let algo = compile_sb(&f).unwrap();
        let g = generators::path(6);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&SbAsVector(algo), &g, &p).unwrap();
        assert_eq!(run.rounds(), 3);
        let k = Kripke::k_mm(&g);
        assert_eq!(run.outputs().to_vec(), evaluate(&k, &f).unwrap());
    }

    #[test]
    fn vector_formula_reads_ports() {
        // ⟨(0,0)⟩ q2 on a path: "the node feeding my in-port 0 from its
        // out-port 0 has degree 2".
        let f = Formula::diamond(ModalIndex::InOut(0, 0), &Formula::prop(2));
        let algo = compile_vector(&f).unwrap();
        let g = generators::path(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&algo, &g, &p).unwrap();
        let k = Kripke::k_pp(&g, &p);
        assert_eq!(run.outputs().to_vec(), evaluate(&k, &f).unwrap());
    }

    #[test]
    fn all_six_classes_agree_with_model_checking() {
        // A depth-2 formula evaluated through every compiled class on its
        // matching model: each must equal the model checker.
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let sim = Simulator::new();

        // (*,*): ⟨⟩(q2 ∧ ⟨⟩q3)
        let f_any = Formula::diamond(
            ModalIndex::Any,
            &Formula::prop(2).and(&Formula::diamond(ModalIndex::Any, &Formula::prop(3))),
        );
        let k_mm = Kripke::k_mm(&g);
        let expected = evaluate(&k_mm, &f_any).unwrap();
        let run = sim.run(&SbAsVector(compile_sb(&f_any).unwrap()), &g, &p).unwrap();
        assert_eq!(run.outputs().to_vec(), expected, "SB");
        let run = sim.run(&MbAsVector(compile_mb(&f_any).unwrap()), &g, &p).unwrap();
        assert_eq!(run.outputs().to_vec(), expected, "MB");

        // (*,j): ⟨(*,0)⟩⟨(*,1)⟩ q3
        let f_out = Formula::diamond(
            ModalIndex::Out(0),
            &Formula::diamond(ModalIndex::Out(1), &Formula::prop(3)),
        );
        let k_mp = Kripke::k_mp(&g, &p);
        let expected = evaluate(&k_mp, &f_out).unwrap();
        let run = sim.run(&SetAsVector(compile_set(&f_out).unwrap()), &g, &p).unwrap();
        assert_eq!(run.outputs().to_vec(), expected, "Set");
        let run =
            sim.run(&MultisetAsVector(compile_multiset(&f_out).unwrap()), &g, &p).unwrap();
        assert_eq!(run.outputs().to_vec(), expected, "Multiset");

        // (i,*): ⟨(0,*)⟩ ¬⟨(1,*)⟩ q1
        let f_in = Formula::diamond(
            ModalIndex::In(0),
            &Formula::diamond(ModalIndex::In(1), &Formula::prop(1)).not(),
        );
        let k_pm = Kripke::k_pm(&g, &p);
        let expected = evaluate(&k_pm, &f_in).unwrap();
        let run =
            sim.run(&BroadcastAsVector(compile_broadcast(&f_in).unwrap()), &g, &p).unwrap();
        assert_eq!(run.outputs().to_vec(), expected, "Broadcast");

        // (i,j): ⟨(0,1)⟩ q2
        let f_io = Formula::diamond(ModalIndex::InOut(0, 1), &Formula::prop(2));
        let k_pp = Kripke::k_pp(&g, &p);
        let expected = evaluate(&k_pp, &f_io).unwrap();
        let run = sim.run(&compile_vector(&f_io).unwrap(), &g, &p).unwrap();
        assert_eq!(run.outputs().to_vec(), expected, "Vector");
    }

    #[test]
    fn family_and_grade_validation() {
        let wrong = Formula::diamond(ModalIndex::Out(0), &Formula::top());
        assert!(matches!(
            compile_vector(&wrong),
            Err(CompileError::FamilyMismatch { .. })
        ));
        let graded = Formula::diamond_geq(ModalIndex::Any, 2, &Formula::top());
        assert!(matches!(compile_sb(&graded), Err(CompileError::GradedNotSupported)));
        assert!(compile_mb(&graded).is_ok());
        let graded_out = Formula::diamond_geq(ModalIndex::Out(0), 3, &Formula::top());
        assert!(matches!(compile_set(&graded_out), Err(CompileError::GradedNotSupported)));
        assert!(compile_multiset(&graded_out).is_ok());
    }

    #[test]
    fn grade_zero_is_constant_true() {
        let f = Formula::diamond_geq(ModalIndex::Any, 0, &Formula::prop(7));
        let algo = compile_sb(&f).unwrap();
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        let run = Simulator::new().run(&SbAsVector(algo), &g, &p).unwrap();
        assert_eq!(run.rounds(), 0);
        assert_eq!(run.outputs(), &[true, true, true]);
    }
}
