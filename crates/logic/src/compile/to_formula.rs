//! Algorithm → formula (Theorem 2, proof parts 3–4; Tables 4–5).
//!
//! Given a finite-state algorithm, enumerate the reachable
//! `(status, degree)` configurations round by round, building for each a
//! formula `ϕ_{z,t}` ("the node is in state `z` at time `t`"), for each
//! message a formula `ϑ_{m,j,t}` ("the node sends `m` to port `j` in round
//! `t`"), and translating message reception into diamonds
//! `χ = ⟨(i,j)⟩ϑ`. The output formulas are the `ϕ_{y,T}` for the stopping
//! states `y`.
//!
//! The construction is exponential in the degree bound (every reception
//! combination is enumerated), exactly as in the paper, where only the
//! *finiteness* of the formula families `Ψ_t, Θ_t, Ξ_t` matters. Guards
//! abort cleanly when the configuration space explodes.

use crate::error::CompileError;
use crate::formula::{Formula, ModalIndex};
use portnum_machine::{
    BroadcastAlgorithm, MbAlgorithm, Multiset, MultisetAlgorithm, Payload, Status,
    VectorAlgorithm,
};
use std::collections::HashMap;
use std::hash::Hash;

/// Tuning knobs for the algorithm-to-formula construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToFormulaOptions {
    /// Degree bound `Δ`: the produced formulas are valid on `F(Δ)`.
    pub max_degree: usize,
    /// Horizon `T`: every reachable configuration must stop within `T`
    /// rounds.
    pub horizon: usize,
    /// Abort if more than this many configurations become reachable.
    pub max_configs: usize,
    /// Abort if a single transition would enumerate more than this many
    /// reception combinations.
    pub max_combos: usize,
}

impl Default for ToFormulaOptions {
    fn default() -> Self {
        ToFormulaOptions { max_degree: 3, horizon: 16, max_configs: 4096, max_combos: 65536 }
    }
}

fn accumulate<K: Eq + Hash>(map: &mut HashMap<K, Formula>, key: K, f: Formula) {
    map.entry(key).and_modify(|g| *g = g.or(&f)).or_insert(f);
}

/// Compiles a finite-state [`VectorAlgorithm`] into MML formulas over
/// indices `(i, j)`: for each output `o`, a formula `ψ_o` such that on any
/// `(G, p)` with `G ∈ F(Δ)`, `‖ψ_o‖_{K₊,₊(G,p)} = { v : output(v) = o }`.
///
/// # Errors
///
/// * [`CompileError::NotStoppedByHorizon`] if some reachable configuration
///   is still running at the horizon;
/// * [`CompileError::TooManyConfigs`] if a guard trips.
pub fn vector_algorithm_to_formulas<A>(
    algo: &A,
    opts: &ToFormulaOptions,
) -> Result<Vec<(A::Output, Formula)>, CompileError>
where
    A: VectorAlgorithm,
    A::State: Eq + Hash,
    A::Output: Eq + Hash,
{
    type Config<S, O> = (Status<S, O>, usize);
    let mut current: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
    for d in 0..=opts.max_degree {
        accumulate(&mut current, (algo.init(d), d), Formula::prop(d));
    }

    for _t in 1..=opts.horizon {
        if current.keys().all(|(status, _)| status.is_stopped()) {
            break;
        }
        // ϑ_{m,j,t}: who sends m to out-port j this round.
        let mut theta: HashMap<(usize, A::Msg), Formula> = HashMap::new();
        let mut silent_parts: Vec<Formula> = Vec::new();
        for ((status, d), phi) in &current {
            match status {
                Status::Running(s) => {
                    for j in 0..*d {
                        accumulate(&mut theta, (j, algo.message(s, j)), phi.clone());
                    }
                }
                Status::Stopped(_) => silent_parts.push(phi.clone()),
            }
        }
        let silent = Formula::any_of(silent_parts);

        // Distinct payload options, with θ-formulas grouped by message.
        let mut by_msg: HashMap<A::Msg, Vec<(usize, Formula)>> = HashMap::new();
        for ((j, m), f) in &theta {
            by_msg.entry(m.clone()).or_default().push((*j, f.clone()));
        }
        let mut options: Vec<Payload<A::Msg>> =
            by_msg.keys().cloned().map(Payload::Data).collect();
        options.sort();
        options.push(Payload::Silent);

        // pred(i, option): "in-port i carries this payload this round".
        let pred = |i: usize, option: &Payload<A::Msg>| -> Formula {
            match option {
                Payload::Data(m) => Formula::any_of(by_msg[m].iter().map(|(j, f)| {
                    Formula::diamond(ModalIndex::InOut(i, *j), f)
                })),
                Payload::Silent => Formula::any_of(
                    (0..opts.max_degree)
                        .map(|j| Formula::diamond(ModalIndex::InOut(i, j), &silent)),
                ),
            }
        };

        let mut next: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
        for ((status, d), phi) in &current {
            match status {
                Status::Stopped(_) => {
                    accumulate(&mut next, (status.clone(), *d), phi.clone())
                }
                Status::Running(s) => {
                    let combos = options.len().checked_pow(*d as u32);
                    if combos.is_none_or(|c| c > opts.max_combos) {
                        return Err(CompileError::TooManyConfigs { limit: opts.max_combos });
                    }
                    let mut reception = vec![Payload::<A::Msg>::Silent; *d];
                    let mut digits = vec![0usize; *d];
                    loop {
                        for (i, &digit) in digits.iter().enumerate() {
                            reception[i] = options[digit].clone();
                        }
                        let next_status = algo.step(s, &reception);
                        let guard = Formula::all_of(
                            (0..*d).map(|i| pred(i, &options[digits[i]])),
                        );
                        accumulate(&mut next, (next_status, *d), phi.and(&guard));
                        // Increment the base-|options| counter.
                        let mut pos = 0;
                        loop {
                            if pos == *d {
                                break;
                            }
                            digits[pos] += 1;
                            if digits[pos] < options.len() {
                                break;
                            }
                            digits[pos] = 0;
                            pos += 1;
                        }
                        if pos == *d {
                            break;
                        }
                    }
                }
            }
        }
        if next.len() > opts.max_configs {
            return Err(CompileError::TooManyConfigs { limit: opts.max_configs });
        }
        current = next;
    }

    collect_outputs(current, opts.horizon)
}

/// Compiles a finite-state [`MbAlgorithm`] into GML formulas over the index
/// `(*,*)`: for each output `o`, a formula `ψ_o` with
/// `‖ψ_o‖_{K₋,₋(G)} = { v : output(v) = o }` for `G ∈ F(Δ)` (any port
/// numbering — `MB` algorithms cannot see it).
///
/// # Errors
///
/// See [`vector_algorithm_to_formulas`].
pub fn mb_algorithm_to_formulas<A>(
    algo: &A,
    opts: &ToFormulaOptions,
) -> Result<Vec<(A::Output, Formula)>, CompileError>
where
    A: MbAlgorithm,
    A::State: Eq + Hash,
    A::Output: Eq + Hash,
{
    type Config<S, O> = (Status<S, O>, usize);
    let mut current: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
    for d in 0..=opts.max_degree {
        accumulate(&mut current, (algo.init(d), d), Formula::prop(d));
    }

    for _t in 1..=opts.horizon {
        if current.keys().all(|(status, _)| status.is_stopped()) {
            break;
        }
        // ϑ_{m,t}: who broadcasts m this round.
        let mut theta: HashMap<A::Msg, Formula> = HashMap::new();
        let mut silent_parts: Vec<Formula> = Vec::new();
        for ((status, _d), phi) in &current {
            match status {
                Status::Running(s) => accumulate(&mut theta, algo.broadcast(s), phi.clone()),
                Status::Stopped(_) => silent_parts.push(phi.clone()),
            }
        }
        let silent = Formula::any_of(silent_parts);
        let mut options: Vec<(Payload<A::Msg>, Formula)> = theta
            .iter()
            .map(|(m, f)| (Payload::Data(m.clone()), f.clone()))
            .collect();
        options.sort_by(|a, b| a.0.cmp(&b.0));
        options.push((Payload::Silent, silent));

        // "exactly c neighbours satisfy θ".
        let exact = |theta: &Formula, c: usize| -> Formula {
            let at_least = if c == 0 {
                Formula::top()
            } else {
                Formula::diamond_geq(ModalIndex::Any, c, theta)
            };
            at_least.and(&Formula::diamond_geq(ModalIndex::Any, c + 1, theta).not())
        };

        let mut next: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
        for ((status, d), phi) in &current {
            match status {
                Status::Stopped(_) => {
                    accumulate(&mut next, (status.clone(), *d), phi.clone())
                }
                Status::Running(s) => {
                    // Enumerate multisets: counts per option summing to d.
                    let mut counts = vec![0usize; options.len()];
                    let mut emitted = 0usize;
                    enumerate_counts(
                        &mut counts,
                        0,
                        *d,
                        &mut emitted,
                        opts.max_combos,
                        &mut |counts| {
                            let mut reception: Multiset<Payload<A::Msg>> = Multiset::new();
                            for (o, &c) in options.iter().zip(counts.iter()) {
                                reception.insert_n(o.0.clone(), c);
                            }
                            let next_status = algo.step(s, &reception);
                            let guard = Formula::all_of(
                                options
                                    .iter()
                                    .zip(counts.iter())
                                    .map(|((_, th), &c)| exact(th, c)),
                            );
                            accumulate(&mut next, (next_status, *d), phi.and(&guard));
                        },
                    )?;
                }
            }
        }
        if next.len() > opts.max_configs {
            return Err(CompileError::TooManyConfigs { limit: opts.max_configs });
        }
        current = next;
    }

    collect_outputs(current, opts.horizon)
}

/// Compiles a finite-state [`MultisetAlgorithm`] into GMML formulas over
/// indices `(*, j)` (Theorem 2, proof part 4, case (c)): for each output
/// `o`, a formula `ψ_o` with `‖ψ_o‖_{K₋,₊(G,p)} = { v : output(v) = o }`
/// for every `G ∈ F(Δ)` and every port numbering `p`.
///
/// Senders are counted per out-port: the formulas
/// `χ^k_{m,j,t} = ⟨(*,j)⟩≥k ϑ_{m,j,t}` say that at least `k` neighbours
/// transmitting from their out-port `j` sent `m`; exact counts per
/// `(m, j)` option determine the reception multiset.
///
/// # Errors
///
/// See [`vector_algorithm_to_formulas`].
pub fn multiset_algorithm_to_formulas<A>(
    algo: &A,
    opts: &ToFormulaOptions,
) -> Result<Vec<(A::Output, Formula)>, CompileError>
where
    A: MultisetAlgorithm,
    A::State: Eq + Hash,
    A::Output: Eq + Hash,
{
    type Config<S, O> = (Status<S, O>, usize);
    let mut current: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
    for d in 0..=opts.max_degree {
        accumulate(&mut current, (algo.init(d), d), Formula::prop(d));
    }

    for _t in 1..=opts.horizon {
        if current.keys().all(|(status, _)| status.is_stopped()) {
            break;
        }
        // ϑ_{m,j,t}: who sends m to out-port j this round.
        let mut theta: HashMap<(usize, A::Msg), Formula> = HashMap::new();
        let mut silent_parts: Vec<Formula> = Vec::new();
        for ((status, d), phi) in &current {
            match status {
                Status::Running(s) => {
                    for j in 0..*d {
                        accumulate(&mut theta, (j, algo.message(s, j)), phi.clone());
                    }
                }
                Status::Stopped(_) => silent_parts.push(phi.clone()),
            }
        }
        let silent = Formula::any_of(silent_parts);

        // Options: per out-port j, each message sent to j by someone, plus
        // "the neighbour on out-port j has stopped".
        let mut options: Vec<(usize, Payload<A::Msg>, Formula)> = theta
            .iter()
            .map(|((j, m), f)| (*j, Payload::Data(m.clone()), f.clone()))
            .collect();
        options.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        for j in 0..opts.max_degree {
            options.push((j, Payload::Silent, silent.clone()));
        }

        // "exactly c of my out-port-j neighbours satisfy θ".
        let exact = |j: usize, th: &Formula, c: usize| -> Formula {
            let at_least = if c == 0 {
                Formula::top()
            } else {
                Formula::diamond_geq(ModalIndex::Out(j), c, th)
            };
            at_least.and(&Formula::diamond_geq(ModalIndex::Out(j), c + 1, th).not())
        };

        let mut next: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
        for ((status, d), phi) in &current {
            match status {
                Status::Stopped(_) => {
                    accumulate(&mut next, (status.clone(), *d), phi.clone())
                }
                Status::Running(s) => {
                    let mut counts = vec![0usize; options.len()];
                    let mut emitted = 0usize;
                    enumerate_counts(
                        &mut counts,
                        0,
                        *d,
                        &mut emitted,
                        opts.max_combos,
                        &mut |counts| {
                            let mut reception: Multiset<Payload<A::Msg>> = Multiset::new();
                            for ((_, payload, _), &c) in options.iter().zip(counts.iter()) {
                                reception.insert_n(payload.clone(), c);
                            }
                            let next_status = algo.step(s, &reception);
                            let guard = Formula::all_of(
                                options
                                    .iter()
                                    .zip(counts.iter())
                                    .map(|((j, _, th), &c)| exact(*j, th, c)),
                            );
                            accumulate(&mut next, (next_status, *d), phi.and(&guard));
                        },
                    )?;
                }
            }
        }
        if next.len() > opts.max_configs {
            return Err(CompileError::TooManyConfigs { limit: opts.max_configs });
        }
        current = next;
    }

    collect_outputs(current, opts.horizon)
}

/// Compiles a finite-state [`BroadcastAlgorithm`] into MML formulas over
/// indices `(i, *)` (Theorem 2, proof part 4, case (e)): for each output
/// `o`, a formula `ψ_o` with `‖ψ_o‖_{K₊,₋(G,p)} = { v : output(v) = o }`
/// for every `G ∈ F(Δ)` and every port numbering `p`.
///
/// Receptions are resolved per in-port: `χ_{m,i,t} = ⟨(i,*)⟩ ϑ_{m,t}` says
/// that the (unique) neighbour feeding in-port `i` broadcast `m`.
///
/// # Errors
///
/// See [`vector_algorithm_to_formulas`].
pub fn broadcast_algorithm_to_formulas<A>(
    algo: &A,
    opts: &ToFormulaOptions,
) -> Result<Vec<(A::Output, Formula)>, CompileError>
where
    A: BroadcastAlgorithm,
    A::State: Eq + Hash,
    A::Output: Eq + Hash,
{
    type Config<S, O> = (Status<S, O>, usize);
    let mut current: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
    for d in 0..=opts.max_degree {
        accumulate(&mut current, (algo.init(d), d), Formula::prop(d));
    }

    for _t in 1..=opts.horizon {
        if current.keys().all(|(status, _)| status.is_stopped()) {
            break;
        }
        // ϑ_{m,t}: who broadcasts m this round.
        let mut theta: HashMap<A::Msg, Formula> = HashMap::new();
        let mut silent_parts: Vec<Formula> = Vec::new();
        for ((status, _d), phi) in &current {
            match status {
                Status::Running(s) => accumulate(&mut theta, algo.broadcast(s), phi.clone()),
                Status::Stopped(_) => silent_parts.push(phi.clone()),
            }
        }
        let silent = Formula::any_of(silent_parts);
        let mut options: Vec<(Payload<A::Msg>, Formula)> = theta
            .iter()
            .map(|(m, f)| (Payload::Data(m.clone()), f.clone()))
            .collect();
        options.sort_by(|a, b| a.0.cmp(&b.0));
        options.push((Payload::Silent, silent));

        // pred(i, option): "in-port i carries this payload this round".
        let pred = |i: usize, option: &(Payload<A::Msg>, Formula)| -> Formula {
            Formula::diamond(ModalIndex::In(i), &option.1)
        };

        let mut next: HashMap<Config<A::State, A::Output>, Formula> = HashMap::new();
        for ((status, d), phi) in &current {
            match status {
                Status::Stopped(_) => {
                    accumulate(&mut next, (status.clone(), *d), phi.clone())
                }
                Status::Running(s) => {
                    let combos = options.len().checked_pow(*d as u32);
                    if combos.is_none_or(|c| c > opts.max_combos) {
                        return Err(CompileError::TooManyConfigs { limit: opts.max_combos });
                    }
                    let mut reception = vec![Payload::<A::Msg>::Silent; *d];
                    let mut digits = vec![0usize; *d];
                    loop {
                        for (i, &digit) in digits.iter().enumerate() {
                            reception[i] = options[digit].0.clone();
                        }
                        let next_status = algo.step(s, &reception);
                        let guard = Formula::all_of(
                            (0..*d).map(|i| pred(i, &options[digits[i]])),
                        );
                        accumulate(&mut next, (next_status, *d), phi.and(&guard));
                        let mut pos = 0;
                        loop {
                            if pos == *d {
                                break;
                            }
                            digits[pos] += 1;
                            if digits[pos] < options.len() {
                                break;
                            }
                            digits[pos] = 0;
                            pos += 1;
                        }
                        if pos == *d {
                            break;
                        }
                    }
                }
            }
        }
        if next.len() > opts.max_configs {
            return Err(CompileError::TooManyConfigs { limit: opts.max_configs });
        }
        current = next;
    }

    collect_outputs(current, opts.horizon)
}

/// Recursively enumerates all count vectors over `counts[from..]` summing
/// to `remaining`, invoking `emit` for each complete vector.
fn enumerate_counts(
    counts: &mut Vec<usize>,
    from: usize,
    remaining: usize,
    emitted: &mut usize,
    max_combos: usize,
    emit: &mut impl FnMut(&[usize]),
) -> Result<(), CompileError> {
    if from + 1 == counts.len() {
        counts[from] = remaining;
        *emitted += 1;
        if *emitted > max_combos {
            return Err(CompileError::TooManyConfigs { limit: max_combos });
        }
        emit(counts);
        return Ok(());
    }
    for c in 0..=remaining {
        counts[from] = c;
        enumerate_counts(counts, from + 1, remaining - c, emitted, max_combos, emit)?;
    }
    Ok(())
}

fn collect_outputs<S, O: Eq + Hash>(
    current: HashMap<(Status<S, O>, usize), Formula>,
    horizon: usize,
) -> Result<Vec<(O, Formula)>, CompileError> {
    let mut by_output: HashMap<O, Formula> = HashMap::new();
    for ((status, _d), phi) in current {
        match status {
            Status::Running(_) => return Err(CompileError::NotStoppedByHorizon { horizon }),
            Status::Stopped(o) => accumulate(&mut by_output, o, phi),
        }
    }
    Ok(by_output.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::kripke::Kripke;
    use portnum_graph::{generators, PortNumbering};
    use portnum_machine::adapters::MbAsVector;
    use portnum_machine::Simulator;
    use std::collections::BTreeSet;

    /// One-round MB algorithm: "do I have at least two odd-degree
    /// neighbours?"
    #[derive(Debug)]
    struct TwoOdd;

    impl MbAlgorithm for TwoOdd {
        type State = usize;
        type Msg = bool;
        type Output = bool;

        fn init(&self, degree: usize) -> Status<usize, bool> {
            Status::Running(degree)
        }

        fn broadcast(&self, state: &usize) -> bool {
            state % 2 == 1
        }

        fn step(&self, _: &usize, received: &Multiset<Payload<bool>>) -> Status<usize, bool> {
            Status::Stopped(received.count(&Payload::Data(true)) >= 2)
        }
    }

    #[test]
    fn mb_roundtrip_on_graphs() {
        let opts = ToFormulaOptions { max_degree: 3, horizon: 4, ..Default::default() };
        let formulas = mb_algorithm_to_formulas(&TwoOdd, &opts).unwrap();
        let psi_true = formulas.iter().find(|(o, _)| *o).map(|(_, f)| f.clone()).unwrap();
        assert!(!psi_true.is_ungraded(), "counting needs graded modalities");
        for g in [
            generators::path(5),
            generators::star(3),
            generators::cycle(4),
            generators::figure1_graph(),
        ] {
            let p = PortNumbering::consistent(&g);
            let run = Simulator::new().run(&MbAsVector(TwoOdd), &g, &p).unwrap();
            let k = Kripke::k_mm(&g);
            assert_eq!(
                run.outputs().to_vec(),
                evaluate(&k, &psi_true).unwrap(),
                "graph {g}"
            );
        }
    }

    /// Two-round Vector algorithm: learn the degree of the neighbour on
    /// in-port 0, then of that neighbour's port-0 neighbour... simplified:
    /// round 1 learns neighbour degrees, round 2 stops with whether the
    /// port-0 neighbour reported seeing a degree-1 node on its port 0.
    #[derive(Debug)]
    struct TwoRounds;

    type TrState = (u8, bool); // (round, scratch)

    impl VectorAlgorithm for TwoRounds {
        type State = TrState;
        type Msg = bool;
        type Output = bool;

        fn init(&self, degree: usize) -> Status<TrState, bool> {
            if degree == 0 {
                Status::Stopped(false)
            } else {
                Status::Running((0, degree == 1))
            }
        }

        fn message(&self, &(_, flag): &TrState, port: usize) -> bool {
            flag && port == 0
        }

        fn step(&self, &(round, _): &TrState, received: &[Payload<bool>]) -> Status<TrState, bool> {
            let saw = matches!(received.first(), Some(Payload::Data(true)));
            if round == 0 {
                Status::Running((1, saw))
            } else {
                Status::Stopped(saw)
            }
        }
    }

    #[test]
    fn vector_roundtrip_on_graphs() {
        let opts = ToFormulaOptions {
            max_degree: 2,
            horizon: 4,
            max_configs: 1 << 16,
            max_combos: 1 << 16,
        };
        let formulas = vector_algorithm_to_formulas(&TwoRounds, &opts).unwrap();
        for g in [generators::path(4), generators::cycle(5), generators::path(2)] {
            let p = PortNumbering::consistent(&g);
            let run = Simulator::new().run(&TwoRounds, &g, &p).unwrap();
            let k = Kripke::k_pp(&g, &p);
            // One per-model checker for the whole emitted suite: the
            // compiler's formulas share structure, so the plan cache
            // computes strictly fewer vectors than it lowers AST nodes.
            let mut checker = crate::plan::ModelChecker::new(&k);
            for (o, psi) in &formulas {
                let expected: Vec<bool> =
                    run.outputs().iter().map(|out| out == o).collect();
                assert_eq!(
                    checker.check(psi).unwrap().to_bools(),
                    expected,
                    "graph {g}, output {o}"
                );
            }
            // The emitted suite shares structure across outputs, so the
            // cache must compute strictly fewer vectors than it lowered
            // AST nodes (pure pointer memoisation would tie, not beat).
            let stats = checker.stats();
            assert!(stats.computed < stats.ast_nodes, "{stats:?}");
            assert!(stats.dedup_hits > 0, "{stats:?}");
        }
    }

    /// One-round genuine Multiset algorithm (sends its degree to every
    /// port, tags nothing — but *reads* multiplicities): "did I receive
    /// the value 2 at least twice?"
    #[derive(Debug)]
    struct TwoTwos;

    impl MultisetAlgorithm for TwoTwos {
        type State = usize;
        type Msg = usize;
        type Output = bool;

        fn init(&self, degree: usize) -> Status<usize, bool> {
            Status::Running(degree)
        }

        fn message(&self, state: &usize, port: usize) -> usize {
            // Port-dependent messages keep this genuinely Multiset (not MB):
            // leaves announce their port-0 status, others their degree.
            if *state == 1 && port == 0 {
                99
            } else {
                *state
            }
        }

        fn step(&self, _: &usize, received: &Multiset<Payload<usize>>) -> Status<usize, bool> {
            Status::Stopped(received.count(&Payload::Data(2)) >= 2)
        }
    }

    #[test]
    fn multiset_roundtrip_on_graphs() {
        use portnum_machine::adapters::MultisetAsVector;
        let opts = ToFormulaOptions {
            max_degree: 3,
            horizon: 4,
            max_configs: 1 << 14,
            max_combos: 1 << 14,
        };
        let formulas = multiset_algorithm_to_formulas(&TwoTwos, &opts).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        use rand::SeedableRng;
        for g in [
            generators::path(5),
            generators::star(3),
            generators::cycle(6),
            generators::figure1_graph(),
        ] {
            for p in [PortNumbering::consistent(&g), PortNumbering::random(&g, &mut rng)] {
                let run = Simulator::new().run(&MultisetAsVector(TwoTwos), &g, &p).unwrap();
                let k = Kripke::k_mp(&g, &p);
                let mut checker = crate::plan::ModelChecker::new(&k);
                for (o, psi) in &formulas {
                    let expected: Vec<bool> =
                        run.outputs().iter().map(|out| out == o).collect();
                    assert_eq!(
                        checker.check(psi).unwrap().to_bools(),
                        expected,
                        "graph {g}, output {o}"
                    );
                }
            }
        }
    }

    /// Two-round Broadcast algorithm: round 1 learn neighbour degrees per
    /// in-port; round 2 report whether the in-port-0 neighbour saw a leaf.
    #[derive(Debug)]
    struct BcTwoRounds;

    impl BroadcastAlgorithm for BcTwoRounds {
        type State = (u8, bool);
        type Msg = bool;
        type Output = bool;

        fn init(&self, degree: usize) -> Status<(u8, bool), bool> {
            if degree == 0 {
                Status::Stopped(false)
            } else {
                Status::Running((0, degree == 1))
            }
        }

        fn broadcast(&self, &(_, flag): &(u8, bool)) -> bool {
            flag
        }

        fn step(&self, &(round, _): &(u8, bool), received: &[Payload<bool>]) -> Status<(u8, bool), bool> {
            let saw = received.iter().any(|p| matches!(p, Payload::Data(true)));
            if round == 0 {
                Status::Running((1, saw))
            } else {
                let first = matches!(received.first(), Some(Payload::Data(true)));
                Status::Stopped(first)
            }
        }
    }

    #[test]
    fn broadcast_roundtrip_on_graphs() {
        use portnum_machine::adapters::BroadcastAsVector;
        let opts = ToFormulaOptions {
            max_degree: 2,
            horizon: 4,
            max_configs: 1 << 14,
            max_combos: 1 << 14,
        };
        let formulas = broadcast_algorithm_to_formulas(&BcTwoRounds, &opts).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        use rand::SeedableRng;
        for g in [generators::path(4), generators::cycle(5), generators::path(2)] {
            for p in [PortNumbering::consistent(&g), PortNumbering::random(&g, &mut rng)] {
                let run = Simulator::new().run(&BroadcastAsVector(BcTwoRounds), &g, &p).unwrap();
                let k = Kripke::k_pm(&g, &p);
                // Whole suite through one shared plan, roots in suite order.
                let plan =
                    crate::plan::Plan::compile_suite(&k, formulas.iter().map(|(_, f)| f)).unwrap();
                let truths = plan.execute(&k);
                for ((o, psi), truth) in formulas.iter().zip(&truths) {
                    let expected: Vec<bool> =
                        run.outputs().iter().map(|out| out == o).collect();
                    assert_eq!(truth.to_bools(), expected, "graph {g}, output {o}: {psi}");
                }
            }
        }
    }

    #[test]
    fn broadcast_formulas_stay_in_the_in_family() {
        let opts = ToFormulaOptions { max_degree: 2, horizon: 4, ..Default::default() };
        let formulas = broadcast_algorithm_to_formulas(&BcTwoRounds, &opts).unwrap();
        for (_, psi) in &formulas {
            assert!(psi.uses_only(crate::formula::IndexFamily::In), "{psi}");
            assert!(psi.is_ungraded(), "broadcast needs no counting: {psi}");
        }
    }

    #[test]
    fn multiset_formulas_stay_in_the_out_family() {
        let opts = ToFormulaOptions {
            max_degree: 2,
            horizon: 4,
            max_configs: 1 << 14,
            max_combos: 1 << 14,
        };
        let formulas = multiset_algorithm_to_formulas(&TwoTwos, &opts).unwrap();
        for (_, psi) in &formulas {
            assert!(psi.uses_only(crate::formula::IndexFamily::Out), "{psi}");
        }
    }

    /// An algorithm that never stops, to exercise the horizon guard.
    #[derive(Debug)]
    struct Forever;

    impl MbAlgorithm for Forever {
        type State = ();
        type Msg = ();
        type Output = ();

        fn init(&self, _d: usize) -> Status<(), ()> {
            Status::Running(())
        }

        fn broadcast(&self, _: &()) {}

        fn step(&self, _: &(), _: &Multiset<Payload<()>>) -> Status<(), ()> {
            Status::Running(())
        }
    }

    #[test]
    fn horizon_guard_trips() {
        let opts = ToFormulaOptions { max_degree: 2, horizon: 3, ..Default::default() };
        assert!(matches!(
            mb_algorithm_to_formulas(&Forever, &opts),
            Err(CompileError::NotStoppedByHorizon { horizon: 3 })
        ));
    }

    /// SB-style parity via MB interface, depth 0: stops immediately.
    #[derive(Debug)]
    struct DegreeParity;

    impl MbAlgorithm for DegreeParity {
        type State = ();
        type Msg = ();
        type Output = bool;

        fn init(&self, degree: usize) -> Status<(), bool> {
            Status::Stopped(degree.is_multiple_of(2))
        }

        fn broadcast(&self, _: &()) {}

        fn step(&self, _: &(), _: &Multiset<Payload<()>>) -> Status<(), bool> {
            unreachable!()
        }
    }

    #[test]
    fn zero_round_algorithm_gives_propositional_formula() {
        let opts = ToFormulaOptions { max_degree: 4, ..Default::default() };
        let formulas = mb_algorithm_to_formulas(&DegreeParity, &opts).unwrap();
        for (o, psi) in &formulas {
            assert_eq!(psi.modal_depth(), 0, "output {o}: {psi}");
        }
        let g = generators::star(4);
        let k = Kripke::k_mm(&g);
        let psi_even =
            formulas.iter().find(|(o, _)| *o).map(|(_, f)| f.clone()).unwrap();
        assert_eq!(evaluate(&k, &psi_even).unwrap(), vec![true, false, false, false, false]);
    }

    // Sanity: BTreeSet import used by sibling tests via SbAlgorithm isn't
    // needed here, but keep the reception types exercised.
    #[allow(dead_code)]
    fn _types(_: &BTreeSet<Payload<u8>>) {}
}
