//! Error types for the logic crate.

use crate::formula::IndexFamily;
use portnum_graph::resilience::Interrupted;
use std::error::Error;
use std::fmt;

/// Errors from model construction and model checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A formula used a modality from a different index family than the
    /// model interprets.
    FamilyMismatch {
        /// The family the model interprets.
        expected: IndexFamily,
        /// The family found in the formula.
        found: IndexFamily,
    },
    /// A relation mentioned a world id out of range.
    WorldOutOfRange,
    /// A delta edit named a modality with no stored relation. Deltas
    /// never create relations (dense relation ids are baked into every
    /// compiled plan); construct dynamic models with all needed
    /// relations up front, empty rows included.
    NoSuchRelation,
    /// A delta asked to remove an edge the model does not store (or
    /// more copies of it than are stored).
    EdgeNotPresent,
    /// A fixpoint variable occurred free: no enclosing `µ`/`ν` binds it.
    /// Only closed formulas can be evaluated or compiled.
    UnboundVariable {
        /// The unbound variable's name.
        name: String,
    },
    /// A `µ`/`ν` binder re-binds a variable already bound by an
    /// enclosing binder of the same name.
    ShadowedVariable {
        /// The re-bound variable's name.
        name: String,
    },
    /// A fixpoint body uses its bound variable under an odd number of
    /// negations; Kleene iteration requires the body to be monotone in
    /// the bound variable.
    NonMonotoneVariable {
        /// The offending variable's name.
        name: String,
    },
    /// The computation was cooperatively interrupted (cancel, deadline,
    /// or work budget) before producing a result; nothing was published
    /// and a retry is bit-identical to an uninterrupted run.
    Interrupted(Interrupted),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::FamilyMismatch { expected, found } => write!(
                f,
                "formula uses {found:?} modalities but the model interprets {expected:?}"
            ),
            LogicError::WorldOutOfRange => write!(f, "relation refers to a world out of range"),
            LogicError::NoSuchRelation => {
                write!(f, "delta edits a modality with no stored relation")
            }
            LogicError::EdgeNotPresent => {
                write!(f, "delta removes an edge the model does not store")
            }
            LogicError::UnboundVariable { name } => {
                write!(f, "fixpoint variable {name} is not bound by any enclosing binder")
            }
            LogicError::ShadowedVariable { name } => {
                write!(f, "fixpoint variable {name} is re-bound by an inner binder")
            }
            LogicError::NonMonotoneVariable { name } => write!(
                f,
                "fixpoint variable {name} occurs under an odd number of negations"
            ),
            LogicError::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl Error for LogicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogicError::Interrupted(i) => Some(i),
            _ => None,
        }
    }
}

impl From<Interrupted> for LogicError {
    fn from(i: Interrupted) -> Self {
        LogicError::Interrupted(i)
    }
}

/// Errors from the Theorem-2 compilers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The formula's modalities do not match the target algorithm class.
    FamilyMismatch {
        /// The family the target class evaluates.
        expected: IndexFamily,
        /// The family found in the formula.
        found: IndexFamily,
    },
    /// A graded modality (`⟨α⟩≥k`, `k ≥ 2`) cannot be evaluated by a
    /// `Set`-based class.
    GradedNotSupported,
    /// The algorithm-to-formula construction found configurations still
    /// running at the horizon.
    NotStoppedByHorizon {
        /// The horizon that was used.
        horizon: usize,
    },
    /// The reachable configuration space exceeded the limit.
    TooManyConfigs {
        /// The configured limit.
        limit: usize,
    },
    /// Fixpoint formulas (`µ`/`ν`) have no finite-round distributed
    /// algorithm in the Theorem-2 sense: their evaluation depth depends
    /// on the model, not on the formula alone.
    FixpointNotSupported,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::FamilyMismatch { expected, found } => write!(
                f,
                "formula uses {found:?} modalities but the target class evaluates {expected:?}"
            ),
            CompileError::GradedNotSupported => {
                write!(f, "graded modalities cannot be evaluated with set reception")
            }
            CompileError::NotStoppedByHorizon { horizon } => {
                write!(f, "algorithm has configurations still running at horizon {horizon}")
            }
            CompileError::TooManyConfigs { limit } => {
                write!(f, "reachable configuration space exceeded limit {limit}")
            }
            CompileError::FixpointNotSupported => {
                write!(f, "fixpoint formulas have no finite-round distributed algorithm")
            }
        }
    }
}

impl Error for CompileError {}

/// Errors from the formula parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl Error for ParseError {}
