//! Model checking: evaluating formulas over all worlds of a Kripke model.
//!
//! [`evaluate_packed`] compiles the formula into a one-shot
//! [`Plan`](crate::plan::Plan) — a hash-consed, topologically ordered
//! instruction list — and runs it as a linear loop. Structurally equal
//! subformulas are evaluated once *even when they share no memory*, and
//! diamond instructions pick between the forward CSR walk and the
//! reverse predecessor-row union per instruction (see
//! [`crate::plan`] for the lowering, slot-recycling, and cost-heuristic
//! details). Checking many formulas against one model? Use
//! [`Plan::compile_suite`](crate::plan::Plan::compile_suite) or the
//! incremental [`ModelChecker`](crate::plan::ModelChecker) instead of
//! repeated `evaluate_packed` calls.
//!
//! # Packed truth vectors
//!
//! Truth vectors are [`Bitset`]s — one bit per world, 64 worlds per
//! `u64` word — so the propositional connectives (`¬`, `∧`, `∨`) are
//! word-parallel loops instead of per-world byte ops.
//!
//! [`evaluate_packed`] is the native entry point; [`evaluate`] /
//! [`satisfies`] / [`extension`] are thin views over it kept for callers
//! that want `Vec<bool>` / a single world / a world list.
//!
//! # The recursive reference engine
//!
//! [`evaluate_packed_recursive`] is the pre-plan engine: a bottom-up
//! walk over the `Arc`-linked AST memoising by pointer identity. It is
//! kept as the differential-testing reference (the proptests pin plans
//! bit-identical to it) and as the baseline the benches measure plans
//! against.
//!
//! # Fixpoints
//!
//! Both engines evaluate the modal µ-fragment. The recursive engine is
//! the *naive Kleene reference*: `µX.φ` starts from `⊥` (`νX.φ` from
//! `⊤`) and re-evaluates the whole body until the approximation is
//! stable — monotonicity (enforced at construction) bounds this at
//! `n + 1` iterations. The memo is bypassed while any variable is in
//! scope, so every iteration is a full bottom-up pass: deliberately
//! simple, deliberately slow, and exactly what the compiled
//! frontier-iterating plans (see [`crate::plan`]) are pinned
//! bit-identical to.

use crate::error::LogicError;
use crate::formula::{Formula, FormulaKind};
use crate::kripke::Kripke;
use crate::plan::Plan;
use portnum_graph::bitset::Bitset;
use portnum_graph::partition::FxHashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Evaluates `formula` at every world of `model`, packed one bit per
/// world.
///
/// Compiles a single-formula [`Plan`](crate::plan::Plan) and executes
/// it; see the module docs for when to hold a suite-level plan instead.
///
/// # Errors
///
/// Returns [`LogicError::FamilyMismatch`] if the formula uses modalities
/// from a different index family than the model interprets.
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::{evaluate_packed, Formula, Kripke, ModalIndex};
///
/// let k = Kripke::k_mm(&generators::path(3));
/// let f = Formula::box_(ModalIndex::Any, &Formula::prop(1));
/// let truth = evaluate_packed(&k, &f)?;
/// assert_eq!(truth.to_bools(), vec![false, true, false]);
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
pub fn evaluate_packed(model: &Kripke, formula: &Formula) -> Result<Bitset, LogicError> {
    Ok(Plan::compile(model, formula)?.execute(model).pop().expect("one root per formula"))
}

/// The recursive, pointer-memoised evaluator — the reference
/// implementation plans are differential-tested against.
///
/// Prefer [`evaluate_packed`]: this engine recomputes structurally
/// equal subformulas that do not share `Arc`s and never uses the
/// reverse diamond path.
///
/// # Errors
///
/// See [`evaluate_packed`].
pub fn evaluate_packed_recursive(model: &Kripke, formula: &Formula) -> Result<Bitset, LogicError> {
    let mut memo: FxHashMap<*const FormulaKind, Rc<Bitset>> = FxHashMap::default();
    let result = eval_rec(model, formula, &mut memo, &mut Vec::new())?;
    drop(memo);
    // The memo is gone, so the root Rc is unique unless the root formula
    // shares a node with itself (impossible); unwrap without copying.
    Ok(Rc::try_unwrap(result).unwrap_or_else(|rc| (*rc).clone()))
}

/// Evaluates `formula` at every world of `model`, as one `bool` per
/// world.
///
/// Compatibility wrapper over [`evaluate_packed`]; prefer the packed
/// form in new code — it is what the evaluator computes natively.
///
/// # Errors
///
/// See [`evaluate_packed`].
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::{evaluate, Formula, Kripke, ModalIndex};
///
/// let k = Kripke::k_mm(&generators::path(3));
/// // "all my neighbours have degree 1" — true only at the middle node?
/// // No: the ends have a single degree-2 neighbour, the middle has two
/// // degree-1 neighbours.
/// let f = Formula::box_(ModalIndex::Any, &Formula::prop(1));
/// assert_eq!(evaluate(&k, &f)?, vec![false, true, false]);
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
pub fn evaluate(model: &Kripke, formula: &Formula) -> Result<Vec<bool>, LogicError> {
    Ok(evaluate_packed(model, formula)?.to_bools())
}

/// Evaluates `formula` at a single world.
///
/// # Errors
///
/// See [`evaluate_packed`].
pub fn satisfies(model: &Kripke, world: usize, formula: &Formula) -> Result<bool, LogicError> {
    Ok(evaluate_packed(model, formula)?.get(world))
}

/// The extension `‖formula‖` as a set of world ids, driven directly by
/// [`Bitset::iter_ones`] on the packed result (no intermediate
/// `Vec<bool>`).
///
/// # Errors
///
/// See [`evaluate_packed`].
pub fn extension(model: &Kripke, formula: &Formula) -> Result<Vec<usize>, LogicError> {
    Ok(evaluate_packed(model, formula)?.iter_ones().collect())
}

fn eval_rec(
    model: &Kripke,
    formula: &Formula,
    memo: &mut FxHashMap<*const FormulaKind, Rc<Bitset>>,
    env: &mut Vec<(Arc<str>, Rc<Bitset>)>,
) -> Result<Rc<Bitset>, LogicError> {
    let key = formula.kind() as *const FormulaKind;
    // Reading the memo is sound even under binders: an entry only exists
    // for a subformula that evaluated without any environment, i.e. a
    // closed one, whose value cannot depend on the variables in scope.
    if let Some(cached) = memo.get(&key) {
        return Ok(Rc::clone(cached));
    }
    let n = model.len();
    let result: Bitset = match formula.kind() {
        FormulaKind::Top => Bitset::ones(n),
        FormulaKind::Bottom => Bitset::zeros(n),
        FormulaKind::Prop(d) => Bitset::from_fn(n, |v| model.degree(v) == *d),
        FormulaKind::Not(a) => {
            let inner = eval_rec(model, a, memo, env)?;
            inner.not()
        }
        FormulaKind::And(a, b) => {
            let left = eval_rec(model, a, memo, env)?;
            let right = eval_rec(model, b, memo, env)?;
            left.and(&right)
        }
        FormulaKind::Or(a, b) => {
            let left = eval_rec(model, a, memo, env)?;
            let right = eval_rec(model, b, memo, env)?;
            left.or(&right)
        }
        FormulaKind::Var(name) => {
            return match env.iter().rev().find(|(v, _)| v == name) {
                Some((_, val)) => Ok(Rc::clone(val)),
                None => Err(LogicError::UnboundVariable { name: name.to_string() }),
            };
        }
        FormulaKind::Mu { var, body } | FormulaKind::Nu { var, body } => {
            // Naive Kleene iteration: re-evaluate the whole body against
            // the current approximation until it stabilises. Construction
            // guarantees the body monotone in `var`, so each world's bit
            // moves at most once and the loop ends within n + 1 rounds.
            let greatest = matches!(formula.kind(), FormulaKind::Nu { .. });
            let mut x = Rc::new(if greatest { Bitset::ones(n) } else { Bitset::zeros(n) });
            let mut rounds = 0usize;
            loop {
                env.push((var.clone(), Rc::clone(&x)));
                let next = eval_rec(model, body, memo, env);
                env.pop().expect("pushed above");
                let next = next?;
                if *next == *x {
                    break;
                }
                x = next;
                rounds += 1;
                assert!(rounds <= n + 1, "fixpoint failed to converge: body not monotone?");
            }
            if env.is_empty() {
                memo.insert(key, Rc::clone(&x));
            }
            return Ok(x);
        }
        FormulaKind::Diamond { index, grade, inner } => {
            if index.family() != model.variant().family() {
                return Err(LogicError::FamilyMismatch {
                    expected: model.variant().family(),
                    found: index.family(),
                });
            }
            let sat = eval_rec(model, inner, memo, env)?;
            if *grade == 0 {
                // ⟨α⟩≥0 φ is vacuously true, with or without a stored
                // relation.
                return cache(memo, key, Bitset::ones(n), env.is_empty());
            }
            // Resolve the relation once per diamond, not once per world,
            // and test successor bits on the raw words: the successor
            // loop is the evaluator's hottest code and `w` is already
            // range-checked by construction (CSR targets are world ids).
            let sat_words = sat.words();
            let test = |w: u32| sat_words[(w >> 6) as usize] >> (w & 63) & 1 == 1;
            match model.relation_id(*index) {
                None => Bitset::zeros(n),
                Some(r) => {
                    let (offsets, targets) = model.relation_rows(r);
                    // `from_fn` visits worlds in order, so the row start
                    // is carried instead of re-read each iteration.
                    let mut start = offsets[0];
                    Bitset::from_fn(n, |v| {
                        let end = offsets[v + 1];
                        let row = &targets[start..end];
                        start = end;
                        let mut count = 0usize;
                        // Early-exit once the grade is met: successors
                        // past the threshold cannot change the answer
                        // (for grade 1 — the common case — this stops at
                        // the first satisfying successor).
                        row.iter().any(|&w| {
                            count += test(w) as usize;
                            count >= *grade
                        })
                    })
                }
            }
        }
    };
    cache(memo, key, result, env.is_empty())
}

/// Wraps `result` in a shared handle, memoising it under `key` only when
/// `memoise` is set — entries written while fixpoint variables are in
/// scope could capture environment-dependent values, so the naive
/// reference simply recomputes inside binders.
fn cache(
    memo: &mut FxHashMap<*const FormulaKind, Rc<Bitset>>,
    key: *const FormulaKind,
    result: Bitset,
    memoise: bool,
) -> Result<Rc<Bitset>, LogicError> {
    let result = Rc::new(result);
    if memoise {
        memo.insert(key, Rc::clone(&result));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::ModalIndex;
    use portnum_graph::{generators, PortNumbering};

    #[test]
    fn propositional_connectives() {
        let k = Kripke::k_mm(&generators::star(2));
        let q2 = Formula::prop(2);
        let q1 = Formula::prop(1);
        assert_eq!(evaluate(&k, &q2).unwrap(), vec![true, false, false]);
        assert_eq!(evaluate(&k, &q2.not()).unwrap(), vec![false, true, true]);
        assert_eq!(evaluate(&k, &q2.or(&q1)).unwrap(), vec![true, true, true]);
        assert_eq!(evaluate(&k, &q2.and(&q1)).unwrap(), vec![false, false, false]);
        assert_eq!(evaluate(&k, &Formula::top()).unwrap(), vec![true; 3]);
        assert_eq!(evaluate(&k, &Formula::bottom()).unwrap(), vec![false; 3]);
    }

    #[test]
    fn graded_diamonds_count() {
        // Star with 3 leaves: the centre has 3 degree-1 successors.
        let k = Kripke::k_mm(&generators::star(3));
        let q1 = Formula::prop(1);
        for grade in 0..=4 {
            let f = Formula::diamond_geq(ModalIndex::Any, grade, &q1);
            let expected_centre = grade <= 3;
            assert_eq!(satisfies(&k, 0, &f).unwrap(), expected_centre, "grade {grade}");
        }
        // A leaf has one successor (the centre, degree 3), so ⟨⟩≥1 q1 fails.
        assert!(!satisfies(&k, 1, &Formula::diamond(ModalIndex::Any, &q1)).unwrap());
    }

    #[test]
    fn port_indexed_modalities() {
        let g = generators::path(3);
        let p = PortNumbering::consistent(&g);
        let k = Kripke::k_pp(&g, &p);
        // Node 0's in-port 0 is fed by node 1; which out-port node 1 uses
        // depends on the canonical numbering: edge (0,1) pairs port 0 with
        // port 0, so ⟨(0,0)⟩ q2 holds at node 0 (node 1 has degree 2).
        let f = Formula::diamond(ModalIndex::InOut(0, 0), &Formula::prop(2));
        assert!(satisfies(&k, 0, &f).unwrap());
        // Out-of-range ports give empty relations, never panics.
        let g5 = Formula::diamond(ModalIndex::InOut(5, 5), &Formula::top());
        assert_eq!(evaluate(&k, &g5).unwrap(), vec![false; 3]);
    }

    #[test]
    fn grade_zero_diamonds_hold_everywhere() {
        // ⟨α⟩≥0 φ is vacuously true, with or without a stored relation.
        let k = Kripke::k_mm(&generators::path(3));
        let f = Formula::diamond_geq(ModalIndex::Any, 0, &Formula::bottom());
        assert_eq!(evaluate(&k, &f).unwrap(), vec![true; 3]);
        let kp = Kripke::k_pp(&generators::path(3), &PortNumbering::consistent(&generators::path(3)));
        let g0 = Formula::diamond_geq(ModalIndex::InOut(9, 9), 0, &Formula::bottom());
        assert_eq!(evaluate(&kp, &g0).unwrap(), vec![true; 3]);
    }

    #[test]
    fn family_mismatch_is_an_error() {
        let k = Kripke::k_mm(&generators::cycle(3));
        let f = Formula::diamond(ModalIndex::Out(0), &Formula::top());
        assert!(matches!(
            evaluate(&k, &f),
            Err(LogicError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn extension_collects_worlds() {
        let k = Kripke::k_mm(&generators::star(3));
        let f = Formula::prop(1);
        assert_eq!(extension(&k, &f).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn packed_and_unpacked_agree() {
        let k = Kripke::k_mm(&generators::grid(3, 3));
        let f = Formula::box_(ModalIndex::Any, &Formula::prop(2))
            .or(&Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(3)).not());
        let packed = evaluate_packed(&k, &f).unwrap();
        assert_eq!(packed.to_bools(), evaluate(&k, &f).unwrap());
        assert_eq!(packed.len(), k.len());
        let ext = extension(&k, &f).unwrap();
        assert!(ext.iter().all(|&v| packed.get(v)));
        assert_eq!(ext.len(), packed.count_ones());
    }

    #[test]
    fn shared_subformulas_evaluate_once() {
        // Build a deeply shared formula: f_{n+1} = f_n & f_n. Without
        // memoisation this would take 2^40 steps.
        let mut f = Formula::prop(2);
        for _ in 0..40 {
            f = f.and(&f);
        }
        let k = Kripke::k_mm(&generators::cycle(5));
        assert_eq!(evaluate(&k, &f).unwrap(), vec![true; 5]);
    }

    #[test]
    fn plan_and_recursive_engines_agree() {
        let k = Kripke::k_mm(&generators::grid(3, 4));
        let f = Formula::box_(ModalIndex::Any, &Formula::prop(3))
            .or(&Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(2)))
            .and(&Formula::diamond(ModalIndex::Any, &Formula::prop(4)).not());
        assert_eq!(
            evaluate_packed(&k, &f).unwrap(),
            evaluate_packed_recursive(&k, &f).unwrap()
        );
    }

    #[test]
    fn fixpoint_reachability_on_a_path() {
        // path(6): degrees are 1,2,2,2,2,1. µX. q1 ∨ ◇X = "some world of
        // degree 1 is reachable" — everywhere on a connected graph.
        let k = Kripke::k_mm(&generators::path(6));
        let reach = Formula::mu(
            "X",
            &Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X"))),
        )
        .unwrap();
        assert_eq!(evaluate(&k, &reach).unwrap(), vec![true; 6]);
        // µX. q7 ∨ ◇X with no q7 world: empty.
        let none = Formula::mu(
            "X",
            &Formula::prop(7).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X"))),
        )
        .unwrap();
        assert_eq!(evaluate(&k, &none).unwrap(), vec![false; 6]);
        // νX. q2 ∧ ◻X = "every reachable world has degree 2" — false
        // everywhere (the endpoints are reachable from everywhere).
        let safe = Formula::nu(
            "X",
            &Formula::prop(2).and(&Formula::box_(ModalIndex::Any, &Formula::var("X"))),
        )
        .unwrap();
        assert_eq!(evaluate(&k, &safe).unwrap(), vec![false; 6]);
        // Degenerate binders.
        assert_eq!(
            evaluate(&k, &Formula::mu("X", &Formula::var("X")).unwrap()).unwrap(),
            vec![false; 6]
        );
        assert_eq!(
            evaluate(&k, &Formula::nu("X", &Formula::var("X")).unwrap()).unwrap(),
            vec![true; 6]
        );
    }

    #[test]
    fn fixpoint_nesting_and_unbound_errors() {
        let k = Kripke::k_mm(&generators::star(3));
        // νY. µX. (X ∨ Y-guarded): the inner µ sees the outer variable.
        let inner = Formula::var("X").or(&Formula::diamond(ModalIndex::Any, &Formula::var("Y")));
        let f = Formula::nu("Y", &Formula::mu("X", &inner).unwrap()).unwrap();
        // µX.(X ∨ ◇Y) = ◇Y, so the ν iterates ◇ to its greatest fixpoint:
        // on a connected graph with edges both ways, everything stays true.
        assert_eq!(evaluate(&k, &f).unwrap(), vec![true; 4]);
        // A free variable is a typed error, not a panic.
        assert_eq!(
            evaluate(&k, &Formula::var("Z")),
            Err(LogicError::UnboundVariable { name: "Z".into() })
        );
        let open = Formula::mu("X", &Formula::var("X").or(&Formula::var("Z"))).unwrap();
        assert!(matches!(
            evaluate_packed_recursive(&k, &open),
            Err(LogicError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn box_is_dual() {
        let g = generators::star(3);
        let k = Kripke::k_mm(&g);
        let f = Formula::box_(ModalIndex::Any, &Formula::prop(1));
        // Centre: all neighbours are leaves -> true. Leaf: neighbour is the
        // centre (degree 3) -> false.
        assert_eq!(evaluate(&k, &f).unwrap(), vec![true, false, false, false]);
    }
}
