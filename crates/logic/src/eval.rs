//! Model checking: evaluating formulas over all worlds of a Kripke model.
//!
//! The evaluator is bottom-up and memoises shared subformulas by identity,
//! so formulas built with heavy structural sharing (as produced by the
//! algorithm-to-formula compiler) are checked in time linear in the number
//! of *distinct* subformulas times the model size.
//!
//! Memoised truth vectors are stored as `Rc<Vec<bool>>`: a cache hit
//! bumps a reference count instead of cloning the vector (the previous
//! implementation cloned each cached `Vec<bool>` twice per hit, which
//! dominated on compiler-generated formulas with heavy sharing).

use crate::error::LogicError;
use crate::formula::{Formula, FormulaKind};
use crate::kripke::Kripke;
use std::collections::HashMap;
use std::rc::Rc;

/// Evaluates `formula` at every world of `model`.
///
/// # Errors
///
/// Returns [`LogicError::FamilyMismatch`] if the formula uses modalities
/// from a different index family than the model interprets.
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::{evaluate, Formula, Kripke, ModalIndex};
///
/// let k = Kripke::k_mm(&generators::path(3));
/// // "all my neighbours have degree 1" — true only at the middle node?
/// // No: the ends have a single degree-2 neighbour, the middle has two
/// // degree-1 neighbours.
/// let f = Formula::box_(ModalIndex::Any, &Formula::prop(1));
/// assert_eq!(evaluate(&k, &f)?, vec![false, true, false]);
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
pub fn evaluate(model: &Kripke, formula: &Formula) -> Result<Vec<bool>, LogicError> {
    let mut memo: HashMap<*const FormulaKind, Rc<Vec<bool>>> = HashMap::new();
    let result = eval_rec(model, formula, &mut memo)?;
    drop(memo);
    // The memo is gone, so the root Rc is unique unless the root formula
    // shares a node with itself (impossible); unwrap without copying.
    Ok(Rc::try_unwrap(result).unwrap_or_else(|rc| (*rc).clone()))
}

/// Evaluates `formula` at a single world.
///
/// # Errors
///
/// See [`evaluate`].
pub fn satisfies(model: &Kripke, world: usize, formula: &Formula) -> Result<bool, LogicError> {
    Ok(evaluate(model, formula)?[world])
}

/// The extension `‖formula‖` as a set of world ids.
///
/// # Errors
///
/// See [`evaluate`].
pub fn extension(model: &Kripke, formula: &Formula) -> Result<Vec<usize>, LogicError> {
    Ok(evaluate(model, formula)?
        .into_iter()
        .enumerate()
        .filter_map(|(v, sat)| sat.then_some(v))
        .collect())
}

fn eval_rec(
    model: &Kripke,
    formula: &Formula,
    memo: &mut HashMap<*const FormulaKind, Rc<Vec<bool>>>,
) -> Result<Rc<Vec<bool>>, LogicError> {
    let key = formula.kind() as *const FormulaKind;
    if let Some(cached) = memo.get(&key) {
        return Ok(Rc::clone(cached));
    }
    let n = model.len();
    let result: Vec<bool> = match formula.kind() {
        FormulaKind::Top => vec![true; n],
        FormulaKind::Bottom => vec![false; n],
        FormulaKind::Prop(d) => (0..n).map(|v| model.degree(v) == *d).collect(),
        FormulaKind::Not(a) => {
            let inner = eval_rec(model, a, memo)?;
            inner.iter().map(|&b| !b).collect()
        }
        FormulaKind::And(a, b) => {
            let left = eval_rec(model, a, memo)?;
            let right = eval_rec(model, b, memo)?;
            left.iter().zip(right.iter()).map(|(&x, &y)| x && y).collect()
        }
        FormulaKind::Or(a, b) => {
            let left = eval_rec(model, a, memo)?;
            let right = eval_rec(model, b, memo)?;
            left.iter().zip(right.iter()).map(|(&x, &y)| x || y).collect()
        }
        FormulaKind::Diamond { index, grade, inner } => {
            if index.family() != model.variant().family() {
                return Err(LogicError::FamilyMismatch {
                    expected: model.variant().family(),
                    found: index.family(),
                });
            }
            let sat = eval_rec(model, inner, memo)?;
            // Resolve the relation once per diamond, not once per world.
            match model.relation_id(*index) {
                None => vec![*grade == 0; n],
                Some(r) => (0..n)
                    .map(|v| {
                        let count =
                            model.successors_dense(r, v).iter().filter(|&&w| sat[w]).count();
                        count >= *grade
                    })
                    .collect(),
            }
        }
    };
    let result = Rc::new(result);
    memo.insert(key, Rc::clone(&result));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::ModalIndex;
    use portnum_graph::{generators, PortNumbering};

    #[test]
    fn propositional_connectives() {
        let k = Kripke::k_mm(&generators::star(2));
        let q2 = Formula::prop(2);
        let q1 = Formula::prop(1);
        assert_eq!(evaluate(&k, &q2).unwrap(), vec![true, false, false]);
        assert_eq!(evaluate(&k, &q2.not()).unwrap(), vec![false, true, true]);
        assert_eq!(evaluate(&k, &q2.or(&q1)).unwrap(), vec![true, true, true]);
        assert_eq!(evaluate(&k, &q2.and(&q1)).unwrap(), vec![false, false, false]);
        assert_eq!(evaluate(&k, &Formula::top()).unwrap(), vec![true; 3]);
        assert_eq!(evaluate(&k, &Formula::bottom()).unwrap(), vec![false; 3]);
    }

    #[test]
    fn graded_diamonds_count() {
        // Star with 3 leaves: the centre has 3 degree-1 successors.
        let k = Kripke::k_mm(&generators::star(3));
        let q1 = Formula::prop(1);
        for grade in 0..=4 {
            let f = Formula::diamond_geq(ModalIndex::Any, grade, &q1);
            let expected_centre = grade <= 3;
            assert_eq!(satisfies(&k, 0, &f).unwrap(), expected_centre, "grade {grade}");
        }
        // A leaf has one successor (the centre, degree 3), so ⟨⟩≥1 q1 fails.
        assert!(!satisfies(&k, 1, &Formula::diamond(ModalIndex::Any, &q1)).unwrap());
    }

    #[test]
    fn port_indexed_modalities() {
        let g = generators::path(3);
        let p = PortNumbering::consistent(&g);
        let k = Kripke::k_pp(&g, &p);
        // Node 0's in-port 0 is fed by node 1; which out-port node 1 uses
        // depends on the canonical numbering: edge (0,1) pairs port 0 with
        // port 0, so ⟨(0,0)⟩ q2 holds at node 0 (node 1 has degree 2).
        let f = Formula::diamond(ModalIndex::InOut(0, 0), &Formula::prop(2));
        assert!(satisfies(&k, 0, &f).unwrap());
        // Out-of-range ports give empty relations, never panics.
        let g5 = Formula::diamond(ModalIndex::InOut(5, 5), &Formula::top());
        assert_eq!(evaluate(&k, &g5).unwrap(), vec![false; 3]);
    }

    #[test]
    fn family_mismatch_is_an_error() {
        let k = Kripke::k_mm(&generators::cycle(3));
        let f = Formula::diamond(ModalIndex::Out(0), &Formula::top());
        assert!(matches!(
            evaluate(&k, &f),
            Err(LogicError::FamilyMismatch { .. })
        ));
    }

    #[test]
    fn extension_collects_worlds() {
        let k = Kripke::k_mm(&generators::star(3));
        let f = Formula::prop(1);
        assert_eq!(extension(&k, &f).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_subformulas_evaluate_once() {
        // Build a deeply shared formula: f_{n+1} = f_n & f_n. Without
        // memoisation this would take 2^40 steps.
        let mut f = Formula::prop(2);
        for _ in 0..40 {
            f = f.and(&f);
        }
        let k = Kripke::k_mm(&generators::cycle(5));
        assert_eq!(evaluate(&k, &f).unwrap(), vec![true; 5]);
    }

    #[test]
    fn box_is_dual() {
        let g = generators::star(3);
        let k = Kripke::k_mm(&g);
        let f = Formula::box_(ModalIndex::Any, &Formula::prop(1));
        // Centre: all neighbours are leaves -> true. Leaf: neighbour is the
        // centre (degree 3) -> false.
        assert_eq!(evaluate(&k, &f).unwrap(), vec![true, false, false, false]);
    }
}
