//! Formulas of the modal logics ML, GML, MML, and GMML (Section 4.1).
//!
//! One AST covers all four logics. The proposition symbols are the paper's
//! degree atoms `q_d` (“this node has degree `d`”). Modalities are indexed
//! by [`ModalIndex`], covering the four index families of Section 4.3:
//!
//! | family | index | Kripke model | algorithm class |
//! |---|---|---|---|
//! | `[Δ]×[Δ]`   | `⟨(i,j)⟩` | `K₊,₊` | `Vector` |
//! | `{*}×[Δ]`   | `⟨(*,j)⟩` | `K₋,₊` | `Multiset` / `Set` |
//! | `[Δ]×{*}`   | `⟨(i,*)⟩` | `K₊,₋` | `Broadcast` |
//! | `{(*,*)}`   | `⟨(*,*)⟩` | `K₋,₋` | `MB` / `SB` |
//!
//! Every diamond carries a *grade* `k`: `⟨α⟩≥k φ` holds when at least `k`
//! accessible worlds satisfy `φ`. Grade 1 is the plain diamond; a formula
//! all of whose grades are 1 belongs to the ungraded logic (ML/MML), which
//! is what the `Set`-based classes can evaluate.
//!
//! # The modal µ-fragment
//!
//! Beyond the paper's graded logics, the AST carries least and greatest
//! fixpoints (`µX.φ` / `νX.φ`, Reiter's characterization of asynchronous
//! runs): [`Formula::mu`], [`Formula::nu`], and fixpoint variables
//! ([`Formula::var`]). Binder construction is *scope-checked* — the bound
//! variable must not be re-bound inside the body
//! ([`LogicError::ShadowedVariable`]) and every free occurrence must sit
//! under an even number of negations
//! ([`LogicError::NonMonotoneVariable`]), the positivity condition that
//! makes Kleene iteration converge. Variables left unbound are caught at
//! evaluation/compile time ([`LogicError::UnboundVariable`]), so nested
//! binders can be assembled bottom-up.
//!
//! Port indices are `0`-based, matching the rest of the workspace.
//!
//! [`LogicError::ShadowedVariable`]: crate::LogicError::ShadowedVariable
//! [`LogicError::NonMonotoneVariable`]: crate::LogicError::NonMonotoneVariable
//! [`LogicError::UnboundVariable`]: crate::LogicError::UnboundVariable

use crate::error::LogicError;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A modality index `α` (see module docs for the four families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModalIndex {
    /// `(i, j)`: the neighbour whose out-port `j` feeds my in-port `i`.
    InOut(usize, usize),
    /// `(*, j)`: any neighbour transmitting from its out-port `j`.
    Out(usize),
    /// `(i, *)`: the neighbour feeding my in-port `i`.
    In(usize),
    /// `(*, *)`: any neighbour.
    Any,
}

impl ModalIndex {
    /// The family this index belongs to.
    pub fn family(self) -> IndexFamily {
        match self {
            ModalIndex::InOut(_, _) => IndexFamily::InOut,
            ModalIndex::Out(_) => IndexFamily::Out,
            ModalIndex::In(_) => IndexFamily::In,
            ModalIndex::Any => IndexFamily::Any,
        }
    }
}

impl fmt::Display for ModalIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModalIndex::InOut(i, j) => write!(f, "{i},{j}"),
            ModalIndex::Out(j) => write!(f, "*,{j}"),
            ModalIndex::In(i) => write!(f, "{i},*"),
            ModalIndex::Any => write!(f, "*,*"),
        }
    }
}

/// The four index families `I^Δ_{a,b}` of Section 4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexFamily {
    /// `I_{+,+} = [Δ] × [Δ]` — full port information.
    InOut,
    /// `I_{-,+} = {*} × [Δ]` — sender ports only.
    Out,
    /// `I_{+,-} = [Δ] × {*}` — receiver ports only.
    In,
    /// `I_{-,-} = {(*,*)}` — adjacency only.
    Any,
}

/// The shape of a formula node; obtain it with [`Formula::kind`].
#[derive(Debug, PartialEq, Eq, Hash)]
pub enum FormulaKind {
    /// `⊤`.
    Top,
    /// `⊥`.
    Bottom,
    /// Degree atom `q_d`.
    Prop(usize),
    /// Negation.
    Not(Formula),
    /// Conjunction.
    And(Formula, Formula),
    /// Disjunction.
    Or(Formula, Formula),
    /// Graded diamond `⟨α⟩≥k φ` (`grade = k`; plain diamond has `k = 1`).
    Diamond {
        /// The modality index `α`.
        index: ModalIndex,
        /// The grade `k ≥ 0` (`⟨α⟩≥0 φ` is trivially true).
        grade: usize,
        /// The subformula `φ`.
        inner: Formula,
    },
    /// A fixpoint variable `X`, free until bound by an enclosing
    /// [`Mu`](FormulaKind::Mu) or [`Nu`](FormulaKind::Nu).
    Var(Arc<str>),
    /// Least fixpoint `µX.φ` — the limit of `⊥, φ(⊥), φ(φ(⊥)), …`.
    Mu {
        /// The bound variable `X`.
        var: Arc<str>,
        /// The body `φ`, positive in `X`.
        body: Formula,
    },
    /// Greatest fixpoint `νX.φ` — the limit of `⊤, φ(⊤), φ(φ(⊤)), …`.
    Nu {
        /// The bound variable `X`.
        var: Arc<str>,
        /// The body `φ`, positive in `X`.
        body: Formula,
    },
}

/// A modal formula (cheaply cloneable; subtrees are shared).
///
/// # Examples
///
/// ```
/// use portnum_logic::{Formula, ModalIndex};
///
/// // "my degree is 2, and at least two neighbours have degree 1"
/// let f = Formula::prop(2).and(&Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(1)));
/// assert_eq!(f.modal_depth(), 1);
/// assert_eq!(f.to_string(), "(q2 & <*,*>>=2 q1)");
/// assert!(!f.is_ungraded());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Formula {
    node: Arc<FormulaKind>,
}

impl Formula {
    fn new(kind: FormulaKind) -> Self {
        Formula { node: Arc::new(kind) }
    }

    /// `⊤`.
    pub fn top() -> Self {
        Formula::new(FormulaKind::Top)
    }

    /// `⊥`.
    pub fn bottom() -> Self {
        Formula::new(FormulaKind::Bottom)
    }

    /// The degree atom `q_d`.
    pub fn prop(d: usize) -> Self {
        Formula::new(FormulaKind::Prop(d))
    }

    /// Negation `¬self`.
    pub fn not(&self) -> Self {
        Formula::new(FormulaKind::Not(self.clone()))
    }

    /// Conjunction `self ∧ other`.
    pub fn and(&self, other: &Formula) -> Self {
        Formula::new(FormulaKind::And(self.clone(), other.clone()))
    }

    /// Disjunction `self ∨ other`.
    pub fn or(&self, other: &Formula) -> Self {
        Formula::new(FormulaKind::Or(self.clone(), other.clone()))
    }

    /// Plain diamond `⟨α⟩ inner`.
    pub fn diamond(index: ModalIndex, inner: &Formula) -> Self {
        Formula::diamond_geq(index, 1, inner)
    }

    /// Graded diamond `⟨α⟩≥k inner`.
    pub fn diamond_geq(index: ModalIndex, grade: usize, inner: &Formula) -> Self {
        Formula::new(FormulaKind::Diamond { index, grade, inner: inner.clone() })
    }

    /// Box `[α] inner = ¬⟨α⟩¬inner`.
    pub fn box_(index: ModalIndex, inner: &Formula) -> Self {
        Formula::diamond(index, &inner.not()).not()
    }

    /// A fixpoint variable `X` (free until bound by [`Formula::mu`] /
    /// [`Formula::nu`]).
    ///
    /// Any non-empty name is accepted; names matching the parser's
    /// identifier shape (an uppercase ASCII letter followed by ASCII
    /// alphanumerics) round-trip through `Display` and [`crate::parse`].
    pub fn var(name: &str) -> Self {
        Formula::new(FormulaKind::Var(Arc::from(name)))
    }

    /// Least fixpoint `µX. body`.
    ///
    /// Scope-checked: fails with [`LogicError::ShadowedVariable`] if an
    /// inner binder re-binds `name`, and with
    /// [`LogicError::NonMonotoneVariable`] if any free occurrence of
    /// `name` in `body` sits under an odd number of negations (Kleene
    /// iteration needs the body monotone in the bound variable). Other
    /// variables may remain free — they are resolved by enclosing
    /// binders, or rejected at evaluation time.
    ///
    /// # Examples
    ///
    /// ```
    /// use portnum_logic::{Formula, ModalIndex};
    ///
    /// // reachability: "a world of degree 1 is reachable"
    /// let reach = Formula::mu(
    ///     "X",
    ///     &Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X"))),
    /// )
    /// .unwrap();
    /// assert_eq!(reach.to_string(), "(mu X . (q1 | <*,*> X))");
    ///
    /// // !X is not monotone in X
    /// assert!(Formula::mu("X", &Formula::var("X").not()).is_err());
    /// ```
    pub fn mu(name: &str, body: &Formula) -> Result<Self, LogicError> {
        check_binder(name, body)?;
        Ok(Formula::mu_unchecked(Arc::from(name), body.clone()))
    }

    /// Greatest fixpoint `νX. body`; scope-checked exactly like
    /// [`Formula::mu`].
    pub fn nu(name: &str, body: &Formula) -> Result<Self, LogicError> {
        check_binder(name, body)?;
        Ok(Formula::nu_unchecked(Arc::from(name), body.clone()))
    }

    /// Rebuild a `Mu` node from parts already known to be scope-valid
    /// (used by transformations that preserve scoping and polarity).
    pub(crate) fn mu_unchecked(var: Arc<str>, body: Formula) -> Self {
        Formula::new(FormulaKind::Mu { var, body })
    }

    /// Rebuild a `Nu` node from parts already known to be scope-valid.
    pub(crate) fn nu_unchecked(var: Arc<str>, body: Formula) -> Self {
        Formula::new(FormulaKind::Nu { var, body })
    }

    /// Returns `true` if no fixpoint variable occurs free: every `Var` is
    /// inside a `Mu`/`Nu` binding its name. Only closed formulas can be
    /// evaluated or compiled.
    pub fn is_closed(&self) -> bool {
        fn walk(f: &Formula, bound: &mut Vec<Arc<str>>) -> bool {
            match f.kind() {
                FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => true,
                FormulaKind::Var(name) => bound.iter().any(|b| b == name),
                FormulaKind::Not(a) => walk(a, bound),
                FormulaKind::And(a, b) | FormulaKind::Or(a, b) => {
                    walk(a, bound) && walk(b, bound)
                }
                FormulaKind::Diamond { inner, .. } => walk(inner, bound),
                FormulaKind::Mu { var, body } | FormulaKind::Nu { var, body } => {
                    bound.push(var.clone());
                    let ok = walk(body, bound);
                    bound.pop();
                    ok
                }
            }
        }
        walk(self, &mut Vec::new())
    }

    /// Disjunction of a sequence (`⊥` when empty).
    pub fn any_of<I: IntoIterator<Item = Formula>>(items: I) -> Self {
        let mut iter = items.into_iter();
        match iter.next() {
            None => Formula::bottom(),
            Some(first) => iter.fold(first, |acc, f| acc.or(&f)),
        }
    }

    /// Conjunction of a sequence (`⊤` when empty).
    pub fn all_of<I: IntoIterator<Item = Formula>>(items: I) -> Self {
        let mut iter = items.into_iter();
        match iter.next() {
            None => Formula::top(),
            Some(first) => iter.fold(first, |acc, f| acc.and(&f)),
        }
    }

    /// The node shape, for pattern matching.
    pub fn kind(&self) -> &FormulaKind {
        &self.node
    }

    /// The modal depth `md(φ)`: deepest nesting of modalities.
    ///
    /// By Theorem 2 this equals the running time of the compiled
    /// distributed algorithm.
    pub fn modal_depth(&self) -> usize {
        match self.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => 0,
            FormulaKind::Not(a) => a.modal_depth(),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => {
                a.modal_depth().max(b.modal_depth())
            }
            FormulaKind::Diamond { inner, .. } => inner.modal_depth() + 1,
            FormulaKind::Var(_) => 0,
            FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => body.modal_depth(),
        }
    }

    /// Returns `true` if every grade is 1 (the formula is in ML/MML rather
    /// than GML/GMML).
    pub fn is_ungraded(&self) -> bool {
        match self.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => true,
            FormulaKind::Not(a) => a.is_ungraded(),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => {
                a.is_ungraded() && b.is_ungraded()
            }
            FormulaKind::Diamond { grade, inner, .. } => *grade == 1 && inner.is_ungraded(),
            FormulaKind::Var(_) => true,
            FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => body.is_ungraded(),
        }
    }

    /// Returns `true` if every modality index belongs to `family`.
    pub fn uses_only(&self, family: IndexFamily) -> bool {
        match self.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => true,
            FormulaKind::Not(a) => a.uses_only(family),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => {
                a.uses_only(family) && b.uses_only(family)
            }
            FormulaKind::Diamond { index, inner, .. } => {
                index.family() == family && inner.uses_only(family)
            }
            FormulaKind::Var(_) => true,
            FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => {
                body.uses_only(family)
            }
        }
    }

    /// All modality indices appearing in the formula.
    pub fn indices(&self) -> Vec<ModalIndex> {
        let mut out = Vec::new();
        fn walk(f: &Formula, out: &mut Vec<ModalIndex>) {
            match f.kind() {
                FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => {}
                FormulaKind::Not(a) => walk(a, out),
                FormulaKind::And(a, b) | FormulaKind::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                FormulaKind::Diamond { index, inner, .. } => {
                    if !out.contains(index) {
                        out.push(*index);
                    }
                    walk(inner, out);
                }
                FormulaKind::Var(_) => {}
                FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => walk(body, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of nodes in the syntax tree (shared subtrees counted once per
    /// occurrence).
    pub fn size(&self) -> usize {
        match self.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => 1,
            FormulaKind::Not(a) => 1 + a.size(),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => 1 + a.size() + b.size(),
            FormulaKind::Diamond { inner, .. } => 1 + inner.size(),
            FormulaKind::Var(_) => 1,
            FormulaKind::Mu { body, .. } | FormulaKind::Nu { body, .. } => 1 + body.size(),
        }
    }

    /// Structural-sharing identity: true if both wrap the same node.
    pub fn ptr_eq(&self, other: &Formula) -> bool {
        Arc::ptr_eq(&self.node, &other.node)
    }
}

/// Scope check for `µname.body` / `νname.body`: no inner binder re-binds
/// `name`, and every free occurrence of `name` has positive polarity
/// (an even number of `Not`s above it).
///
/// Visited `(node, polarity)` pairs are memoised so shared subtrees cost
/// one visit per polarity, keeping the check linear in the DAG size.
fn check_binder(name: &str, body: &Formula) -> Result<(), LogicError> {
    fn walk(
        f: &Formula,
        name: &str,
        odd: bool,
        seen: &mut HashSet<(*const FormulaKind, bool)>,
    ) -> Result<(), LogicError> {
        if !seen.insert((Arc::as_ptr(&f.node), odd)) {
            return Ok(());
        }
        match f.kind() {
            FormulaKind::Top | FormulaKind::Bottom | FormulaKind::Prop(_) => Ok(()),
            FormulaKind::Var(v) => {
                if **v == *name && odd {
                    Err(LogicError::NonMonotoneVariable { name: name.to_string() })
                } else {
                    Ok(())
                }
            }
            FormulaKind::Not(a) => walk(a, name, !odd, seen),
            FormulaKind::And(a, b) | FormulaKind::Or(a, b) => {
                walk(a, name, odd, seen)?;
                walk(b, name, odd, seen)
            }
            FormulaKind::Diamond { inner, .. } => walk(inner, name, odd, seen),
            FormulaKind::Mu { var, body } | FormulaKind::Nu { var, body } => {
                if **var == *name {
                    return Err(LogicError::ShadowedVariable { name: name.to_string() });
                }
                walk(body, name, odd, seen)
            }
        }
    }
    walk(body, name, false, &mut HashSet::new())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            FormulaKind::Top => write!(f, "true"),
            FormulaKind::Bottom => write!(f, "false"),
            FormulaKind::Prop(d) => write!(f, "q{d}"),
            FormulaKind::Not(a) => write!(f, "!{a}"),
            FormulaKind::And(a, b) => write!(f, "({a} & {b})"),
            FormulaKind::Or(a, b) => write!(f, "({a} | {b})"),
            FormulaKind::Diamond { index, grade, inner } => {
                if *grade == 1 {
                    write!(f, "<{index}> {inner}")
                } else {
                    write!(f, "<{index}>>={grade} {inner}")
                }
            }
            FormulaKind::Var(name) => write!(f, "{name}"),
            // Binder bodies extend maximally rightward in the grammar,
            // so an unparenthesized binder printed as a left operand
            // would swallow its sibling on reparse.
            FormulaKind::Mu { var, body } => write!(f, "(mu {var} . {body})"),
            FormulaKind::Nu { var, body } => write!(f, "(nu {var} . {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modal_depth_counts_nesting() {
        let q = Formula::prop(1);
        assert_eq!(q.modal_depth(), 0);
        let d1 = Formula::diamond(ModalIndex::Any, &q);
        let d2 = Formula::diamond(ModalIndex::Out(0), &d1);
        assert_eq!(d2.modal_depth(), 2);
        let mix = d2.and(&d1).or(&q.not());
        assert_eq!(mix.modal_depth(), 2);
        assert_eq!(Formula::box_(ModalIndex::Any, &d1).modal_depth(), 2);
    }

    #[test]
    fn gradedness_and_family() {
        let q = Formula::prop(1);
        let plain = Formula::diamond(ModalIndex::Out(2), &q);
        let graded = Formula::diamond_geq(ModalIndex::Out(2), 3, &q);
        assert!(plain.is_ungraded());
        assert!(!graded.is_ungraded());
        assert!(plain.uses_only(IndexFamily::Out));
        assert!(!plain.uses_only(IndexFamily::Any));
        assert!(q.uses_only(IndexFamily::InOut));
    }

    #[test]
    fn indices_deduplicated() {
        let q = Formula::prop(1);
        let f = Formula::diamond(ModalIndex::In(0), &Formula::diamond(ModalIndex::In(0), &q))
            .and(&Formula::diamond(ModalIndex::In(1), &q));
        assert_eq!(f.indices(), vec![ModalIndex::In(0), ModalIndex::In(1)]);
    }

    #[test]
    fn display_round_trip_shapes() {
        let f = Formula::prop(2).and(&Formula::diamond_geq(ModalIndex::Any, 2, &Formula::prop(1)));
        assert_eq!(f.to_string(), "(q2 & <*,*>>=2 q1)");
        let g = Formula::diamond(ModalIndex::InOut(0, 1), &Formula::top()).not();
        assert_eq!(g.to_string(), "!<0,1> true");
        assert_eq!(Formula::bottom().to_string(), "false");
    }

    #[test]
    fn any_of_all_of_empty() {
        assert_eq!(Formula::any_of([]), Formula::bottom());
        assert_eq!(Formula::all_of([]), Formula::top());
        let items = vec![Formula::prop(1), Formula::prop(2)];
        assert_eq!(Formula::any_of(items.clone()).to_string(), "(q1 | q2)");
        assert_eq!(Formula::all_of(items).to_string(), "(q1 & q2)");
    }

    #[test]
    fn binder_construction_is_scope_checked() {
        let x = Formula::var("X");
        let body = Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &x));
        let reach = Formula::mu("X", &body).unwrap();
        assert_eq!(reach.to_string(), "(mu X . (q1 | <*,*> X))");
        assert!(reach.is_closed());
        assert!(!body.is_closed());
        assert_eq!(reach.modal_depth(), 1);
        assert_eq!(reach.size(), 5);
        assert!(reach.is_ungraded());
        assert!(reach.uses_only(IndexFamily::Any));
        assert_eq!(reach.indices(), vec![ModalIndex::Any]);

        // odd polarity is rejected...
        assert_eq!(
            Formula::mu("X", &x.not()),
            Err(LogicError::NonMonotoneVariable { name: "X".into() })
        );
        // ...but double negation is fine
        assert!(Formula::nu("X", &x.not().not()).is_ok());
        // re-binding the same name inside the body is rejected
        let inner = Formula::mu("X", &x).unwrap();
        assert_eq!(
            Formula::mu("X", &inner),
            Err(LogicError::ShadowedVariable { name: "X".into() })
        );
        // binding a *different* name around a nested binder is fine
        assert!(Formula::nu("Y", &Formula::mu("X", &x.or(&Formula::var("Y"))).unwrap()).is_ok());
    }

    #[test]
    fn polarity_check_handles_shared_subtrees() {
        // A deeply shared DAG: without (ptr, polarity) memoisation this
        // walk would be exponential.
        let mut f = Formula::var("X").or(&Formula::prop(1));
        for _ in 0..64 {
            f = f.and(&f);
        }
        assert!(Formula::mu("X", &f).is_ok());
        assert!(Formula::mu("X", &f.not()).is_err());
    }

    #[test]
    fn structural_equality_and_sharing() {
        let a = Formula::prop(3);
        let b = Formula::prop(3);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
        let c = a.clone();
        assert!(a.ptr_eq(&c));
        assert_eq!(a.size(), 1);
        assert_eq!(a.and(&b).size(), 3);
    }
}
