//! Kripke models, including the four canonical models `K_{a,b}(G, p)` of
//! Section 4.3.
//!
//! A port-numbered graph `(G, p)` induces accessibility relations
//!
//! ```text
//! R_(i,j) = { (v, w) : p((w, j)) = (v, i) }
//! ```
//!
//! (“`w`'s out-port `j` feeds `v`'s in-port `i`”), together with their
//! projections `R_(*,j)`, `R_(i,*)`, and `R_(*,*)`, and the valuation
//! `τ(q_d) = { v : deg(v) = d }`. The four models
//! `K₊,₊ / K₋,₊ / K₊,₋ / K₋,₋` expose exactly the information available to
//! the `Vector` / `Multiset`·`Set` / `Broadcast` / `MB`·`SB` algorithm
//! classes respectively (Figure 7).
//!
//! # Storage layout
//!
//! Relations are stored in **CSR (compressed sparse row)** form: the
//! modality indices live in one dense sorted `Vec<ModalIndex>`, and each
//! relation `r` is a pair of flat arrays `offsets[r]` / `targets[r]` with
//! the successors of world `v` at
//! `targets[r][offsets[r][v] .. offsets[r][v + 1]]`. Compared to the
//! previous `BTreeMap<ModalIndex, Vec<Vec<usize>>>`, every successor scan
//! is one bounds-checked slice index instead of a tree walk plus a
//! double pointer chase, and a whole-relation sweep (the partition
//! refinement inner loop) walks two contiguous arrays in order. Dense
//! relation ids (`0..relation_count()`) let hot paths skip the
//! by-[`ModalIndex`] lookup entirely via [`Kripke::successors_dense`].
//!
//! Targets are stored as `u32` world ids (models are capped at `2³²`
//! worlds, asserted on construction): half the relation memory of
//! `usize` targets, so twice as many successors per cache line on the
//! refinement and evaluation sweeps. Accessors therefore hand out
//! `&[u32]`; widen with `w as usize` when indexing host-side arrays.
//!
//! # Reverse adjacency
//!
//! The forward CSR answers "successors of `v`" in O(row); the packed
//! model checker's reverse diamond path also needs "predecessors of
//! `w`", in two interchangeable shapes:
//!
//! * **Dense bit rows** — [`Kripke::predecessor_rows`] materialises one
//!   [`BitMatrix`] per relation, so `⟨α⟩φ` is a union of whole
//!   predecessor rows over `iter_ones(‖φ‖)`. n² bits, so only viable
//!   under the evaluator's word cap
//!   ([`REVERSE_WORD_CAP`](crate::plan::REVERSE_WORD_CAP)).
//! * **CSC lists** — [`Kripke::predecessors_csc`] inverts the forward
//!   CSR into a per-relation [`CscAdjacency`] (reverse CSR): `O(n +
//!   edges)` memory at any scale, so the reverse diamond path — and
//!   graded counting — stays open on huge sparse models where the
//!   dense matrix is out of reach. The same store drives the worklist
//!   refinement engine's dirty propagation
//!   ([`portnum_graph::partition::WorklistRefiner::share_reverse_adjacency`]),
//!   so the inverse is built at most once per relation *across* the
//!   evaluator and the refiner.
//!
//! Both caches are lazy and built at most once per relation (a
//! `OnceLock` per relation; ignored by `PartialEq`, carried along by
//! `clone`).

use crate::error::LogicError;
use crate::formula::{IndexFamily, ModalIndex};
use portnum_graph::bitset::BitMatrix;
use portnum_graph::csc::CscAdjacency;
use portnum_graph::partition::RelationCsr;
use portnum_graph::{Graph, Port, PortNumbering};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::OnceLock;

/// Which of the four canonical model variants a [`Kripke`] model is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// `K₊,₊`: relations `R_(i,j)` — full port information.
    PlusPlus,
    /// `K₋,₊`: relations `R_(*,j)` — sender's out-port only.
    MinusPlus,
    /// `K₊,₋`: relations `R_(i,*)` — receiver's in-port only.
    PlusMinus,
    /// `K₋,₋`: the single relation `R_(*,*)` — plain adjacency.
    MinusMinus,
}

impl ModelVariant {
    /// The index family whose modalities this variant interprets.
    pub fn family(self) -> IndexFamily {
        match self {
            ModelVariant::PlusPlus => IndexFamily::InOut,
            ModelVariant::MinusPlus => IndexFamily::Out,
            ModelVariant::PlusMinus => IndexFamily::In,
            ModelVariant::MinusMinus => IndexFamily::Any,
        }
    }
}

/// One relation in CSR form: successors of `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`, stored as `u32` world ids.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CsrRelation {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

/// A cache value stamped with the model version it was built against.
/// Every cache read debug-asserts `built_at == version`, so a stale
/// cache (a patch-coverage bug in [`Kripke::apply_delta`]) fails loudly
/// in debug builds instead of serving a torn answer.
#[derive(Debug, Clone)]
struct Stamped<T> {
    built_at: u64,
    value: T,
}

impl CsrRelation {
    /// Builds a CSR row set from `(source, target)` pairs. Pair order is
    /// preserved within each source's row.
    fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> CsrRelation {
        let mut offsets = vec![0usize; n + 1];
        for &(v, _) in pairs {
            offsets[v + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; pairs.len()];
        for &(v, w) in pairs {
            targets[cursor[v]] = w as u32;
            cursor[v] += 1;
        }
        CsrRelation { offsets, targets }
    }

    /// Builds a CSR row set from a **re-runnable** edge stream, without
    /// ever materialising the pairs: one counting pass sizes the rows,
    /// one placement pass writes targets straight into their final
    /// slots. `edges()` must yield the same sequence on both calls
    /// (the million-world generators are deterministic closures, so
    /// this is free); pair order is preserved within each source's
    /// row, exactly as [`CsrRelation::from_pairs`] does.
    fn from_stream<I>(n: usize, edges: impl Fn() -> I) -> CsrRelation
    where
        I: Iterator<Item = (u32, u32)>,
    {
        let mut offsets = vec![0usize; n + 1];
        for (v, _) in edges() {
            offsets[v as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[n]];
        for (v, w) in edges() {
            let slot = cursor[v as usize];
            debug_assert!(
                slot < offsets[v as usize + 1],
                "edge stream changed between the counting and placement passes"
            );
            targets[slot] = w;
            cursor[v as usize] = slot + 1;
        }
        CsrRelation { offsets, targets }
    }

    #[inline]
    fn row(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Applies a **validated** batch of edge edits. Each touched row
    /// becomes its old contents minus one occurrence per removal (first
    /// match, order preserved) with added targets appended in batch
    /// order — a canonical row a differential mirror can reproduce, so
    /// a patched relation is `Eq`-identical to one rebuilt from the
    /// edited rows. Rows whose length is unchanged are patched in
    /// place; otherwise the target array is spliced once, untouched row
    /// spans copied wholesale.
    fn apply_edits(&mut self, n: usize, adds: &[(u32, u32)], removes: &[(u32, u32)]) {
        if adds.is_empty() && removes.is_empty() {
            return;
        }
        // Flat sorted edit lists — batch apply is on the serving hot
        // path, so the cost per touched row must stay allocation-free
        // (a per-row map of per-row `Vec`s dominates the splice for
        // realistic batches). The stable sort keeps adds in batch order
        // within each row; removal order within a row is immaterial
        // (first-occurrence consumption yields the same row either way).
        let mut add_sorted = adds.to_vec();
        add_sorted.sort_by_key(|&(v, _)| v);
        let mut rm_sorted = removes.to_vec();
        rm_sorted.sort_unstable_by_key(|&(v, _)| v);
        // Touched rows ascending, each with its edit sub-ranges.
        let mut rows: Vec<(u32, Range<usize>, Range<usize>)> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < add_sorted.len() || j < rm_sorted.len() {
            let row = match (add_sorted.get(i), rm_sorted.get(j)) {
                (Some(&(a, _)), Some(&(r, _))) => a.min(r),
                (Some(&(a, _)), None) => a,
                (None, Some(&(r, _))) => r,
                (None, None) => unreachable!("loop condition"),
            };
            let (ai, ri) = (i, j);
            while i < add_sorted.len() && add_sorted[i].0 == row {
                i += 1;
            }
            while j < rm_sorted.len() && rm_sorted[j].0 == row {
                j += 1;
            }
            rows.push((row, ai..i, ri..j));
        }
        // Scratch buffers reused across rows: the patched row contents
        // and one consumed-flag per removal in the row.
        let mut out: Vec<u32> = Vec::new();
        let mut used: Vec<bool> = Vec::new();
        let patch_row = |out: &mut Vec<u32>,
                         used: &mut Vec<bool>,
                         old: &[u32],
                         row_adds: &[(u32, u32)],
                         row_rms: &[(u32, u32)]| {
            out.clear();
            used.clear();
            used.resize(row_rms.len(), false);
            for &t in old {
                match (0..row_rms.len()).find(|&k| !used[k] && row_rms[k].1 == t) {
                    Some(k) => used[k] = true,
                    None => out.push(t),
                }
            }
            debug_assert!(
                used.iter().all(|&u| u),
                "removal validated against the stored row"
            );
            out.extend(row_adds.iter().map(|&(_, w)| w));
        };
        let in_place = rows.iter().all(|(_, a, rm)| a.len() == rm.len());
        if in_place {
            for &(v, ref ar, ref rr) in &rows {
                let (start, end) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
                // `out` is built from a copy-free read of the old row,
                // then written back over it.
                let old = &self.targets[start..end];
                patch_row(&mut out, &mut used, old, &add_sorted[ar.clone()], &rm_sorted[rr.clone()]);
                self.targets[start..end].copy_from_slice(&out);
            }
            return;
        }
        let grown = adds.len().saturating_sub(removes.len());
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len() + grown);
        offsets.push(0);
        let (mut next, mut v) = (0usize, 0usize);
        while v < n {
            if next < rows.len() && rows[next].0 as usize == v {
                let (_, ref ar, ref rr) = rows[next];
                let old = &self.targets[self.offsets[v]..self.offsets[v + 1]];
                patch_row(&mut out, &mut used, old, &add_sorted[ar.clone()], &rm_sorted[rr.clone()]);
                targets.extend_from_slice(&out);
                offsets.push(targets.len());
                next += 1;
                v += 1;
            } else {
                // Copy the whole untouched span up to the next touched
                // row in one shot; its offsets shift by a constant.
                let span_end = rows.get(next).map_or(n, |&(s, _, _)| s as usize);
                let shift = targets.len() as isize - self.offsets[v] as isize;
                targets.extend_from_slice(&self.targets[self.offsets[v]..self.offsets[span_end]]);
                for u in v..span_end {
                    offsets.push((self.offsets[u + 1] as isize + shift) as usize);
                }
                v = span_end;
            }
        }
        self.offsets = offsets;
        self.targets = targets;
    }
}

/// Type of the edge-stream factories a [`KripkeBuilder`] stores: each
/// call must replay the same `(source, target)` sequence (the builder
/// runs one counting and one placement pass per relation).
type EdgeStreamFn<'a> = Box<dyn Fn() -> Box<dyn Iterator<Item = (u32, u32)> + 'a> + 'a>;

/// Streaming [`Kripke`] construction: edges flow from generator
/// closures straight into the final CSR arrays (counting pass +
/// placement pass per relation), so a 10⁶–10⁷-world model is built
/// without ever materialising an intermediate edge `Vec` — peak memory
/// is the finished model plus one `usize` cursor per world.
///
/// Each relation is registered as a *factory closure* returning a
/// fresh iterator over `(source, target)` pairs; the closure is called
/// twice and must replay the same sequence both times (deterministic
/// generators — [`portnum_graph::generators::path_edges`] and
/// friends — satisfy this by construction). Pair order within a
/// source's row is preserved, so a builder fed the same pair sequence
/// as [`Kripke::from_parts`] produces an `Eq`-identical model; the
/// streaming proptests pin exactly that.
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::{Kripke, KripkeBuilder, ModalIndex, ModelVariant};
///
/// let n = 1 << 10;
/// let streamed = KripkeBuilder::new(ModelVariant::MinusMinus, n)
///     .relation(ModalIndex::Any, || generators::path_edges(n))
///     .degrees_from_streams()
///     .build()?;
/// assert_eq!(streamed.len(), n);
/// assert_eq!(streamed.degree(0), 1);
/// assert_eq!(streamed.degree(1), 2);
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
pub struct KripkeBuilder<'a> {
    variant: ModelVariant,
    n: usize,
    degree: Option<Vec<usize>>,
    relations: BTreeMap<ModalIndex, EdgeStreamFn<'a>>,
}

impl<'a> KripkeBuilder<'a> {
    /// A builder for an `n`-world model of the given variant. The
    /// degree valuation defaults to
    /// [`degrees_from_streams`](Self::degrees_from_streams); pass an
    /// explicit vector via [`degrees`](Self::degrees) to override.
    pub fn new(variant: ModelVariant, n: usize) -> KripkeBuilder<'a> {
        KripkeBuilder { variant, n, degree: None, relations: BTreeMap::new() }
    }

    /// Sets the degree valuation explicitly (`degree.len()` must be the
    /// builder's world count; checked in [`build`](Self::build)).
    pub fn degrees(mut self, degree: Vec<usize>) -> KripkeBuilder<'a> {
        self.degree = Some(degree);
        self
    }

    /// Derives the degree valuation from the streams themselves:
    /// `degree(v)` = total out-degree of `v` across all registered
    /// relations. For all four canonical port models this *is* the
    /// graph degree (each of `v`'s ports contributes exactly one
    /// stored pair with source `v`, under every projection), so the
    /// million-world families get the right valuation with no extra
    /// pass — the counting pass already computes it.
    pub fn degrees_from_streams(mut self) -> KripkeBuilder<'a> {
        self.degree = None;
        self
    }

    /// Registers the relation for `index` as a replayable edge-stream
    /// factory. Registering the same index twice replaces the stream.
    pub fn relation<I, F>(mut self, index: ModalIndex, edges: F) -> KripkeBuilder<'a>
    where
        F: Fn() -> I + 'a,
        I: Iterator<Item = (u32, u32)> + 'a,
    {
        self.relations.insert(index, Box::new(move || Box::new(edges())));
        self
    }

    /// Streams every registered relation into its final CSR arrays and
    /// assembles the model.
    ///
    /// # Errors
    ///
    /// [`LogicError::FamilyMismatch`] if a registered index does not
    /// belong to the variant's family, [`LogicError::WorldOutOfRange`]
    /// if any streamed pair mentions a world `>= n`, or if an explicit
    /// degree vector's length is not `n`.
    pub fn build(self) -> Result<Kripke, LogicError> {
        let n = self.n;
        assert!(n <= u32::MAX as usize, "Kripke models are capped at 2^32 worlds");
        if let Some(degree) = &self.degree {
            if degree.len() != n {
                return Err(LogicError::WorldOutOfRange);
            }
        }
        let mut index_keys = Vec::with_capacity(self.relations.len());
        let mut relations = Vec::with_capacity(self.relations.len());
        for (&index, make) in &self.relations {
            if index.family() != self.variant.family() {
                return Err(LogicError::FamilyMismatch {
                    expected: self.variant.family(),
                    found: index.family(),
                });
            }
            // Range-check on the counting pass (the placement pass
            // replays the same stream), so a bad generator fails with
            // a typed error before any CSR memory is written.
            let cap = n as u64;
            if make().any(|(v, w)| u64::from(v) >= cap || u64::from(w) >= cap) {
                return Err(LogicError::WorldOutOfRange);
            }
            index_keys.push(index);
            relations.push(CsrRelation::from_stream(n, make));
        }
        let degree = match self.degree {
            Some(degree) => degree,
            None => {
                // Sum of out-degrees across relations, straight from
                // the already-built offsets — no extra stream pass.
                let mut degree = vec![0usize; n];
                for rel in &relations {
                    for (v, d) in degree.iter_mut().enumerate() {
                        *d += rel.offsets[v + 1] - rel.offsets[v];
                    }
                }
                degree
            }
        };
        let reverse = (0..relations.len()).map(|_| OnceLock::new()).collect();
        let reverse_csc = (0..relations.len()).map(|_| OnceLock::new()).collect();
        Ok(Kripke {
            variant: self.variant,
            degree,
            index_keys,
            relations,
            reverse,
            reverse_csc,
            reverse_csc_combined: OnceLock::new(),
            version: 0,
            empty: Vec::new(),
        })
    }
}

/// A batch of model edits — add/remove edges, override valuations,
/// crash worlds — applied **atomically** by [`Kripke::apply_delta`]:
/// a rejected delta leaves the model (and every cache) untouched.
///
/// Deltas edit only modalities the model already stores
/// ([`LogicError::NoSuchRelation`] otherwise): dense relation ids are
/// baked into every compiled plan, so inserting a relation would
/// silently invalidate them. Construct dynamic models with all needed
/// relations up front — empty rows are fine.
///
/// Crashing a world removes every edge at it (out-edges and in-edges,
/// across all relations) but keeps the world, so the universe — and
/// every world id held by detached caches — stays stable; its degree
/// auto-adjusts to the isolated world's out-degree (0 on canonical
/// models). This is the crash-failure product update of the dynamic
/// epistemic treatments of fault-tolerant computation: the crashed
/// process stops being observable, the indexing of agents does not
/// shift.
///
/// # Examples
///
/// ```
/// use portnum_graph::generators;
/// use portnum_logic::{Kripke, ModalIndex, ModelDelta};
///
/// let mut k = Kripke::k_mm(&generators::path(4));
/// let mut delta = ModelDelta::new();
/// delta.remove_edge(ModalIndex::Any, 1, 2).remove_edge(ModalIndex::Any, 2, 1);
/// let touched = k.apply_delta(&delta)?;
/// assert_eq!(touched, vec![1, 2]);
/// assert_eq!(k.successors(1, ModalIndex::Any), &[0]);
/// assert_eq!(k.degree(1), 1);
/// assert_eq!(k.version(), 1);
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelDelta {
    add: Vec<(ModalIndex, u32, u32)>,
    remove: Vec<(ModalIndex, u32, u32)>,
    valuation: Vec<(u32, usize)>,
    crash: Vec<u32>,
}

impl ModelDelta {
    /// An empty delta.
    pub fn new() -> ModelDelta {
        ModelDelta::default()
    }

    /// Adds the edge `v →index w`. Relations are multisets: adding an
    /// edge already present stores another copy.
    pub fn add_edge(&mut self, index: ModalIndex, v: u32, w: u32) -> &mut ModelDelta {
        self.add.push((index, v, w));
        self
    }

    /// Removes one stored copy of the edge `v →index w`
    /// ([`LogicError::EdgeNotPresent`] at apply time if none remains).
    pub fn remove_edge(&mut self, index: ModalIndex, v: u32, w: u32) -> &mut ModelDelta {
        self.remove.push((index, v, w));
        self
    }

    /// Overrides world `v`'s recorded degree (its valuation: `q_d`
    /// holds iff `degree(v) = d`), after the automatic out-degree
    /// adjustment from this delta's edge edits.
    pub fn set_valuation(&mut self, v: u32, d: usize) -> &mut ModelDelta {
        self.valuation.push((v, d));
        self
    }

    /// Crashes world `v`: removes every edge currently at it, in both
    /// directions, across all relations. Combining a crash with an
    /// explicit removal of one of those edges double-removes it and is
    /// rejected at apply time.
    pub fn crash_world(&mut self, v: u32) -> &mut ModelDelta {
        self.crash.push(v);
        self
    }

    /// Appends every edit of `other` to this delta, preserving order.
    ///
    /// Batching matters under traffic: [`Kripke::apply_delta`] patches
    /// each built cache once per call with an O(edges) splice, so one
    /// merged batch costs one splice where a sequence of small deltas
    /// costs one per delta. Applying the merged batch is equivalent to
    /// applying the sequence **provided every removal (and crash)
    /// targets an edge stored before the whole batch** — a removal
    /// aimed at an edge an earlier delta in the sequence added would
    /// instead be validated against the pre-batch rows and rejected —
    /// **and no valuation override precedes an edge edit on the same
    /// source world**: overrides land after the batch's net degree
    /// adjustment, where the sequence would bump the overridden value.
    pub fn merge(&mut self, other: &ModelDelta) -> &mut ModelDelta {
        self.add.extend_from_slice(&other.add);
        self.remove.extend_from_slice(&other.remove);
        self.valuation.extend_from_slice(&other.valuation);
        self.crash.extend_from_slice(&other.crash);
        self
    }

    /// `true` if the delta contains no edits at all.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty()
            && self.remove.is_empty()
            && self.valuation.is_empty()
            && self.crash.is_empty()
    }

    /// Number of recorded edits (crashes count as one each, before
    /// expansion into edge removals).
    pub fn edit_count(&self) -> usize {
        self.add.len() + self.remove.len() + self.valuation.len() + self.crash.len()
    }
}

/// A finite multimodal Kripke model with degree-atom valuation.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, PortNumbering};
/// use portnum_logic::{Formula, Kripke, ModalIndex};
///
/// let g = generators::star(3);
/// let p = PortNumbering::consistent(&g);
/// let k = Kripke::k_mm(&g);
/// // "some neighbour has degree 3" holds exactly at the leaves.
/// let f = Formula::diamond(ModalIndex::Any, &Formula::prop(3));
/// assert_eq!(portnum_logic::evaluate(&k, &f)?, vec![false, true, true, true]);
/// # let _ = p;
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Kripke {
    variant: ModelVariant,
    degree: Vec<usize>,
    /// Modality indices with a (possibly empty) stored relation, sorted.
    index_keys: Vec<ModalIndex>,
    /// CSR relations, parallel to `index_keys`.
    relations: Vec<CsrRelation>,
    /// Lazily-built predecessor bit rows, parallel to `relations`.
    /// Derived data: excluded from equality, cloned along with the model.
    reverse: Vec<OnceLock<Stamped<BitMatrix>>>,
    /// Lazily-built CSC (reverse CSR) predecessor lists, parallel to
    /// `relations` — the sparse counterpart of `reverse`, usable at any
    /// model size. Derived data, like `reverse`.
    reverse_csc: Vec<OnceLock<Stamped<CscAdjacency>>>,
    /// Lazily-built CSC over the union of **all** relations — the shape
    /// the worklist refiner's dirty propagation wants on multi-relation
    /// models (single-relation models reuse `reverse_csc[0]` instead).
    /// Derived data, like `reverse`.
    reverse_csc_combined: OnceLock<Stamped<CscAdjacency>>,
    /// Mutation counter: bumped by every non-empty
    /// [`Kripke::apply_delta`], `0` at construction. Detached caches
    /// ([`crate::plan::CheckerCache`]) record it to check resumability;
    /// the in-model caches above carry a matching stamp. Excluded from
    /// equality — it is history, not structure.
    version: u64,
    empty: Vec<u32>,
}

// The `reverse` cache is derived from `relations`, so two models are
// equal iff their declared parts are — comparing the cache would make
// equality depend on evaluation history.
impl PartialEq for Kripke {
    fn eq(&self, other: &Kripke) -> bool {
        self.variant == other.variant
            && self.degree == other.degree
            && self.index_keys == other.index_keys
            && self.relations == other.relations
    }
}

impl Eq for Kripke {}

impl Kripke {
    /// Builds the canonical CSR layout from per-index edge lists. `groups`
    /// is consumed in key order (it is a `BTreeMap`, so `index_keys` comes
    /// out sorted); pair order within a source is preserved.
    fn from_edge_groups(
        variant: ModelVariant,
        degree: Vec<usize>,
        groups: BTreeMap<ModalIndex, Vec<(usize, usize)>>,
    ) -> Kripke {
        let n = degree.len();
        assert!(n <= u32::MAX as usize, "Kripke models are capped at 2^32 worlds");
        let mut index_keys = Vec::with_capacity(groups.len());
        let mut relations = Vec::with_capacity(groups.len());
        for (index, pairs) in groups {
            index_keys.push(index);
            relations.push(CsrRelation::from_pairs(n, &pairs));
        }
        let reverse = (0..relations.len()).map(|_| OnceLock::new()).collect();
        let reverse_csc = (0..relations.len()).map(|_| OnceLock::new()).collect();
        Kripke {
            variant,
            degree,
            index_keys,
            relations,
            reverse,
            reverse_csc,
            reverse_csc_combined: OnceLock::new(),
            version: 0,
            empty: Vec::new(),
        }
    }

    fn from_ports(
        g: &Graph,
        p: &PortNumbering,
        variant: ModelVariant,
        project: impl Fn(usize, usize) -> ModalIndex,
    ) -> Self {
        let mut groups: BTreeMap<ModalIndex, Vec<(usize, usize)>> = BTreeMap::new();
        for v in g.nodes() {
            for i in 0..g.degree(v) {
                let src = p.backward(Port::new(v, i));
                let index = project(i, src.index);
                groups.entry(index).or_default().push((v, src.node));
            }
        }
        Self::from_edge_groups(variant, g.degrees(), groups)
    }

    /// The model `K₊,₊(G, p)` with relations `R_(i,j)`.
    pub fn k_pp(g: &Graph, p: &PortNumbering) -> Self {
        Self::from_ports(g, p, ModelVariant::PlusPlus, ModalIndex::InOut)
    }

    /// The model `K₋,₊(G, p)` with relations `R_(*,j)`.
    pub fn k_mp(g: &Graph, p: &PortNumbering) -> Self {
        Self::from_ports(g, p, ModelVariant::MinusPlus, |_i, j| ModalIndex::Out(j))
    }

    /// The model `K₊,₋(G, p)` with relations `R_(i,*)`.
    pub fn k_pm(g: &Graph, p: &PortNumbering) -> Self {
        Self::from_ports(g, p, ModelVariant::PlusMinus, |i, _j| ModalIndex::In(i))
    }

    /// The model `K₋,₋(G)` with the single relation `R_(*,*)` (the edge set
    /// as a symmetric relation). Independent of the port numbering.
    pub fn k_mm(g: &Graph) -> Self {
        let mut pairs = Vec::with_capacity(2 * g.edge_count());
        for v in g.nodes() {
            pairs.extend(g.neighbors(v).iter().map(|&w| (v, w)));
        }
        let mut groups = BTreeMap::new();
        groups.insert(ModalIndex::Any, pairs);
        Self::from_edge_groups(ModelVariant::MinusMinus, g.degrees(), groups)
    }

    /// Builds a custom model from explicit parts (for hand-crafted logic
    /// tests). All relation indices must belong to `variant`'s family, and
    /// all successor ids must be `< degree.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::FamilyMismatch`] or
    /// [`LogicError::WorldOutOfRange`] on malformed input.
    pub fn from_parts(
        variant: ModelVariant,
        degree: Vec<usize>,
        relations: BTreeMap<ModalIndex, Vec<Vec<usize>>>,
    ) -> Result<Self, LogicError> {
        let n = degree.len();
        let mut groups: BTreeMap<ModalIndex, Vec<(usize, usize)>> = BTreeMap::new();
        for (&index, rows) in &relations {
            if index.family() != variant.family() {
                return Err(LogicError::FamilyMismatch {
                    expected: variant.family(),
                    found: index.family(),
                });
            }
            if rows.len() != n || rows.iter().flatten().any(|&w| w >= n) {
                return Err(LogicError::WorldOutOfRange);
            }
            let pairs = groups.entry(index).or_default();
            for (v, row) in rows.iter().enumerate() {
                pairs.extend(row.iter().map(|&w| (v, w)));
            }
        }
        Ok(Self::from_edge_groups(variant, degree, groups))
    }

    /// The model variant.
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.degree.len()
    }

    /// Returns `true` if the model has no worlds.
    pub fn is_empty(&self) -> bool {
        self.degree.is_empty()
    }

    /// The degree recorded at world `v` (its valuation: `q_d` holds iff
    /// `degree(v) = d`).
    pub fn degree(&self, v: usize) -> usize {
        self.degree[v]
    }

    /// All world degrees as a slice — the whole valuation at once, for
    /// bulk sweeps (the plan executor's chunked `Prop` fill reads this
    /// instead of calling [`Kripke::degree`] per world).
    pub fn degrees(&self) -> &[usize] {
        &self.degree
    }

    /// Successors of `v` under the relation for `index` (empty if the
    /// relation does not occur in the model), as `u32` world ids.
    pub fn successors(&self, v: usize, index: ModalIndex) -> &[u32] {
        match self.index_keys.binary_search(&index) {
            Ok(r) => self.relations[r].row(v),
            Err(_) => &self.empty,
        }
    }

    /// The modality indices with stored relations, in sorted order.
    pub fn indices(&self) -> impl Iterator<Item = ModalIndex> + '_ {
        self.index_keys.iter().copied()
    }

    /// Number of stored relations (dense ids are `0..relation_count()`).
    pub fn relation_count(&self) -> usize {
        self.index_keys.len()
    }

    /// The dense relation id for `index`, if the relation is stored.
    /// Resolve once, then walk worlds with [`Kripke::successors_dense`] —
    /// cheaper than per-world [`Kripke::successors`] lookups.
    pub fn relation_id(&self, index: ModalIndex) -> Option<usize> {
        self.index_keys.binary_search(&index).ok()
    }

    /// The modality index of dense relation `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.relation_count()`.
    pub fn relation_index(&self, r: usize) -> ModalIndex {
        self.index_keys[r]
    }

    /// Successors of `v` under dense relation id `r` — the hot-path
    /// variant of [`Kripke::successors`] that skips the index lookup.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.relation_count()` or `v >= self.len()`.
    #[inline]
    pub fn successors_dense(&self, r: usize, v: usize) -> &[u32] {
        self.relations[r].row(v)
    }

    /// Total number of stored successor pairs across all relations —
    /// the refinement engine's per-round signature encode work.
    pub fn relation_entry_count(&self) -> usize {
        self.relations.iter().map(|rel| rel.targets.len()).sum()
    }

    /// The raw CSR arrays of dense relation id `r`: successors of `v` are
    /// `targets[offsets[v]..offsets[v + 1]]`. For loops over *all* worlds
    /// (the model checker's diamond evaluation) this beats per-world
    /// [`Kripke::successors_dense`] calls: the relation is resolved once
    /// and a sequential scan can carry `offsets[v + 1]` over as the next
    /// row's start.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.relation_count()`.
    #[inline]
    pub fn relation_rows(&self, r: usize) -> (&[usize], &[u32]) {
        let rel = &self.relations[r];
        (&rel.offsets, &rel.targets)
    }

    /// All stored relations as borrowed CSR slices, in dense-id order —
    /// the input shape of the worklist refinement engine
    /// ([`portnum_graph::partition::WorklistRefiner`]). No copies: the
    /// slices alias the model's own arrays.
    pub fn relations_csr(&self) -> Vec<RelationCsr<'_>> {
        self.relations
            .iter()
            .map(|rel| RelationCsr { offsets: &rel.offsets, targets: &rel.targets })
            .collect()
    }

    /// The predecessor bit rows of dense relation `r`: row `w` holds the
    /// set `{ v : w ∈ successors(v) }`, packed as a bit row directly
    /// OR-able into a [`portnum_graph::bitset::Bitset`] over the worlds.
    ///
    /// Built lazily from the forward CSR on first call and cached for
    /// the lifetime of the model (a clone carries any already-built
    /// rows). Costs n²/8 bytes per materialised relation, which is why
    /// the model checker gates the reverse diamond path on a footprint
    /// cap before calling this.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.relation_count()`.
    /// # Atomicity
    ///
    /// The store is a `OnceLock`: a panic inside the build closure (the
    /// `dense-build` chaos site below) leaves the lock *uninitialised*,
    /// not poisoned or torn — the next caller simply rebuilds. Torn
    /// publication is impossible by construction, which is what lets an
    /// interrupted query retry bit-identically.
    pub fn predecessor_rows(&self, r: usize) -> &BitMatrix {
        let stamped = self.reverse[r].get_or_init(|| {
            fail::fail_point!("dense-build");
            let n = self.len();
            let mut m = BitMatrix::zeros(n, n);
            let (offsets, targets) = self.relation_rows(r);
            let mut start = offsets[0];
            for v in 0..n {
                let end = offsets[v + 1];
                for &w in &targets[start..end] {
                    m.insert(w as usize, v);
                }
                start = end;
            }
            Stamped { built_at: self.version, value: m }
        });
        debug_assert_eq!(
            stamped.built_at, self.version,
            "stale dense predecessor cache for relation {r}"
        );
        &stamped.value
    }

    /// Number of `u64` words a predecessor matrix of this model costs
    /// (per relation) — the quantity the evaluator's reverse-path cap
    /// compares against, without forcing the build.
    pub fn predecessor_matrix_words(&self) -> usize {
        self.len() * self.len().div_ceil(64)
    }

    /// The CSC (reverse CSR) predecessor lists of dense relation `r`:
    /// `row(w)` is the list `{ v : w ∈ successors(v) }`, one entry per
    /// stored edge, sorted ascending.
    ///
    /// The sparse counterpart of [`Kripke::predecessor_rows`]: `O(n +
    /// edges)` memory instead of n² bits, so the evaluator's reverse
    /// diamond path (the CSC gather, including graded counting) works
    /// at **any** model size — this is what keeps reverse evaluation
    /// reachable beyond [`REVERSE_WORD_CAP`](crate::plan::REVERSE_WORD_CAP).
    /// Built lazily from the forward CSR on first call and cached for
    /// the lifetime of the model (a clone carries any already-built
    /// stores). The worklist refinement engine shares this exact store
    /// for its dirty-frontier propagation, so evaluator and refiner
    /// build the inverse at most once between them.
    ///
    /// Atomicity is as [`Kripke::predecessor_rows`]: the `OnceLock`
    /// plus the `csc-build` chaos site inside the builder pin that an
    /// interrupted build publishes nothing (rebuild on retry, never a
    /// torn store).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.relation_count()`.
    pub fn predecessors_csc(&self, r: usize) -> &CscAdjacency {
        let stamped = self.reverse_csc[r].get_or_init(|| {
            let (offsets, targets) = self.relation_rows(r);
            Stamped { built_at: self.version, value: CscAdjacency::from_csr(self.len(), offsets, targets) }
        });
        debug_assert_eq!(
            stamped.built_at, self.version,
            "stale CSC predecessor cache for relation {r}"
        );
        &stamped.value
    }

    /// The CSC predecessor lists of the **union of all relations** —
    /// "who can see `w` under any modality", the shape the worklist
    /// refinement engine's dirty propagation consumes
    /// ([`portnum_graph::partition::WorklistRefiner::share_reverse_adjacency`]).
    ///
    /// Lazy and cached like [`Kripke::predecessors_csc`]; on
    /// single-relation models (`K₋,₋`, 1-relation customs — exactly the
    /// models that get huge) it *is* the per-relation store, so the
    /// refiner and the evaluator's reverse diamonds share one build.
    /// Multi-relation models keep a separate combined store (one row
    /// lookup per moved world beats per-relation probing when `K₊,₊`
    /// carries O(Δ²) mostly-empty relations), amortised across every
    /// refinement run on the model.
    pub fn combined_predecessors_csc(&self) -> &CscAdjacency {
        if self.relation_count() == 1 {
            return self.predecessors_csc(0);
        }
        let stamped = self.reverse_csc_combined.get_or_init(|| Stamped {
            built_at: self.version,
            value: CscAdjacency::from_relations(self.len(), &self.relations_csr()),
        });
        debug_assert_eq!(stamped.built_at, self.version, "stale combined CSC predecessor cache");
        &stamped.value
    }

    /// The model's mutation counter: `0` at construction, bumped by
    /// every non-empty [`Kripke::apply_delta`]. Derived caches — the
    /// in-model predecessor stores and detached
    /// [`crate::plan::CheckerCache`]s — record the version they were
    /// built against; a mismatch means the cache is stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The dense relation id a delta edit on `index` targets.
    fn edit_relation(&self, index: ModalIndex) -> Result<usize, LogicError> {
        if index.family() != self.variant.family() {
            return Err(LogicError::FamilyMismatch {
                expected: self.variant.family(),
                found: index.family(),
            });
        }
        self.relation_id(index).ok_or(LogicError::NoSuchRelation)
    }

    /// Applies `delta` atomically: validates every edit up front (a
    /// rejected delta leaves the model and its caches untouched), then
    /// patches the forward CSR rows in place where row lengths permit
    /// (one splice otherwise), **repairs** the already-built derived
    /// caches instead of dropping them — dense predecessor bits are
    /// re-checked per edited pair, per-relation CSC rows are patched via
    /// [`CscAdjacency::apply_edits`], only the multi-relation combined
    /// CSC is invalidated for lazy rebuild — bumps [`Kripke::version`],
    /// and returns the sorted, deduplicated set of **touched worlds**:
    /// every endpoint of an edited edge, every world whose recorded
    /// degree changed or was explicitly set, and every crashed world.
    ///
    /// The touched set is the contract consumed by the repair layers:
    /// a world outside it has its exact pre-delta valuation and forward
    /// row ([`crate::plan::ModelChecker::resume`] and
    /// [`crate::bisim::refine_fixpoint_from`] rely on precisely this).
    ///
    /// Degrees track the canonical invariant `degree(v) = ` total
    /// out-degree: each source's recorded degree is adjusted by its net
    /// out-degree change (saturating at zero for hand-crafted models
    /// whose valuation is decoupled from the rows), then explicit
    /// [`ModelDelta::set_valuation`] overrides are applied.
    ///
    /// # Errors
    ///
    /// [`LogicError::FamilyMismatch`] for an edit on a modality outside
    /// the variant's family, [`LogicError::NoSuchRelation`] for one
    /// with no stored relation, [`LogicError::WorldOutOfRange`] for any
    /// world id `>= self.len()`, and [`LogicError::EdgeNotPresent`] if
    /// removals (explicit or crash-expanded) exceed an edge's stored
    /// multiplicity.
    pub fn apply_delta(&mut self, delta: &ModelDelta) -> Result<Vec<u32>, LogicError> {
        if delta.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.len();
        let in_range = |w: u32| (w as usize) < n;

        // ---- Validation and lowering, before any mutation. ----
        let rel_count = self.relation_count();
        let mut adds: Vec<Vec<(u32, u32)>> = vec![Vec::new(); rel_count];
        let mut removes: Vec<Vec<(u32, u32)>> = vec![Vec::new(); rel_count];
        for &(index, v, w) in &delta.add {
            if !in_range(v) || !in_range(w) {
                return Err(LogicError::WorldOutOfRange);
            }
            adds[self.edit_relation(index)?].push((v, w));
        }
        for &(index, v, w) in &delta.remove {
            if !in_range(v) || !in_range(w) {
                return Err(LogicError::WorldOutOfRange);
            }
            removes[self.edit_relation(index)?].push((v, w));
        }
        if delta.valuation.iter().any(|&(v, _)| !in_range(v)) || !delta.crash.iter().all(|&c| in_range(c)) {
            return Err(LogicError::WorldOutOfRange);
        }

        // Expand crashes into edge removals against the pre-delta rows.
        let mut crash = delta.crash.clone();
        crash.sort_unstable();
        crash.dedup();
        if !crash.is_empty() {
            let mut crashed = vec![false; n];
            for &c in &crash {
                crashed[c as usize] = true;
            }
            for (r, removes) in removes.iter_mut().enumerate() {
                // Out-edges come from the crashed worlds' own rows; in-
                // edges from surviving sources only, so an edge between
                // two crashed worlds (or a self-loop) is removed once.
                for &c in &crash {
                    for &w in self.relations[r].row(c as usize) {
                        removes.push((c, w));
                    }
                }
                match self.reverse_csc[r].get() {
                    // An already-built (hence fresh) CSC answers
                    // "who sees c" directly.
                    Some(st) => {
                        for &c in &crash {
                            for &v in st.value.row(c as usize) {
                                if !crashed[v as usize] {
                                    removes.push((v, c));
                                }
                            }
                        }
                    }
                    // Otherwise one pass over the relation.
                    None => {
                        for v in 0..n {
                            if crashed[v] {
                                continue;
                            }
                            for &w in self.relations[r].row(v) {
                                if crashed[w as usize] {
                                    removes.push((v as u32, w));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Removals must not exceed stored multiplicities.
        for (r, removes) in removes.iter().enumerate() {
            if removes.is_empty() {
                continue;
            }
            let mut need = removes.clone();
            need.sort_unstable();
            let mut i = 0;
            while i < need.len() {
                let (v, w) = need[i];
                let mut count = 1;
                while i + count < need.len() && need[i + count] == (v, w) {
                    count += 1;
                }
                let stored = self.relations[r].row(v as usize).iter().filter(|&&t| t == w).count();
                if stored < count {
                    return Err(LogicError::EdgeNotPresent);
                }
                i += count;
            }
        }

        // ---- Mutation (infallible from here on). ----
        let mut touched: Vec<u32> = Vec::new();
        let mut net: BTreeMap<u32, isize> = BTreeMap::new();
        for r in 0..rel_count {
            for &(v, w) in &adds[r] {
                *net.entry(v).or_default() += 1;
                touched.push(v);
                touched.push(w);
            }
            for &(v, w) in &removes[r] {
                *net.entry(v).or_default() -= 1;
                touched.push(v);
                touched.push(w);
            }
        }
        let next_version = self.version + 1;
        for r in 0..rel_count {
            let edited = !(adds[r].is_empty() && removes[r].is_empty());
            if edited {
                self.relations[r].apply_edits(n, &adds[r], &removes[r]);
            }
            // Patch the built caches against the *post-edit* rows; a
            // cache an untouched relation built stays valid, so only
            // its stamp advances.
            if let Some(st) = self.reverse[r].get_mut() {
                if edited {
                    for &(v, w) in adds[r].iter().chain(&removes[r]) {
                        let present = self.relations[r].row(v as usize).contains(&w);
                        st.value.set(w as usize, v as usize, present);
                    }
                }
                st.built_at = next_version;
            }
            if let Some(st) = self.reverse_csc[r].get_mut() {
                if edited {
                    st.value.apply_edits(&adds[r], &removes[r]);
                }
                st.built_at = next_version;
            }
        }
        let any_edges = (0..rel_count).any(|r| !adds[r].is_empty() || !removes[r].is_empty());
        if any_edges && rel_count > 1 {
            // The combined store is relation-major, so a flat edit batch
            // cannot target the right span: invalidate, rebuild lazily.
            self.reverse_csc_combined.take();
        } else if let Some(st) = self.reverse_csc_combined.get_mut() {
            st.built_at = next_version;
        }
        for (&v, &d) in &net {
            if d != 0 {
                self.degree[v as usize] =
                    (self.degree[v as usize] as isize + d).max(0) as usize;
            }
        }
        for &(v, d) in &delta.valuation {
            self.degree[v as usize] = d;
            touched.push(v);
        }
        touched.extend_from_slice(&crash);
        self.version = next_version;
        touched.sort_unstable();
        touched.dedup();
        Ok(touched)
    }

    /// Disjoint union with another model of the same variant; worlds of
    /// `other` are shifted by `self.len()`.
    ///
    /// Bisimilarity *across* two models is bisimilarity of the shifted
    /// worlds inside the union — the standard trick used by the separation
    /// proofs.
    ///
    /// # Panics
    ///
    /// Panics if the variants differ.
    pub fn disjoint_union(&self, other: &Kripke) -> Kripke {
        assert_eq!(self.variant, other.variant, "variants must match");
        let offset = self.len();
        let n = offset + other.len();
        assert!(n <= u32::MAX as usize, "Kripke models are capped at 2^32 worlds");
        let mut degree = self.degree.clone();
        degree.extend_from_slice(&other.degree);

        // Merge the two sorted key lists, stitching CSR rows together:
        // `self`'s rows verbatim, then `other`'s rows shifted.
        let mut index_keys = Vec::new();
        let mut relations = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.index_keys.len() || b < other.index_keys.len() {
            let take_a = match (self.index_keys.get(a), other.index_keys.get(b)) {
                (Some(&ka), Some(&kb)) if ka == kb => {
                    index_keys.push(ka);
                    relations.push(Self::union_relation(
                        n,
                        offset,
                        Some(&self.relations[a]),
                        Some(&other.relations[b]),
                    ));
                    a += 1;
                    b += 1;
                    continue;
                }
                (Some(&ka), Some(&kb)) => ka < kb,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition"),
            };
            if take_a {
                index_keys.push(self.index_keys[a]);
                relations.push(Self::union_relation(n, offset, Some(&self.relations[a]), None));
                a += 1;
            } else {
                index_keys.push(other.index_keys[b]);
                relations.push(Self::union_relation(n, offset, None, Some(&other.relations[b])));
                b += 1;
            }
        }
        let reverse = (0..relations.len()).map(|_| OnceLock::new()).collect();
        let reverse_csc = (0..relations.len()).map(|_| OnceLock::new()).collect();
        Kripke {
            variant: self.variant,
            degree,
            index_keys,
            relations,
            reverse,
            reverse_csc,
            reverse_csc_combined: OnceLock::new(),
            version: 0,
            empty: Vec::new(),
        }
    }

    /// A CSR relation over `n` worlds holding `left`'s rows for worlds
    /// `0..offset` and `right`'s rows (targets shifted by `offset`) after.
    fn union_relation(
        n: usize,
        offset: usize,
        left: Option<&CsrRelation>,
        right: Option<&CsrRelation>,
    ) -> CsrRelation {
        let left_len = left.map_or(0, |r| r.targets.len());
        let right_len = right.map_or(0, |r| r.targets.len());
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(left_len + right_len);
        offsets.push(0);
        for v in 0..offset {
            if let Some(rel) = left {
                targets.extend_from_slice(rel.row(v));
            }
            offsets.push(targets.len());
        }
        for v in 0..n - offset {
            if let Some(rel) = right {
                targets.extend(rel.row(v).iter().map(|&w| w + offset as u32));
            }
            offsets.push(targets.len());
        }
        CsrRelation { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::generators;

    #[test]
    fn k_pp_reconstructs_port_structure() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let k = Kripke::k_pp(&g, &p);
        // Every in-port of every node yields exactly one successor, so the
        // total relation size equals the number of ports = 2|E|.
        let total: usize =
            k.indices().map(|i| (0..k.len()).map(|v| k.successors(v, i).len()).sum::<usize>()).sum();
        assert_eq!(total, 2 * g.edge_count());
        assert_eq!(k.variant(), ModelVariant::PlusPlus);
    }

    #[test]
    fn k_mm_is_adjacency() {
        let g = generators::cycle(4);
        let k = Kripke::k_mm(&g);
        for v in g.nodes() {
            let widened: Vec<usize> =
                k.successors(v, ModalIndex::Any).iter().map(|&w| w as usize).collect();
            assert_eq!(widened, g.neighbors(v));
        }
        assert_eq!(k.degree(0), 2);
    }

    #[test]
    fn variants_project_the_same_edges() {
        use rand::SeedableRng;
        let g = generators::petersen();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let p = PortNumbering::random(&g, &mut rng);
        let pp = Kripke::k_pp(&g, &p);
        let mp = Kripke::k_mp(&g, &p);
        let pm = Kripke::k_pm(&g, &p);
        let mm = Kripke::k_mm(&g);
        let count = |k: &Kripke| -> usize {
            k.indices()
                .map(|i| (0..k.len()).map(|v| k.successors(v, i).len()).sum::<usize>())
                .sum()
        };
        assert_eq!(count(&pp), count(&mp));
        assert_eq!(count(&mp), count(&pm));
        assert_eq!(count(&pm), count(&mm));
    }

    #[test]
    fn from_parts_validates() {
        let mut rel = BTreeMap::new();
        rel.insert(ModalIndex::Any, vec![vec![1], vec![0]]);
        assert!(Kripke::from_parts(ModelVariant::MinusMinus, vec![1, 1], rel.clone()).is_ok());
        assert_eq!(
            Kripke::from_parts(ModelVariant::PlusPlus, vec![1, 1], rel).unwrap_err(),
            LogicError::FamilyMismatch {
                expected: IndexFamily::InOut,
                found: IndexFamily::Any
            }
        );
        let mut bad = BTreeMap::new();
        bad.insert(ModalIndex::Any, vec![vec![5], vec![0]]);
        assert_eq!(
            Kripke::from_parts(ModelVariant::MinusMinus, vec![1, 1], bad).unwrap_err(),
            LogicError::WorldOutOfRange
        );
    }

    #[test]
    fn disjoint_union_offsets_relations() {
        let a = Kripke::k_mm(&generators::cycle(3));
        let b = Kripke::k_mm(&generators::path(2));
        let u = a.disjoint_union(&b);
        assert_eq!(u.len(), 5);
        assert_eq!(u.successors(3, ModalIndex::Any), &[4]);
        assert_eq!(u.successors(0, ModalIndex::Any), &[1, 2]);
        assert_eq!(u.degree(4), 1);
    }

    #[test]
    fn disjoint_union_merges_distinct_index_sets() {
        // Models over the same variant can store different port indices;
        // the union must keep both sides' relations intact.
        let g3 = generators::star(3);
        let g1 = generators::path(2);
        let p3 = PortNumbering::consistent(&g3);
        let p1 = PortNumbering::consistent(&g1);
        let a = Kripke::k_pm(&g3, &p3); // indices In(0..3)
        let b = Kripke::k_pm(&g1, &p1); // indices In(0)
        let u = a.disjoint_union(&b);
        for v in 0..a.len() {
            for i in 0..4 {
                assert_eq!(u.successors(v, ModalIndex::In(i)), a.successors(v, ModalIndex::In(i)));
            }
        }
        let shifted: Vec<u32> =
            b.successors(0, ModalIndex::In(0)).iter().map(|&w| w + a.len() as u32).collect();
        assert_eq!(u.successors(a.len(), ModalIndex::In(0)), shifted);
    }

    #[test]
    fn dense_accessors_match_indexed_access() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        for k in [Kripke::k_pp(&g, &p), Kripke::k_mp(&g, &p), Kripke::k_pm(&g, &p)] {
            assert_eq!(k.relation_count(), k.indices().count());
            for r in 0..k.relation_count() {
                let index = k.relation_index(r);
                for v in 0..k.len() {
                    assert_eq!(k.successors_dense(r, v), k.successors(v, index));
                }
            }
        }
    }

    #[test]
    fn predecessor_rows_invert_the_forward_csr() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        for k in [Kripke::k_pp(&g, &p), Kripke::k_mp(&g, &p), Kripke::k_mm(&g)] {
            for r in 0..k.relation_count() {
                let m = k.predecessor_rows(r);
                assert_eq!(m.row_count(), k.len());
                assert_eq!(m.col_count(), k.len());
                for v in 0..k.len() {
                    for w in 0..k.len() {
                        let forward = k.successors_dense(r, v).contains(&(w as u32));
                        assert_eq!(m.get(w, v), forward, "relation {r}, edge ({v},{w})");
                    }
                }
            }
            // The cache survives cloning and does not affect equality.
            let copy = k.clone();
            assert_eq!(copy, k);
            assert_eq!(copy.predecessor_rows(0), k.predecessor_rows(0));
        }
    }

    #[test]
    fn csc_rows_invert_the_forward_csr() {
        // Mirror of `predecessor_rows_invert_the_forward_csr` for the
        // sparse store: csc.row(w) is exactly { v : w ∈ succ(v) },
        // sorted ascending, with one entry per stored edge.
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        for k in [Kripke::k_pp(&g, &p), Kripke::k_mp(&g, &p), Kripke::k_mm(&g)] {
            for r in 0..k.relation_count() {
                let csc = k.predecessors_csc(r);
                assert_eq!(csc.node_count(), k.len());
                let dense = k.predecessor_rows(r);
                for w in 0..k.len() {
                    let mut expect: Vec<u32> = Vec::new();
                    for v in 0..k.len() {
                        let copies =
                            k.successors_dense(r, v).iter().filter(|&&t| t as usize == w).count();
                        expect.extend(std::iter::repeat_n(v as u32, copies));
                    }
                    assert_eq!(csc.row(w), expect.as_slice(), "relation {r}, world {w}");
                    assert_eq!(csc.row_len(w), expect.len());
                    // CSC and dense rows describe the same predecessor
                    // set (dense collapses multiplicities).
                    for v in 0..k.len() {
                        assert_eq!(dense.get(w, v), expect.contains(&(v as u32)));
                    }
                }
            }
            // The cache survives cloning and does not affect equality.
            let copy = k.clone();
            assert_eq!(copy, k);
            assert_eq!(copy.predecessors_csc(0), k.predecessors_csc(0));
        }
    }

    #[test]
    fn combined_csc_unions_all_relations() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        // Single-relation models share one store between the refiner's
        // combined view and the evaluator's per-relation view.
        let mm = Kripke::k_mm(&g);
        assert!(std::ptr::eq(mm.combined_predecessors_csc(), mm.predecessors_csc(0)));
        // Multi-relation models: the combined row of `w` is the
        // concatenation of its per-relation rows (relation-major).
        let pp = Kripke::k_pp(&g, &p);
        assert!(pp.relation_count() > 1);
        let combined = pp.combined_predecessors_csc();
        for w in 0..pp.len() {
            let expect: Vec<u32> = (0..pp.relation_count())
                .flat_map(|r| pp.predecessors_csc(r).row(w).to_vec())
                .collect();
            assert_eq!(combined.row(w), expect.as_slice(), "world {w}");
        }
        let total: usize =
            (0..pp.relation_count()).map(|r| pp.predecessors_csc(r).entry_count()).sum();
        assert_eq!(combined.entry_count(), total);
    }

    /// A cache-free reconstruction of `k` from its declared parts.
    fn rebuilt(k: &Kripke) -> Kripke {
        let mut rels: BTreeMap<ModalIndex, Vec<Vec<usize>>> = BTreeMap::new();
        for r in 0..k.relation_count() {
            let rows = (0..k.len())
                .map(|v| k.successors_dense(r, v).iter().map(|&w| w as usize).collect())
                .collect();
            rels.insert(k.relation_index(r), rows);
        }
        Kripke::from_parts(k.variant(), k.degrees().to_vec(), rels).unwrap()
    }

    #[test]
    fn apply_delta_patches_rows_degrees_and_version() {
        let mut k = Kripke::k_mm(&generators::path(5));
        let mut delta = ModelDelta::new();
        delta
            .remove_edge(ModalIndex::Any, 1, 2)
            .remove_edge(ModalIndex::Any, 2, 1)
            .add_edge(ModalIndex::Any, 0, 4)
            .add_edge(ModalIndex::Any, 4, 0);
        let touched = k.apply_delta(&delta).unwrap();
        assert_eq!(touched, vec![0, 1, 2, 4]);
        assert_eq!(k.version(), 1);
        assert_eq!(k.successors(1, ModalIndex::Any), &[0]);
        assert_eq!(k.successors(0, ModalIndex::Any), &[1, 4]);
        assert_eq!(k.degrees(), &[2, 1, 1, 2, 2]);
        // The patched model is Eq-identical to one rebuilt from its rows.
        assert_eq!(k, rebuilt(&k));
        // An empty delta is free: no version bump, no touched worlds.
        assert_eq!(k.apply_delta(&ModelDelta::new()).unwrap(), Vec::<u32>::new());
        assert_eq!(k.version(), 1);
    }

    #[test]
    fn apply_delta_repairs_built_caches() {
        // Build every cache shape first, on a multi-relation model, and
        // check the patched caches against a cache-free rebuild.
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let mut k = Kripke::k_pp(&g, &p);
        let index = k.relation_index(0);
        let (v, &w) = (0..k.len())
            .find_map(|v| k.successors_dense(0, v).first().map(|w| (v, w)))
            .expect("relation 0 has an edge");
        for r in 0..k.relation_count() {
            k.predecessor_rows(r);
            k.predecessors_csc(r);
        }
        k.combined_predecessors_csc();
        let mut delta = ModelDelta::new();
        delta.remove_edge(index, v as u32, w).add_edge(index, w, v as u32);
        k.apply_delta(&delta).unwrap();
        let fresh = rebuilt(&k);
        assert_eq!(k, fresh);
        for r in 0..k.relation_count() {
            assert_eq!(k.predecessor_rows(r), fresh.predecessor_rows(r), "dense rows, rel {r}");
            assert_eq!(k.predecessors_csc(r), fresh.predecessors_csc(r), "csc rows, rel {r}");
        }
        assert_eq!(k.combined_predecessors_csc(), fresh.combined_predecessors_csc());
    }

    #[test]
    fn apply_delta_crash_isolates_worlds() {
        let mut k = Kripke::k_mm(&generators::star(3));
        // Warm the caches so the crash path exercises cache repair too.
        k.predecessor_rows(0);
        k.predecessors_csc(0);
        let mut delta = ModelDelta::new();
        delta.crash_world(0).crash_world(0); // duplicate crashes are one crash
        let touched = k.apply_delta(&delta).unwrap();
        assert_eq!(touched, vec![0, 1, 2, 3]);
        for v in 0..4 {
            assert!(k.successors(v, ModalIndex::Any).is_empty(), "world {v}");
            assert_eq!(k.degree(v), 0);
        }
        let fresh = rebuilt(&k);
        assert_eq!(k.predecessor_rows(0), fresh.predecessor_rows(0));
        assert_eq!(k.predecessors_csc(0), fresh.predecessors_csc(0));
    }

    #[test]
    fn apply_delta_respects_multiplicity() {
        let mut rel = BTreeMap::new();
        rel.insert(ModalIndex::Any, vec![vec![1, 1], vec![]]);
        let mut k = Kripke::from_parts(ModelVariant::MinusMinus, vec![2, 0], rel).unwrap();
        k.predecessor_rows(0);
        let mut delta = ModelDelta::new();
        delta.remove_edge(ModalIndex::Any, 0, 1);
        k.apply_delta(&delta).unwrap();
        // One copy of the double edge remains: the dense bit stays set.
        assert_eq!(k.successors(0, ModalIndex::Any), &[1]);
        assert!(k.predecessor_rows(0).get(1, 0));
        k.apply_delta(&delta).unwrap();
        assert!(k.successors(0, ModalIndex::Any).is_empty());
        assert!(!k.predecessor_rows(0).get(1, 0));
        // A third removal has nothing left to remove.
        assert_eq!(k.apply_delta(&delta).unwrap_err(), LogicError::EdgeNotPresent);
    }

    #[test]
    fn apply_delta_is_atomic_on_rejection() {
        let mut k = Kripke::k_mm(&generators::cycle(4));
        let before = k.clone();
        let mut delta = ModelDelta::new();
        // A valid removal followed by an invalid one: nothing applies.
        delta.remove_edge(ModalIndex::Any, 0, 1).remove_edge(ModalIndex::Any, 0, 2);
        assert_eq!(k.apply_delta(&delta).unwrap_err(), LogicError::EdgeNotPresent);
        assert_eq!(k, before);
        assert_eq!(k.version(), 0);
        let mut oob = ModelDelta::new();
        oob.add_edge(ModalIndex::Any, 0, 9);
        assert_eq!(k.apply_delta(&oob).unwrap_err(), LogicError::WorldOutOfRange);
        let mut crash_oob = ModelDelta::new();
        crash_oob.crash_world(9);
        assert_eq!(k.apply_delta(&crash_oob).unwrap_err(), LogicError::WorldOutOfRange);
        assert_eq!(k, before);
    }

    #[test]
    fn apply_delta_rejects_foreign_and_missing_relations() {
        let g = generators::cycle(3);
        let p = PortNumbering::consistent(&g);
        let mut k = Kripke::k_pp(&g, &p);
        let mut foreign = ModelDelta::new();
        foreign.add_edge(ModalIndex::Any, 0, 1);
        assert_eq!(
            k.apply_delta(&foreign).unwrap_err(),
            LogicError::FamilyMismatch { expected: IndexFamily::InOut, found: IndexFamily::Any }
        );
        let mut missing = ModelDelta::new();
        missing.add_edge(ModalIndex::InOut(7, 7), 0, 1);
        assert_eq!(k.apply_delta(&missing).unwrap_err(), LogicError::NoSuchRelation);
        assert_eq!(k.version(), 0);
    }

    #[test]
    fn successors_of_missing_index_are_empty() {
        let k = Kripke::k_mm(&generators::cycle(3));
        assert!(k.successors(0, ModalIndex::Any).len() == 2);
        let kp = Kripke::k_pp(&generators::cycle(3), &PortNumbering::consistent(&generators::cycle(3)));
        assert!(kp.successors(0, ModalIndex::InOut(7, 7)).is_empty());
    }
}
