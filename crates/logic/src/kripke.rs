//! Kripke models, including the four canonical models `K_{a,b}(G, p)` of
//! Section 4.3.
//!
//! A port-numbered graph `(G, p)` induces accessibility relations
//!
//! ```text
//! R_(i,j) = { (v, w) : p((w, j)) = (v, i) }
//! ```
//!
//! (“`w`'s out-port `j` feeds `v`'s in-port `i`”), together with their
//! projections `R_(*,j)`, `R_(i,*)`, and `R_(*,*)`, and the valuation
//! `τ(q_d) = { v : deg(v) = d }`. The four models
//! `K₊,₊ / K₋,₊ / K₊,₋ / K₋,₋` expose exactly the information available to
//! the `Vector` / `Multiset`·`Set` / `Broadcast` / `MB`·`SB` algorithm
//! classes respectively (Figure 7).

use crate::error::LogicError;
use crate::formula::{IndexFamily, ModalIndex};
use portnum_graph::{Graph, Port, PortNumbering};
use std::collections::BTreeMap;

/// Which of the four canonical model variants a [`Kripke`] model is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// `K₊,₊`: relations `R_(i,j)` — full port information.
    PlusPlus,
    /// `K₋,₊`: relations `R_(*,j)` — sender's out-port only.
    MinusPlus,
    /// `K₊,₋`: relations `R_(i,*)` — receiver's in-port only.
    PlusMinus,
    /// `K₋,₋`: the single relation `R_(*,*)` — plain adjacency.
    MinusMinus,
}

impl ModelVariant {
    /// The index family whose modalities this variant interprets.
    pub fn family(self) -> IndexFamily {
        match self {
            ModelVariant::PlusPlus => IndexFamily::InOut,
            ModelVariant::MinusPlus => IndexFamily::Out,
            ModelVariant::PlusMinus => IndexFamily::In,
            ModelVariant::MinusMinus => IndexFamily::Any,
        }
    }
}

/// A finite multimodal Kripke model with degree-atom valuation.
///
/// # Examples
///
/// ```
/// use portnum_graph::{generators, PortNumbering};
/// use portnum_logic::{Formula, Kripke, ModalIndex};
///
/// let g = generators::star(3);
/// let p = PortNumbering::consistent(&g);
/// let k = Kripke::k_mm(&g);
/// // "some neighbour has degree 3" holds exactly at the leaves.
/// let f = Formula::diamond(ModalIndex::Any, &Formula::prop(3));
/// assert_eq!(portnum_logic::evaluate(&k, &f)?, vec![false, true, true, true]);
/// # let _ = p;
/// # Ok::<(), portnum_logic::LogicError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kripke {
    variant: ModelVariant,
    degree: Vec<usize>,
    relations: BTreeMap<ModalIndex, Vec<Vec<usize>>>,
    empty: Vec<usize>,
}

impl Kripke {
    fn from_ports(
        g: &Graph,
        p: &PortNumbering,
        variant: ModelVariant,
        project: impl Fn(usize, usize) -> ModalIndex,
    ) -> Self {
        let n = g.len();
        let mut relations: BTreeMap<ModalIndex, Vec<Vec<usize>>> = BTreeMap::new();
        for v in g.nodes() {
            for i in 0..g.degree(v) {
                let src = p.backward(Port::new(v, i));
                let index = project(i, src.index);
                relations.entry(index).or_insert_with(|| vec![Vec::new(); n])[v].push(src.node);
            }
        }
        Kripke { variant, degree: g.degrees(), relations, empty: Vec::new() }
    }

    /// The model `K₊,₊(G, p)` with relations `R_(i,j)`.
    pub fn k_pp(g: &Graph, p: &PortNumbering) -> Self {
        Self::from_ports(g, p, ModelVariant::PlusPlus, ModalIndex::InOut)
    }

    /// The model `K₋,₊(G, p)` with relations `R_(*,j)`.
    pub fn k_mp(g: &Graph, p: &PortNumbering) -> Self {
        Self::from_ports(g, p, ModelVariant::MinusPlus, |_i, j| ModalIndex::Out(j))
    }

    /// The model `K₊,₋(G, p)` with relations `R_(i,*)`.
    pub fn k_pm(g: &Graph, p: &PortNumbering) -> Self {
        Self::from_ports(g, p, ModelVariant::PlusMinus, |i, _j| ModalIndex::In(i))
    }

    /// The model `K₋,₋(G)` with the single relation `R_(*,*)` (the edge set
    /// as a symmetric relation). Independent of the port numbering.
    pub fn k_mm(g: &Graph) -> Self {
        let mut rel = vec![Vec::new(); g.len()];
        for v in g.nodes() {
            rel[v] = g.neighbors(v).to_vec();
        }
        let mut relations = BTreeMap::new();
        relations.insert(ModalIndex::Any, rel);
        Kripke {
            variant: ModelVariant::MinusMinus,
            degree: g.degrees(),
            relations,
            empty: Vec::new(),
        }
    }

    /// Builds a custom model from explicit parts (for hand-crafted logic
    /// tests). All relation indices must belong to `variant`'s family, and
    /// all successor ids must be `< degree.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::FamilyMismatch`] or
    /// [`LogicError::WorldOutOfRange`] on malformed input.
    pub fn from_parts(
        variant: ModelVariant,
        degree: Vec<usize>,
        relations: BTreeMap<ModalIndex, Vec<Vec<usize>>>,
    ) -> Result<Self, LogicError> {
        let n = degree.len();
        for (&index, rows) in &relations {
            if index.family() != variant.family() {
                return Err(LogicError::FamilyMismatch {
                    expected: variant.family(),
                    found: index.family(),
                });
            }
            if rows.len() != n || rows.iter().flatten().any(|&w| w >= n) {
                return Err(LogicError::WorldOutOfRange);
            }
        }
        Ok(Kripke { variant, degree, relations, empty: Vec::new() })
    }

    /// The model variant.
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// Number of worlds.
    pub fn len(&self) -> usize {
        self.degree.len()
    }

    /// Returns `true` if the model has no worlds.
    pub fn is_empty(&self) -> bool {
        self.degree.is_empty()
    }

    /// The degree recorded at world `v` (its valuation: `q_d` holds iff
    /// `degree(v) = d`).
    pub fn degree(&self, v: usize) -> usize {
        self.degree[v]
    }

    /// Successors of `v` under the relation for `index` (empty if the
    /// relation does not occur in the model).
    pub fn successors(&self, v: usize, index: ModalIndex) -> &[usize] {
        self.relations.get(&index).map_or(&self.empty, |rows| &rows[v])
    }

    /// The modality indices with nonempty relations, in sorted order.
    pub fn indices(&self) -> impl Iterator<Item = ModalIndex> + '_ {
        self.relations.keys().copied()
    }

    /// Disjoint union with another model of the same variant; worlds of
    /// `other` are shifted by `self.len()`.
    ///
    /// Bisimilarity *across* two models is bisimilarity of the shifted
    /// worlds inside the union — the standard trick used by the separation
    /// proofs.
    ///
    /// # Panics
    ///
    /// Panics if the variants differ.
    pub fn disjoint_union(&self, other: &Kripke) -> Kripke {
        assert_eq!(self.variant, other.variant, "variants must match");
        let offset = self.len();
        let n = offset + other.len();
        let mut degree = self.degree.clone();
        degree.extend_from_slice(&other.degree);
        let mut relations: BTreeMap<ModalIndex, Vec<Vec<usize>>> = BTreeMap::new();
        let all_keys: Vec<ModalIndex> =
            self.relations.keys().chain(other.relations.keys()).copied().collect();
        for index in all_keys {
            let entry = relations.entry(index).or_insert_with(|| vec![Vec::new(); n]);
            if let Some(rows) = self.relations.get(&index) {
                for (v, row) in rows.iter().enumerate() {
                    entry[v] = row.clone();
                }
            }
            if let Some(rows) = other.relations.get(&index) {
                for (v, row) in rows.iter().enumerate() {
                    entry[offset + v] = row.iter().map(|&w| w + offset).collect();
                }
            }
        }
        Kripke { variant: self.variant, degree, relations, empty: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use portnum_graph::generators;

    #[test]
    fn k_pp_reconstructs_port_structure() {
        let g = generators::figure1_graph();
        let p = PortNumbering::consistent(&g);
        let k = Kripke::k_pp(&g, &p);
        // Every in-port of every node yields exactly one successor, so the
        // total relation size equals the number of ports = 2|E|.
        let total: usize =
            k.indices().map(|i| (0..k.len()).map(|v| k.successors(v, i).len()).sum::<usize>()).sum();
        assert_eq!(total, 2 * g.edge_count());
        assert_eq!(k.variant(), ModelVariant::PlusPlus);
    }

    #[test]
    fn k_mm_is_adjacency() {
        let g = generators::cycle(4);
        let k = Kripke::k_mm(&g);
        for v in g.nodes() {
            assert_eq!(k.successors(v, ModalIndex::Any), g.neighbors(v));
        }
        assert_eq!(k.degree(0), 2);
    }

    #[test]
    fn variants_project_the_same_edges() {
        use rand::SeedableRng;
        let g = generators::petersen();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let p = PortNumbering::random(&g, &mut rng);
        let pp = Kripke::k_pp(&g, &p);
        let mp = Kripke::k_mp(&g, &p);
        let pm = Kripke::k_pm(&g, &p);
        let mm = Kripke::k_mm(&g);
        let count = |k: &Kripke| -> usize {
            k.indices()
                .map(|i| (0..k.len()).map(|v| k.successors(v, i).len()).sum::<usize>())
                .sum()
        };
        assert_eq!(count(&pp), count(&mp));
        assert_eq!(count(&mp), count(&pm));
        assert_eq!(count(&pm), count(&mm));
    }

    #[test]
    fn from_parts_validates() {
        let mut rel = BTreeMap::new();
        rel.insert(ModalIndex::Any, vec![vec![1], vec![0]]);
        assert!(Kripke::from_parts(ModelVariant::MinusMinus, vec![1, 1], rel.clone()).is_ok());
        assert_eq!(
            Kripke::from_parts(ModelVariant::PlusPlus, vec![1, 1], rel).unwrap_err(),
            LogicError::FamilyMismatch {
                expected: IndexFamily::InOut,
                found: IndexFamily::Any
            }
        );
        let mut bad = BTreeMap::new();
        bad.insert(ModalIndex::Any, vec![vec![5], vec![0]]);
        assert_eq!(
            Kripke::from_parts(ModelVariant::MinusMinus, vec![1, 1], bad).unwrap_err(),
            LogicError::WorldOutOfRange
        );
    }

    #[test]
    fn disjoint_union_offsets_relations() {
        let a = Kripke::k_mm(&generators::cycle(3));
        let b = Kripke::k_mm(&generators::path(2));
        let u = a.disjoint_union(&b);
        assert_eq!(u.len(), 5);
        assert_eq!(u.successors(3, ModalIndex::Any), &[4]);
        assert_eq!(u.successors(0, ModalIndex::Any), &[1, 2]);
        assert_eq!(u.degree(4), 1);
    }
}
