//! # portnum-logic
//!
//! The modal-logic side of Hella et al., “Weak models of distributed
//! computing, with connections to modal logic” (PODC 2012), Section 4:
//!
//! * [`Formula`] — one AST for ML, GML, MML, and GMML, with degree atoms
//!   `q_d`, graded diamonds `⟨α⟩≥k`, and the four modality index families;
//! * [`parse`] — a text syntax round-tripping with `Display`;
//! * [`Kripke`] — the canonical models `K₊,₊ / K₋,₊ / K₊,₋ / K₋,₋(G, p)`
//!   of Section 4.3, plus custom models;
//! * [`evaluate`]/[`evaluate_packed`] — a model checker over packed
//!   (`u64`-word) truth vectors, compiled per formula into a
//!   hash-consed [`plan::Plan`] with forward/reverse diamond selection;
//! * [`plan`] — compiled evaluation plans: suite-level lowering
//!   ([`plan::Plan::compile_suite`]) and the per-model
//!   [`plan::ModelChecker`] cache amortising suites formula by formula;
//! * [`bisim`] — plain and graded bisimulation via partition refinement,
//!   bounded or to fixpoint (Section 4.2, Fact 1), on the worklist or
//!   full-round engine (`PORTNUM_REFINE`, see
//!   [`portnum_graph::partition`]);
//! * [`characteristic`] — Hennessy–Milner characteristic formulas: the
//!   converse of Fact 1, one separating formula per inequivalent pair;
//! * [`quotient`]/[`minimum_base`] — bisimulation quotients (the
//!   Kripke-side minimum base of a fibration);
//! * [`simplify`]/[`nnf`] — extension-preserving formula transformations
//!   (constant folding, negation normal form);
//! * [`compile`] — both directions of Theorem 2: formulas become
//!   distributed algorithms in the *matching weak class* running in
//!   `md(ψ)` rounds, and finite-state algorithms become formulas.
//!
//! # Load-bearing invariants
//!
//! * **Level-aware slot recycling** ([`plan`]) — plan instructions are
//!   scheduled by DAG level and a truth-vector slot is recycled only
//!   one level after its last reader, so instructions of one level
//!   never alias each other's operands and a whole level can execute
//!   in parallel; peak memory is the DAG's width, not its size.
//! * **Retained formulas** ([`plan::ModelChecker`]) — checked formulas
//!   are kept alive so the pointer-identity memo can never observe a
//!   recycled allocation.
//! * **Identical round semantics across refinement engines**
//!   ([`bisim`]) — the worklist engine's partition after round `t`
//!   equals the synchronous round engine's depth-`t` partition
//!   (canonical first-seen ids), so `t`-step equivalence queries mean
//!   the same thing under either engine.
//!
//! # Quick start
//!
//! ```
//! use portnum_graph::{generators, PortNumbering};
//! use portnum_logic::{compile, evaluate, parse, Kripke};
//! use portnum_machine::{adapters::MbAsVector, Simulator};
//!
//! // "at least two of my neighbours have odd degree 1"
//! let psi = parse("<*,*>>=2 q1")?;
//!
//! // Model-check it...
//! let g = generators::star(4);
//! let k = Kripke::k_mm(&g);
//! let truth = evaluate(&k, &psi)?;
//!
//! // ...and run it as a distributed MB algorithm: same answer, and the
//! // running time equals the modal depth.
//! let algo = compile::compile_mb(&psi)?;
//! let p = PortNumbering::consistent(&g);
//! let run = Simulator::new().run(&MbAsVector(algo), &g, &p)?;
//! assert_eq!(run.outputs().to_vec(), truth);
//! assert_eq!(run.rounds(), psi.modal_depth());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisim;
mod characteristic;
pub mod compile;
mod error;
mod eval;
mod formula;
mod kripke;
mod parser;
pub mod plan;
mod quotient;
mod transform;

pub use characteristic::{characteristic, characteristic_formula, CharacteristicFormulas};
pub use error::{CompileError, LogicError, ParseError};
pub use eval::{evaluate, evaluate_packed, evaluate_packed_recursive, extension, satisfies};
pub use plan::{CheckerCache, DeltaOverride, DiamondMode, ModelChecker, Plan, RepairStats};
pub use formula::{Formula, FormulaKind, IndexFamily, ModalIndex};
pub use kripke::{Kripke, KripkeBuilder, ModelDelta, ModelVariant};
pub use parser::parse;
pub use quotient::{minimum_base, quotient};
pub use transform::{is_nnf, nnf, simplify};
