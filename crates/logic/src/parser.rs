//! A text syntax for formulas, round-tripping with `Display`.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula := or
//! or      := and ('|' and)*
//! and     := unary ('&' unary)*
//! unary   := '!' unary | '<' index '>' ['>=' NUM] unary | '[' index ']' unary | atom
//! atom    := 'true' | 'false' | 'q' NUM | '(' formula ')'
//! index   := NUM ',' NUM | '*' ',' NUM | NUM ',' '*' | '*' ',' '*'
//! ```
//!
//! Port indices are `0`-based. `[α]φ` is sugar for `!<α>!φ`.
//!
//! # Examples
//!
//! ```
//! use portnum_logic::parse;
//!
//! let f = parse("q2 & <*,*>>=2 q1")?;
//! assert_eq!(f.modal_depth(), 1);
//! let g = parse(&f.to_string())?;
//! assert_eq!(f, g);
//! # Ok::<(), portnum_logic::ParseError>(())
//! ```

use crate::error::ParseError;
use crate::formula::{Formula, ModalIndex};

/// Parses a formula from the textual syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending position.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let f = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError { position: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| self.error("number too large"))
    }

    fn keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            let after = self.pos + word.len();
            let boundary = self
                .bytes
                .get(after)
                .is_none_or(|b| !b.is_ascii_alphanumeric());
            if boundary {
                self.pos = after;
                return true;
            }
        }
        false
    }

    fn or_expr(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(b'|') {
            let right = self.and_expr()?;
            left = left.or(&right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.unary()?;
        while self.eat(b'&') {
            let right = self.unary()?;
            left = left.and(&right);
        }
        Ok(left)
    }

    fn index(&mut self, close: u8) -> Result<ModalIndex, ParseError> {
        let first_star = self.eat(b'*');
        let first = if first_star { None } else { Some(self.number()?) };
        self.expect(b',')?;
        let second_star = self.eat(b'*');
        let second = if second_star { None } else { Some(self.number()?) };
        self.expect(close)?;
        Ok(match (first, second) {
            (Some(i), Some(j)) => ModalIndex::InOut(i, j),
            (None, Some(j)) => ModalIndex::Out(j),
            (Some(i), None) => ModalIndex::In(i),
            (None, None) => ModalIndex::Any,
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(b'<') => {
                self.pos += 1;
                let index = self.index(b'>')?;
                let grade = if self.peek() == Some(b'>') {
                    self.pos += 1;
                    self.expect(b'=')?;
                    self.number()?
                } else {
                    1
                };
                let inner = self.unary()?;
                Ok(Formula::diamond_geq(index, grade, &inner))
            }
            Some(b'[') => {
                self.pos += 1;
                let index = self.index(b']')?;
                let inner = self.unary()?;
                Ok(Formula::box_(index, &inner))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        if self.keyword("true") {
            return Ok(Formula::top());
        }
        if self.keyword("false") {
            return Ok(Formula::bottom());
        }
        match self.peek() {
            Some(b'q') => {
                self.pos += 1;
                Ok(Formula::prop(self.number()?))
            }
            Some(b'(') => {
                self.pos += 1;
                let f = self.or_expr()?;
                self.expect(b')')?;
                Ok(f)
            }
            _ => Err(self.error("expected an atom, '!', '<', '[', or '('")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_connectives() {
        assert_eq!(parse("true").unwrap(), Formula::top());
        assert_eq!(parse("q7").unwrap(), Formula::prop(7));
        assert_eq!(parse("!q1").unwrap(), Formula::prop(1).not());
        assert_eq!(
            parse("q1 & q2 | q3").unwrap(),
            Formula::prop(1).and(&Formula::prop(2)).or(&Formula::prop(3))
        );
        assert_eq!(
            parse("q1 & (q2 | q3)").unwrap(),
            Formula::prop(1).and(&Formula::prop(2).or(&Formula::prop(3)))
        );
    }

    #[test]
    fn modalities() {
        assert_eq!(
            parse("<*,*> q1").unwrap(),
            Formula::diamond(ModalIndex::Any, &Formula::prop(1))
        );
        assert_eq!(
            parse("<2,3> q1").unwrap(),
            Formula::diamond(ModalIndex::InOut(2, 3), &Formula::prop(1))
        );
        assert_eq!(
            parse("<*,3>>=4 q1").unwrap(),
            Formula::diamond_geq(ModalIndex::Out(3), 4, &Formula::prop(1))
        );
        assert_eq!(
            parse("<1,*> q1").unwrap(),
            Formula::diamond(ModalIndex::In(1), &Formula::prop(1))
        );
        assert_eq!(
            parse("[*,*] q1").unwrap(),
            Formula::box_(ModalIndex::Any, &Formula::prop(1))
        );
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "(q2 & <*,*>>=2 q1)",
            "!<0,1> true",
            "((q1 | q2) & <*,0> !q3)",
            "<1,*> <*,*> false",
        ] {
            let f = parse(text).unwrap();
            assert_eq!(parse(&f.to_string()).unwrap(), f, "{text}");
        }
    }

    #[test]
    fn errors_report_position() {
        assert!(parse("").is_err());
        assert!(parse("q").is_err());
        assert!(parse("(q1").is_err());
        assert!(parse("q1 q2").is_err());
        assert!(parse("<1> q1").is_err());
        assert!(parse("<*,*>>= q1").is_err());
        let err = parse("q1 & #").unwrap_err();
        assert_eq!(err.position, 5);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn keywords_need_boundaries() {
        assert!(parse("truex").is_err());
        assert!(parse("true2").is_err());
    }
}
