//! A text syntax for formulas, round-tripping with `Display`.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula := or
//! or      := and ('|' and)*
//! and     := unary ('&' unary)*
//! unary   := '!' unary | '<' index '>' ['>=' NUM] unary | '[' index ']' unary
//!          | ('mu' | 'nu') VAR '.' or | atom
//! atom    := 'true' | 'false' | 'q' NUM | VAR | '(' formula ')'
//! index   := NUM ',' NUM | '*' ',' NUM | NUM ',' '*' | '*' ',' '*'
//! VAR     := [A-Z][A-Za-z0-9]*
//! ```
//!
//! Port indices are `0`-based. `[α]φ` is sugar for `!<α>!φ`. A binder's
//! body extends as far right as possible (`mu X . q1 | <*,*> X` binds the
//! whole disjunction), the usual µ-calculus convention.
//!
//! The parser is scope-checked: a variable outside any binder for its
//! name, a binder re-binding a name already in scope, and a bound
//! variable used under an odd number of negations are all [`ParseError`]s
//! — `parse` only ever returns closed, monotone formulas, so malformed
//! fixpoint input surfaces as a typed error value, never a panic deeper
//! in the pipeline.
//!
//! # Examples
//!
//! ```
//! use portnum_logic::parse;
//!
//! let f = parse("q2 & <*,*>>=2 q1")?;
//! assert_eq!(f.modal_depth(), 1);
//! let g = parse(&f.to_string())?;
//! assert_eq!(f, g);
//! # Ok::<(), portnum_logic::ParseError>(())
//! ```

use crate::error::ParseError;
use crate::formula::{Formula, ModalIndex};

/// Parses a formula from the textual syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending position.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, scope: Vec::new() };
    let f = p.or_expr()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Fixpoint variables bound by enclosing binders, innermost last.
    scope: Vec<String>,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError { position: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| self.error("number too large"))
    }

    fn keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            let after = self.pos + word.len();
            let boundary = self
                .bytes
                .get(after)
                .is_none_or(|b| !b.is_ascii_alphanumeric());
            if boundary {
                self.pos = after;
                return true;
            }
        }
        false
    }

    /// A fixpoint-variable identifier: an uppercase ASCII letter followed
    /// by ASCII alphanumerics. Returns `None` (without consuming input)
    /// if the next token does not start with an uppercase letter.
    fn variable(&mut self) -> Option<String> {
        self.skip_ws();
        if !self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_uppercase()) {
            return None;
        }
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        Some(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("ascii alphanumerics are utf8")
                .to_string(),
        )
    }

    /// `('mu' | 'nu') VAR '.' or` — the body extends as far right as
    /// possible. Scope is tracked so unbound and shadowed variables are
    /// reported at their position.
    fn binder(&mut self, greatest: bool) -> Result<Formula, ParseError> {
        let Some(name) = self.variable() else {
            return Err(self.error("expected a fixpoint variable (uppercase letter)"));
        };
        if self.scope.contains(&name) {
            return Err(self.error(&format!("binder re-binds variable {name} already in scope")));
        }
        self.expect(b'.')?;
        self.scope.push(name);
        let body = self.or_expr();
        let name = self.scope.pop().expect("pushed above");
        let result = if greatest {
            Formula::nu(&name, &body?)
        } else {
            Formula::mu(&name, &body?)
        };
        result.map_err(|e| self.error(&e.to_string()))
    }

    fn or_expr(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(b'|') {
            let right = self.and_expr()?;
            left = left.or(&right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.unary()?;
        while self.eat(b'&') {
            let right = self.unary()?;
            left = left.and(&right);
        }
        Ok(left)
    }

    fn index(&mut self, close: u8) -> Result<ModalIndex, ParseError> {
        let first_star = self.eat(b'*');
        let first = if first_star { None } else { Some(self.number()?) };
        self.expect(b',')?;
        let second_star = self.eat(b'*');
        let second = if second_star { None } else { Some(self.number()?) };
        self.expect(close)?;
        Ok(match (first, second) {
            (Some(i), Some(j)) => ModalIndex::InOut(i, j),
            (None, Some(j)) => ModalIndex::Out(j),
            (Some(i), None) => ModalIndex::In(i),
            (None, None) => ModalIndex::Any,
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(b'!') => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(b'<') => {
                self.pos += 1;
                let index = self.index(b'>')?;
                let grade = if self.peek() == Some(b'>') {
                    self.pos += 1;
                    self.expect(b'=')?;
                    self.number()?
                } else {
                    1
                };
                let inner = self.unary()?;
                Ok(Formula::diamond_geq(index, grade, &inner))
            }
            Some(b'[') => {
                self.pos += 1;
                let index = self.index(b']')?;
                let inner = self.unary()?;
                Ok(Formula::box_(index, &inner))
            }
            _ => {
                if self.keyword("mu") {
                    return self.binder(false);
                }
                if self.keyword("nu") {
                    return self.binder(true);
                }
                self.atom()
            }
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        if self.keyword("true") {
            return Ok(Formula::top());
        }
        if self.keyword("false") {
            return Ok(Formula::bottom());
        }
        match self.peek() {
            Some(b'q') => {
                self.pos += 1;
                Ok(Formula::prop(self.number()?))
            }
            Some(b'(') => {
                self.pos += 1;
                let f = self.or_expr()?;
                self.expect(b')')?;
                Ok(f)
            }
            _ => {
                let at = self.pos;
                if let Some(name) = self.variable() {
                    if !self.scope.contains(&name) {
                        self.pos = at;
                        return Err(
                            self.error(&format!("fixpoint variable {name} is not in scope"))
                        );
                    }
                    return Ok(Formula::var(&name));
                }
                Err(self.error("expected an atom, a variable, '!', '<', '[', or '('"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_and_connectives() {
        assert_eq!(parse("true").unwrap(), Formula::top());
        assert_eq!(parse("q7").unwrap(), Formula::prop(7));
        assert_eq!(parse("!q1").unwrap(), Formula::prop(1).not());
        assert_eq!(
            parse("q1 & q2 | q3").unwrap(),
            Formula::prop(1).and(&Formula::prop(2)).or(&Formula::prop(3))
        );
        assert_eq!(
            parse("q1 & (q2 | q3)").unwrap(),
            Formula::prop(1).and(&Formula::prop(2).or(&Formula::prop(3)))
        );
    }

    #[test]
    fn modalities() {
        assert_eq!(
            parse("<*,*> q1").unwrap(),
            Formula::diamond(ModalIndex::Any, &Formula::prop(1))
        );
        assert_eq!(
            parse("<2,3> q1").unwrap(),
            Formula::diamond(ModalIndex::InOut(2, 3), &Formula::prop(1))
        );
        assert_eq!(
            parse("<*,3>>=4 q1").unwrap(),
            Formula::diamond_geq(ModalIndex::Out(3), 4, &Formula::prop(1))
        );
        assert_eq!(
            parse("<1,*> q1").unwrap(),
            Formula::diamond(ModalIndex::In(1), &Formula::prop(1))
        );
        assert_eq!(
            parse("[*,*] q1").unwrap(),
            Formula::box_(ModalIndex::Any, &Formula::prop(1))
        );
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "(q2 & <*,*>>=2 q1)",
            "!<0,1> true",
            "((q1 | q2) & <*,0> !q3)",
            "<1,*> <*,*> false",
        ] {
            let f = parse(text).unwrap();
            assert_eq!(parse(&f.to_string()).unwrap(), f, "{text}");
        }
    }

    #[test]
    fn errors_report_position() {
        assert!(parse("").is_err());
        assert!(parse("q").is_err());
        assert!(parse("(q1").is_err());
        assert!(parse("q1 q2").is_err());
        assert!(parse("<1> q1").is_err());
        assert!(parse("<*,*>>= q1").is_err());
        let err = parse("q1 & #").unwrap_err();
        assert_eq!(err.position, 5);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn keywords_need_boundaries() {
        assert!(parse("truex").is_err());
        assert!(parse("true2").is_err());
        assert!(parse("muX. X").is_err());
    }

    #[test]
    fn fixpoint_binders() {
        let reach = parse("mu X . q1 | <*,*> X").unwrap();
        assert_eq!(
            reach,
            Formula::mu(
                "X",
                &Formula::prop(1).or(&Formula::diamond(ModalIndex::Any, &Formula::var("X")))
            )
            .unwrap()
        );
        // the binder body extends as far right as possible
        assert_eq!(reach.to_string(), "(mu X . (q1 | <*,*> X))");
        let nested = parse("nu Y . mu X2 . (X2 | Y) & q0").unwrap();
        assert_eq!(parse(&nested.to_string()).unwrap(), nested);
        // binders nest under other connectives
        let under = parse("q1 & mu X . <0,1> X").unwrap();
        assert_eq!(parse(&under.to_string()).unwrap(), under);
        assert!(parse("! nu X . !!X").is_ok());
    }

    #[test]
    fn fixpoint_scope_errors_are_typed() {
        // unbound variable
        let err = parse("mu X . Y").unwrap_err();
        assert!(err.message.contains("not in scope"), "{err}");
        assert!(parse("X").is_err());
        // variable escapes its binder
        assert!(parse("(mu X . X) & X").is_err());
        // shadowed binder
        let err = parse("mu X . mu X . X").unwrap_err();
        assert!(err.message.contains("re-binds"), "{err}");
        // non-monotone use
        let err = parse("mu X . !X").unwrap_err();
        assert!(err.message.contains("odd number of negations"), "{err}");
        // boxes flip polarity twice: [a]X is fine
        assert!(parse("nu X . [*,*] X").is_ok());
        // malformed binder heads
        assert!(parse("mu . X").is_err());
        assert!(parse("mu x . q1").is_err());
        assert!(parse("mu X q1").is_err());
    }
}
